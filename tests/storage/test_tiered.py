"""Tests for the tiered KV store: demotion, promotion, placement, headroom."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.network import ConstantTrace, NetworkLink
from repro.storage import (
    COLD,
    HOT,
    CostAwarePlacement,
    CostAwarePolicy,
    DiskKVStore,
    KVCacheStore,
    LFUPolicy,
    LRUPolicy,
    StoredContext,
    TieredCostModel,
    TieredKVStore,
    TieredPricingModel,
    make_placement,
)


def _ctx(context_id: str, num_bytes: float, num_tokens: int = 1_000) -> StoredContext:
    chunk = SimpleNamespace(encodings={"only": SimpleNamespace(compressed_bytes=num_bytes)})
    return StoredContext(
        context_id=context_id, model_name="fake", num_tokens=num_tokens, chunks=[chunk]
    )


def _tiered(
    policy=None,
    hot_bytes: float = 250.0,
    cold_bytes: float | None = 10_000.0,
    cold_policy=None,
    **kwargs,
) -> TieredKVStore:
    hot = KVCacheStore(
        encoder=None, max_bytes=hot_bytes, eviction_policy=policy or LRUPolicy()
    )
    cold = DiskKVStore(max_bytes=cold_bytes, eviction_policy=cold_policy)
    return TieredKVStore(hot, cold, **kwargs)


class TestDemotion:
    @pytest.mark.parametrize("policy_cls", [LRUPolicy, LFUPolicy, CostAwarePolicy])
    def test_capacity_pressure_demotes_instead_of_dropping(self, policy_cls):
        store = _tiered(policy_cls())
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 100.0))
        store.store_prepared(_ctx("c", 100.0))  # the policy's victim leaves hot
        resident = {cid: store.tier_of(cid) for cid in ("a", "b", "c")}
        assert sorted(resident.values()).count(COLD) == 1
        assert all(cid in store for cid in ("a", "b", "c"))
        assert store.eviction_count == 0  # no true losses

    def test_demotion_lands_cold_after_flush(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # demotes "a" (in flight)
        assert store.pending_demotion_bytes == pytest.approx(100.0)
        assert store.tier_of("a") == COLD
        flushed = store.flush_demotions()
        assert flushed == 1
        assert store.pending_demotion_bytes == 0.0
        assert "a" in store.cold
        assert store.stats.demotions == 1
        assert store.stats.demoted_bytes == pytest.approx(100.0)
        assert store.stats.demotion_transfer_s > 0.0

    def test_cold_capacity_pressure_is_a_true_drop(self):
        store = _tiered(hot_bytes=100.0, cold_bytes=100.0)
        store.store_prepared(_ctx("a", 90.0))
        store.store_prepared(_ctx("b", 90.0))  # demotes "a" to cold
        store.store_prepared(_ctx("c", 90.0))  # demotes "b"; cold drops "a"
        store.flush_demotions()
        assert store.eviction_count == 1
        assert "a" not in store

    def test_victim_too_large_for_cold_tier_drops_immediately(self):
        """A demotion that can never be written back must not look resident.

        Regression: the victim used to sit in the pending buffer (tier_of ==
        "cold"), then vanish at the next flush without a counter — and a
        lookup that had already selected the replica crashed with KeyError.
        """
        store = _tiered(hot_bytes=250.0, cold_bytes=120.0)
        store.store_prepared(_ctx("big", 200.0))
        store.store_prepared(_ctx("small", 100.0))  # evicts "big"; cold can't hold it
        assert store.tier_of("big") is None
        assert "big" not in store
        assert store.pending_demotion_bytes == 0.0
        assert store.eviction_count == 1  # a true loss, counted
        assert store.stats.demotion_drops == 1
        assert store.stats.demotions == 0
        with pytest.raises(KeyError):
            store.get_context("big")

    def test_storage_bytes_spans_tiers_and_write_buffer(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # "a" pending demotion
        assert float(store.storage_bytes()) == pytest.approx(300.0)
        store.flush_demotions()
        assert float(store.storage_bytes()) == pytest.approx(300.0)
        assert store.hot_bytes() == pytest.approx(200.0)
        assert store.cold_bytes() == pytest.approx(100.0)


class TestPromotion:
    def test_cold_hit_promotes_back_to_hot(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # demotes "a"
        stored = store.get_context("a")
        assert stored.context_id == "a"
        assert store.tier_of("a") == HOT
        assert store.tier_of("b") == COLD  # promotion displaced "b"
        assert store.stats.cold_hits == 1
        assert store.stats.promotions == 1
        assert store.stats.promotion_transfer_s > 0.0

    def test_promotion_refreshes_lru_recency(self):
        """A promoted context is the *most* recently used, not the next victim."""
        store = _tiered(LRUPolicy(), hot_bytes=250.0)
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 100.0))
        store.store_prepared(_ctx("c", 100.0))  # demotes "a"
        store.get_context("a")  # promotes "a", demotes "b"
        store.store_prepared(_ctx("d", 100.0))  # must demote "c", not "a"
        assert store.tier_of("a") == HOT
        assert store.tier_of("c") == COLD

    def test_promotion_reregisters_lfu_state(self):
        """Demotion clears hot-policy state; promotion re-registers the
        context as freshly used (frequency restarts, recency is newest)."""
        policy = LFUPolicy()
        store = _tiered(policy, hot_bytes=250.0)
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # demotes "a": LFU state dropped
        assert "a" not in policy._uses
        store.get_context("a")  # promotes: back in the books, most recent
        assert policy._uses["a"] == 1
        assert policy._last_used["a"] == max(policy._last_used.values())
        store.get_context("a")  # a hot hit keeps counting
        assert policy._uses["a"] == 2

    def test_oversized_context_serves_cold_without_promotion(self):
        store = _tiered(hot_bytes=150.0, placement="cost")
        # Straight-to-cold placement for a context bigger than the hot tier.
        store.store_prepared(_ctx("big", 400.0, num_tokens=10))
        assert store.tier_of("big") == COLD
        stored = store.get_context("big")
        assert stored.context_id == "big"
        assert store.tier_of("big") == COLD
        assert store.stats.promotions == 0

    def test_promotion_can_be_disabled(self):
        store = _tiered(promote_on_hit=False)
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))
        store.get_context("a")
        assert store.tier_of("a") == COLD
        assert store.stats.cold_hits == 1
        assert store.stats.promotions == 0


class TestHeadroom:
    def test_in_flight_demotions_shrink_headroom(self):
        """The add_node rebalance guard must see write-buffer bytes."""
        store = _tiered(hot_bytes=250.0)
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # "a" in flight: RAM holds 300
        assert store.migration_headroom_bytes() == 0.0
        store.flush_demotions()
        assert store.migration_headroom_bytes() == pytest.approx(50.0)

    def test_flat_store_headroom(self):
        flat = KVCacheStore(encoder=None, max_bytes=250.0, eviction_policy=LRUPolicy())
        flat.store_prepared(_ctx("a", 100.0))
        assert flat.migration_headroom_bytes() == pytest.approx(150.0)
        unbounded = KVCacheStore(encoder=None)
        assert unbounded.migration_headroom_bytes() == float("inf")


class TestTieredSurface:
    def test_unbounded_hot_tier_rejected(self):
        with pytest.raises(ValueError):
            TieredKVStore(KVCacheStore(encoder=None), DiskKVStore())

    def test_evict_removes_from_every_tier(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # "a" pending demotion
        assert store.evict("a")  # from the write buffer
        assert store.evict("b")  # from hot
        assert not store.evict("a")
        assert len(store) == 0
        assert float(store.storage_bytes()) == 0.0

    def test_peek_does_not_promote(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))
        assert store.peek_context("a").context_id == "a"  # pending demotion
        store.flush_demotions()
        assert store.peek_context("a").context_id == "a"  # cold
        assert store.tier_of("a") == COLD
        assert store.stats.promotions == 0

    def test_context_ids_spans_tiers(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))
        assert set(store.context_ids()) == {"a", "b"}
        assert len(store) == 2

    def test_restore_keeps_single_resident_copy(self):
        store = _tiered()
        store.store_prepared(_ctx("a", 100.0))
        store.store_prepared(_ctx("b", 200.0))  # demotes "a"
        store.flush_demotions()
        store.store_prepared(_ctx("a", 120.0))  # re-ingest lands hot again
        assert store.tier_of("a") == HOT
        assert "a" not in store.cold
        assert len(store) == 2


class TestPlacementAndPricing:
    def test_cost_aware_placement_sends_bulky_cold(self):
        placement = CostAwarePlacement(expected_reuses_per_month=1.0)
        bulky = _ctx("bulky", 5e9, num_tokens=100)
        hot_worthy = _ctx("doc", 1e6, num_tokens=100_000)
        assert placement.place(bulky) == COLD
        assert placement.place(hot_worthy) == HOT
        assert placement.hot_breakeven_reuses(bulky) > placement.hot_breakeven_reuses(
            hot_worthy
        )

    def test_make_placement_names(self):
        assert make_placement("hot").place(_ctx("a", 1e12, num_tokens=1)) == HOT
        assert isinstance(make_placement("cost"), CostAwarePlacement)
        with pytest.raises(KeyError):
            make_placement("random")

    def test_cold_placement_counted(self):
        store = _tiered(
            hot_bytes=10e9,
            cold_bytes=None,
            placement=CostAwarePlacement(expected_reuses_per_month=1.0),
        )
        store.store_prepared(_ctx("bulky", 5e9, num_tokens=100))
        assert store.tier_of("bulky") == COLD
        assert store.stats.cold_placements == 1

    def test_tiered_pricing_validation(self):
        with pytest.raises(ValueError):
            TieredPricingModel(cold_storage_usd_per_gb_month=-1.0)
        with pytest.raises(ValueError):
            TieredPricingModel(
                storage_usd_per_gb_month=0.01, cold_storage_usd_per_gb_month=0.02
            )

    def test_tiered_cost_model_per_request(self):
        model = TieredCostModel()
        assert model.cold_storage_cost_per_month(1e9) < model.storage_cost_per_month(1e9)
        combined = model.monthly_storage_cost(1e9, 2e9)
        assert combined == pytest.approx(
            model.storage_cost_per_month(1e9) + model.cold_storage_cost_per_month(2e9)
        )
        base = model.cost_per_request(1e9, 1e9, requests_per_month=100.0)
        with_misses = model.cost_per_request(
            1e9, 1e9, requests_per_month=100.0, reprefill_fraction=0.5, num_tokens=8_000
        )
        assert with_misses > base
        with pytest.raises(ValueError):
            model.cost_per_request(1e9, 0.0, requests_per_month=0.0)

    def test_disk_store_read_delay_scales_with_bytes(self):
        disk = DiskKVStore(link=NetworkLink(ConstantTrace(1e9)))
        assert disk.read_delay_s(2e9) == pytest.approx(16.0)
        assert disk.read_delay_s(1e9) < disk.read_delay_s(2e9)

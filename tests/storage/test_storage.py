"""Tests for the KV cache store and the storage/recompute cost model."""

from __future__ import annotations

import pytest

from repro.llm import LLAMA_13B
from repro.storage import CostModel, KVCacheStore, PricingModel


@pytest.fixture(scope="module")
def store(encoder, kv):
    store = KVCacheStore(encoder)
    store.store_kv("ctx-1", kv)
    return store


class TestKVCacheStore:
    def test_store_and_membership(self, store):
        assert "ctx-1" in store
        assert "ctx-2" not in store

    def test_stored_context_metadata(self, store, kv, encoder):
        stored = store.get_context("ctx-1")
        assert stored.num_tokens == kv.num_tokens
        expected_chunks = -(-kv.num_tokens // encoder.config.chunk_tokens)
        assert stored.num_chunks == expected_chunks

    def test_get_kv_returns_encoded_chunk(self, store):
        encoded = store.get_kv("ctx-1", 0, "medium")
        assert encoded.level.name == "medium"
        assert encoded.compressed_bytes > 0

    def test_get_kv_bad_chunk(self, store):
        with pytest.raises(IndexError):
            store.get_kv("ctx-1", 99, "medium")

    def test_get_unknown_context(self, store):
        with pytest.raises(KeyError):
            store.get_context("nope")

    def test_total_bytes_per_level_smaller_than_all(self, store):
        stored = store.get_context("ctx-1")
        assert stored.total_bytes("medium") < stored.total_bytes()

    def test_storage_bytes_breakdown(self, store):
        per_level = store.storage_bytes(per_level=True)
        assert set(per_level) == {"high", "medium", "low", "lowest"}
        assert store.storage_bytes() == pytest.approx(sum(per_level.values()))

    def test_evict(self, encoder, kv):
        store = KVCacheStore(encoder)
        store.store_kv("temp", kv)
        store.evict("temp")
        assert "temp" not in store
        store.evict("temp")  # idempotent


class TestCostModel:
    def test_storage_cost_linear(self):
        model = CostModel()
        assert model.storage_cost_per_month(2e9) == pytest.approx(
            2 * model.pricing.storage_usd_per_gb_month
        )

    def test_recompute_cost_linear(self):
        model = CostModel()
        assert model.recompute_cost_per_request(2000) == pytest.approx(
            2 * model.pricing.inference_usd_per_1k_input_tokens
        )

    def test_appendix_e_breakeven_scale(self):
        """Appendix E: breakeven around ~100-200 reuses per month."""
        analysis = CostModel().analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=4)
        assert 30 < analysis.breakeven_requests_per_month < 500
        assert analysis.storing_is_cheaper(1_000)
        assert not analysis.storing_is_cheaper(1)

    def test_more_versions_cost_more(self):
        model = CostModel()
        one = model.analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=1)
        four = model.analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=4)
        assert four.storage_usd_per_month == pytest.approx(4 * one.storage_usd_per_month)

    @pytest.mark.parametrize("kwargs", [
        {"storage_usd_per_gb_month": 0.0},
        {"inference_usd_per_1k_input_tokens": -1.0},
    ])
    def test_invalid_pricing(self, kwargs):
        with pytest.raises(ValueError):
            PricingModel(**kwargs)

    def test_invalid_inputs(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.storage_cost_per_month(-1)
        with pytest.raises(ValueError):
            model.analyse(LLAMA_13B, 1000, 2.4, num_stored_versions=0)

"""Tests for the KV cache store and the storage/recompute cost model."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.llm import LLAMA_13B
from repro.storage import (
    CapacityError,
    CostAwarePolicy,
    CostModel,
    KVCacheStore,
    LFUPolicy,
    LRUPolicy,
    PricingModel,
    StoredContext,
    make_policy,
)


@pytest.fixture(scope="module")
def store(encoder, kv):
    store = KVCacheStore(encoder)
    store.store_kv("ctx-1", kv)
    return store


class TestKVCacheStore:
    def test_store_and_membership(self, store):
        assert "ctx-1" in store
        assert "ctx-2" not in store

    def test_stored_context_metadata(self, store, kv, encoder):
        stored = store.get_context("ctx-1")
        assert stored.num_tokens == kv.num_tokens
        expected_chunks = -(-kv.num_tokens // encoder.config.chunk_tokens)
        assert stored.num_chunks == expected_chunks

    def test_get_kv_returns_encoded_chunk(self, store):
        encoded = store.get_kv("ctx-1", 0, "medium")
        assert encoded.level.name == "medium"
        assert encoded.compressed_bytes > 0

    def test_get_kv_bad_chunk(self, store):
        with pytest.raises(IndexError):
            store.get_kv("ctx-1", 99, "medium")

    def test_get_unknown_context(self, store):
        with pytest.raises(KeyError):
            store.get_context("nope")

    def test_total_bytes_per_level_smaller_than_all(self, store):
        stored = store.get_context("ctx-1")
        assert stored.total_bytes("medium") < stored.total_bytes()

    def test_storage_bytes_breakdown(self, store):
        per_level = store.storage_bytes(per_level=True)
        assert set(per_level) == {"high", "medium", "low", "lowest"}
        assert store.storage_bytes() == pytest.approx(sum(per_level.values()))

    def test_evict(self, encoder, kv):
        store = KVCacheStore(encoder)
        store.store_kv("temp", kv)
        assert store.evict("temp")
        assert "temp" not in store
        assert not store.evict("temp")  # idempotent

    def test_running_total_tracks_stores_and_evictions(self, encoder, kv):
        store = KVCacheStore(encoder)
        assert store.storage_bytes() == 0.0
        stored = store.store_kv("a", kv)
        assert store.storage_bytes() == pytest.approx(stored.total_bytes())
        store.store_kv("b", kv)
        assert store.storage_bytes() == pytest.approx(2 * stored.total_bytes())
        store.evict("a")
        assert store.storage_bytes() == pytest.approx(stored.total_bytes())
        store.evict("b")
        assert store.storage_bytes() == 0.0


def _fake_context(context_id: str, num_bytes: float, num_tokens: int = 1_000) -> StoredContext:
    """A StoredContext with a fabricated bitstream size (no real encoding)."""
    chunk = SimpleNamespace(encodings={"only": SimpleNamespace(compressed_bytes=num_bytes)})
    return StoredContext(
        context_id=context_id, model_name="fake", num_tokens=num_tokens, chunks=[chunk]
    )


class TestCapacityBoundedStore:
    """Capacity accounting and the pluggable eviction policies."""

    def _store(self, policy, max_bytes=250.0):
        # The encoder is never used: contexts enter via store_prepared.
        return KVCacheStore(encoder=None, max_bytes=max_bytes, eviction_policy=policy)

    def test_lru_evicts_least_recently_used(self):
        store = self._store(LRUPolicy())
        store.store_prepared(_fake_context("a", 100.0))
        store.store_prepared(_fake_context("b", 100.0))
        store.get_context("a")  # refresh a
        store.store_prepared(_fake_context("c", 100.0))
        assert "b" not in store
        assert "a" in store and "c" in store
        assert store.evicted_context_ids == ["b"]

    def test_lfu_evicts_least_frequently_used(self):
        store = self._store(LFUPolicy())
        store.store_prepared(_fake_context("a", 100.0))
        store.store_prepared(_fake_context("b", 100.0))
        for _ in range(3):
            store.get_context("a")
        store.get_context("b")
        # "b" is less frequently used even though it was touched more recently.
        store.store_prepared(_fake_context("c", 100.0))
        assert "b" not in store
        assert "a" in store and "c" in store

    def test_cost_aware_evicts_lowest_retention_value(self):
        store = self._store(CostAwarePolicy())
        # Same access counts: "bulky" costs 10x the storage of "lean" for the
        # same recompute savings, so it goes first.
        store.store_prepared(_fake_context("bulky", 100.0, num_tokens=1_000))
        store.store_prepared(_fake_context("lean", 10.0, num_tokens=1_000))
        store.store_prepared(_fake_context("c", 145.0))
        assert "bulky" not in store
        assert "lean" in store and "c" in store

    def test_eviction_cascades_until_budget_met(self):
        store = self._store(LRUPolicy(), max_bytes=250.0)
        store.store_prepared(_fake_context("a", 100.0))
        store.store_prepared(_fake_context("b", 100.0))
        store.store_prepared(_fake_context("big", 240.0))
        assert "a" not in store and "b" not in store
        assert "big" in store
        assert store.eviction_count == 2
        assert store.storage_bytes() == pytest.approx(240.0)

    def test_oversized_context_rejected(self):
        store = self._store(LRUPolicy(), max_bytes=250.0)
        with pytest.raises(CapacityError):
            store.store_prepared(_fake_context("huge", 251.0))
        assert store.storage_bytes() == 0.0

    def test_restore_replaces_without_counting_eviction(self):
        store = self._store(LRUPolicy())
        store.store_prepared(_fake_context("a", 100.0))
        store.store_prepared(_fake_context("a", 120.0))
        assert store.storage_bytes() == pytest.approx(120.0)
        assert store.eviction_count == 0

    def test_unbounded_store_never_evicts(self):
        store = KVCacheStore(encoder=None, eviction_policy=LRUPolicy())
        for i in range(10):
            store.store_prepared(_fake_context(f"ctx-{i}", 1e9))
        assert len(store) == 10
        assert store.eviction_count == 0

    def test_make_policy_names(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("lfu"), LFUPolicy)
        assert isinstance(make_policy("cost"), CostAwarePolicy)
        with pytest.raises(KeyError):
            make_policy("random")

    def test_invalid_max_bytes(self):
        with pytest.raises(ValueError):
            KVCacheStore(encoder=None, max_bytes=0.0)


class TestCostModel:
    def test_storage_cost_linear(self):
        model = CostModel()
        assert model.storage_cost_per_month(2e9) == pytest.approx(
            2 * model.pricing.storage_usd_per_gb_month
        )

    def test_recompute_cost_linear(self):
        model = CostModel()
        assert model.recompute_cost_per_request(2000) == pytest.approx(
            2 * model.pricing.inference_usd_per_1k_input_tokens
        )

    def test_appendix_e_breakeven_scale(self):
        """Appendix E: breakeven around ~100-200 reuses per month."""
        analysis = CostModel().analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=4)
        assert 30 < analysis.breakeven_requests_per_month < 500
        assert analysis.storing_is_cheaper(1_000)
        assert not analysis.storing_is_cheaper(1)

    def test_more_versions_cost_more(self):
        model = CostModel()
        one = model.analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=1)
        four = model.analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=4)
        assert four.storage_usd_per_month == pytest.approx(4 * one.storage_usd_per_month)

    @pytest.mark.parametrize("kwargs", [
        {"storage_usd_per_gb_month": 0.0},
        {"inference_usd_per_1k_input_tokens": -1.0},
    ])
    def test_invalid_pricing(self, kwargs):
        with pytest.raises(ValueError):
            PricingModel(**kwargs)

    def test_invalid_inputs(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.storage_cost_per_month(-1)
        with pytest.raises(ValueError):
            model.analyse(LLAMA_13B, 1000, 2.4, num_stored_versions=0)

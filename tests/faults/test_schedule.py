"""Fault specifications and their compilation into clock events."""

from __future__ import annotations

import pytest

from repro.faults import (
    Corruption,
    FaultSchedule,
    GpuStraggler,
    LinkDegradation,
    NodeCrash,
)


class TestSpecValidation:
    def test_node_crash_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            NodeCrash("", at_s=1.0)
        with pytest.raises(ValueError):
            NodeCrash("node-0", at_s=-1.0)
        with pytest.raises(ValueError):
            NodeCrash("node-0", at_s=2.0, recover_at_s=2.0)

    def test_link_degradation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            LinkDegradation(at_s=1.0, until_s=1.0, factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(at_s=1.0, until_s=2.0, factor=1.0)
        with pytest.raises(ValueError):
            LinkDegradation(at_s=1.0, until_s=2.0, factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(at_s=1.0, until_s=2.0, factor=0.5, flaps=-1)

    def test_gpu_straggler_rejects_speedups(self):
        with pytest.raises(ValueError):
            GpuStraggler(at_s=1.0, until_s=2.0, slowdown=1.0)

    def test_corruption_rejects_empty_context(self):
        with pytest.raises(ValueError):
            Corruption("", at_s=1.0)

    def test_unknown_spec_type_rejected_at_compile(self):
        with pytest.raises(TypeError):
            FaultSchedule([object()])


class TestCompilation:
    def test_crash_with_recovery_compiles_to_down_up(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=1.0, recover_at_s=4.0)])
        actions = [(event.at_s, event.action) for event in schedule.events()]
        assert actions == [(1.0, "node_down"), (4.0, "node_up")]

    def test_crash_without_recovery_is_one_event(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=1.0)])
        assert [event.action for event in schedule.events()] == ["node_down"]

    def test_flapping_link_alternates_degrade_restore(self):
        fault = LinkDegradation(at_s=0.0, until_s=5.0, factor=0.5, flaps=2)
        schedule = FaultSchedule([fault])
        events = schedule.events()
        # 2 * flaps + 1 = 5 equal sub-windows plus the final restore.
        assert [event.action for event in events] == [
            "link_degrade",
            "link_restore",
            "link_degrade",
            "link_restore",
            "link_degrade",
            "link_restore",
        ]
        assert [event.at_s for event in events] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert all(event.factor == 0.5 for event in events if event.injects)

    def test_events_sorted_across_faults(self):
        schedule = FaultSchedule(
            [
                NodeCrash("node-1", at_s=3.0),
                GpuStraggler(at_s=1.0, until_s=2.0, slowdown=4.0),
                Corruption("ctx", at_s=0.5),
            ]
        )
        instants = [event.at_s for event in schedule.events()]
        assert instants == sorted(instants)

    def test_fault_ids_index_declaration_order(self):
        crash = NodeCrash("node-0", at_s=1.0)
        corrupt = Corruption("ctx", at_s=2.0)
        schedule = FaultSchedule([crash, corrupt])
        assert schedule.fault("fault-0") is crash
        assert schedule.fault("fault-1") is corrupt

    def test_injects_flags_injections_not_recoveries(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=1.0, recover_at_s=2.0)])
        down, up = schedule.events()
        assert down.injects and not up.injects

    def test_kind_and_target_describe_the_fault(self):
        assert NodeCrash("node-3", at_s=0.0).kind == "crash"
        assert NodeCrash("node-3", at_s=0.0).target == "node-3"
        assert LinkDegradation(at_s=0.0, until_s=1.0, factor=0.5).target == "serving-link"
        assert GpuStraggler(at_s=0.0, until_s=1.0, slowdown=2.0).kind == "gpu"
        assert Corruption("ctx", at_s=0.0).target == "ctx@replica"
        assert Corruption("ctx", at_s=0.0, node_id="node-1").target == "ctx@node-1"

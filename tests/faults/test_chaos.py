"""End-to-end chaos runs: determinism, conservation, repair, reporting."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.cluster import WorkloadGenerator
from repro.faults import (
    Corruption,
    FaultSchedule,
    NodeCrash,
    ResiliencePolicy,
)
from repro.serving.api import ServeRequest, ServingSpec, serve
from repro.telemetry import Tracer
from repro.telemetry.export import to_chrome_trace

CLUSTER_SPEC = ServingSpec(
    topology="cluster",
    num_nodes=3,
    replication=2,
    chunk_tokens=256,
    concurrency=4,
    slo_s=1.0,
    adaptive=False,
    resilience=ResiliencePolicy(),
)

#: One crash window over a short Zipf replay — the canonical chaos shape.
CRASH = FaultSchedule([NodeCrash("node-0", at_s=2.0, recover_at_s=8.0)])


def workload():
    return WorkloadGenerator(
        num_contexts=6, zipf_alpha=1.0, arrival_rate_per_s=2.0, seed=11
    )


def chaos_run(spec=CLUSTER_SPEC, faults=CRASH, num_requests=24, tracer=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return serve(
            spec,
            workload=workload(),
            num_requests=num_requests,
            faults=faults,
            tracer=tracer,
        )


class TestDeterminism:
    def test_same_schedule_same_seed_identical_resilience_reports(self):
        first = chaos_run()
        second = chaos_run()
        assert first.resilience is not None
        assert first.resilience == second.resilience
        assert first.segment_boundaries == second.segment_boundaries
        assert [r.ttft_s for r in first.responses] == [r.ttft_s for r in second.responses]

    def test_no_faults_means_byte_identical_traces(self):
        """With no schedule the fault layer must add zero trace overhead."""
        spec = CLUSTER_SPEC.with_(resilience=None)
        exports = []
        for _ in range(2):
            tracer = Tracer()
            serve(spec, workload=workload(), num_requests=12, tracer=tracer)
            exports.append(json.dumps(to_chrome_trace(tracer), sort_keys=True))
        assert exports[0] == exports[1]
        assert '"faults"' not in exports[0]

    def test_fault_instants_land_on_the_faults_track(self):
        tracer = Tracer()
        chaos_run(tracer=tracer)
        payload = json.dumps(to_chrome_trace(tracer))
        assert "node_down" in payload and "node_up" in payload
        assert "faults" in payload

    def test_failover_instants_carry_a_cause_label(self):
        """Crash-window failovers are visible in the trace, cause included."""
        tracer = Tracer()
        report = chaos_run(spec=CLUSTER_SPEC.with_(replication=1), tracer=tracer)
        events = to_chrome_trace(tracer)["traceEvents"]
        lookups = [
            event
            for event in events
            if event.get("name") in ("failover", "full_miss")
            and event.get("args", {}).get("cause")
        ]
        assert lookups
        assert any(e["args"]["cause"] == "node_down" for e in lookups)
        assert report.fallback_causes.get("node_down", 0) > 0


class TestConservation:
    """served + shed + failed == offered on every backend, faults included."""

    def assert_conserved(self, report):
        assert (
            len(report.responses) + report.shed + report.hard_failures
            == report.num_requests
        )
        assert report.hard_failures == 0
        assert report.degraded <= len(report.responses)

    @pytest.mark.parametrize(
        "spec",
        [
            ServingSpec(chunk_tokens=256, concurrency=2, adaptive=False),
            ServingSpec(
                topology="tiered",
                num_nodes=2,
                replication=2,
                max_bytes_per_node=2e8,
                cold_bytes_per_node=8e8,
                chunk_tokens=256,
                concurrency=2,
                adaptive=False,
            ),
            ServingSpec(
                topology="cluster",
                num_nodes=3,
                replication=2,
                chunk_tokens=256,
                concurrency=2,
                adaptive=False,
            ),
        ],
        ids=["single", "tiered", "cluster"],
    )
    def test_mid_run_crash_and_recovery_conserves_requests(self, spec):
        node = "node-0" if spec.topology != "single" else "node-0"
        faults = FaultSchedule([NodeCrash(node, at_s=2.0, recover_at_s=6.0)])
        report = chaos_run(spec=spec, faults=faults, num_requests=20)
        self.assert_conserved(report)
        assert report.resilience is not None
        assert report.resilience.offered == 20
        assert report.resilience.availability == 1.0

    def test_single_node_crash_degrades_to_text_not_failure(self):
        spec = ServingSpec(chunk_tokens=256, concurrency=2, adaptive=False)
        faults = FaultSchedule([NodeCrash("node-0", at_s=1.0)])  # never recovers
        report = chaos_run(spec=spec, faults=faults, num_requests=12)
        self.assert_conserved(report)
        assert report.degraded > 0
        assert report.fallback_causes.get("node_down", 0) > 0


class TestSegments:
    def test_fault_boundaries_recorded_and_warned_once(self):
        with pytest.warns(UserWarning, match="segment"):
            report = serve(
                CLUSTER_SPEC, workload=workload(), num_requests=24, faults=CRASH
            )
        assert report.segment_boundaries  # the crash and the recovery
        assert all(0 <= index < 24 for index in report.segment_boundaries)

    def test_no_faults_no_boundaries(self):
        report = serve(CLUSTER_SPEC.with_(resilience=None), workload=workload(), num_requests=8)
        assert report.segment_boundaries == ()


class TestRepairAndCorruption:
    def test_crash_window_triggers_re_replication(self):
        report = chaos_run()
        resilience = report.resilience
        assert resilience.repairs_completed > 0
        assert resilience.repair_bytes > 0.0
        # The crash fault cleared (node_up), so its MTTR is the window width.
        assert resilience.mttr_s["fault-0"] == pytest.approx(6.0)

    def test_corrupted_replica_detected_on_read_and_repaired(self):
        faults = FaultSchedule([Corruption("ctx-0000", at_s=2.0)])
        report = chaos_run(faults=faults)
        resilience = report.resilience
        assert resilience.corruptions_detected == 1
        assert resilience.repairs_completed >= 1
        assert report.hard_failures == 0
        # Detection + repair resolves the fault's MTTR in-run.
        assert "fault-0" in resilience.mttr_s

    def test_replication_two_keeps_goodput_through_the_crash(self):
        """The experiment's acceptance shape, at test scale."""
        degraded_by_replication = {}
        for replication in (1, 2):
            spec = CLUSTER_SPEC.with_(replication=replication)
            report = chaos_run(spec=spec)
            degraded_by_replication[replication] = report.degraded
        assert degraded_by_replication[2] < degraded_by_replication[1]
        assert degraded_by_replication[2] == 0

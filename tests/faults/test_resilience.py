"""Retry, hedge, breaker and report machinery of the self-healing layer."""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults import (
    BreakerPolicy,
    CircuitBreaker,
    FaultOutcome,
    HedgePolicy,
    ResilienceManager,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
)


class TestPolicyValidation:
    def test_retry_policy_bounds(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_hedge_policy_bounds(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError):
            HedgePolicy(initial_delay_s=-0.1)

    def test_breaker_policy_bounds(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_after_s=0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3, reset_after_s=5.0))
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.record_failure(3.0)  # the third one trips
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2, reset_after_s=5.0))
        breaker.record_failure(1.0)
        breaker.record_success()
        assert not breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_rejects_until_reset_then_half_opens(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, reset_after_s=5.0))
        breaker.record_failure(10.0)
        assert not breaker.allows(12.0)
        assert breaker.allows(15.0)  # reset elapsed: the probe is allowed
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, reset_after_s=5.0))
        breaker.record_failure(0.0)
        breaker.allows(6.0)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens_without_new_trip(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, reset_after_s=5.0))
        breaker.record_failure(0.0)
        breaker.allows(6.0)
        breaker.record_failure(6.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1  # a failed probe restarts the timer, no new trip
        assert not breaker.allows(8.0)
        assert breaker.allows(11.5)


class TestBackoffDeterminism:
    def test_same_key_same_draw(self):
        first = ResilienceManager(ResiliencePolicy(seed=7))
        second = ResilienceManager(ResiliencePolicy(seed=7))
        assert first.backoff_s("ctx-a", 0) == second.backoff_s("ctx-a", 0)
        assert first.backoff_s("ctx-a", 1) == second.backoff_s("ctx-a", 1)

    def test_draws_vary_by_context_attempt_and_seed(self):
        manager = ResilienceManager(ResiliencePolicy(seed=7))
        other_seed = ResilienceManager(ResiliencePolicy(seed=8))
        assert manager.backoff_s("ctx-a", 0) != manager.backoff_s("ctx-b", 0)
        assert manager.backoff_s("ctx-a", 0) != other_seed.backoff_s("ctx-a", 0)

    def test_draw_order_does_not_matter(self):
        """The jitter is keyed, not a shared stream — replays may reorder."""
        forward = ResilienceManager(ResiliencePolicy(seed=3))
        backward = ResilienceManager(ResiliencePolicy(seed=3))
        contexts = ["ctx-a", "ctx-b", "ctx-c"]
        first = {c: forward.backoff_s(c, 0) for c in contexts}
        second = {c: backward.backoff_s(c, 0) for c in reversed(contexts)}
        assert first == second

    def test_backoff_grows_exponentially(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.0)
        )
        manager = ResilienceManager(policy)
        assert manager.backoff_s("ctx", 0) == pytest.approx(0.1)
        assert manager.backoff_s("ctx", 2) == pytest.approx(0.4)


class TestEvaluateRead:
    def _manager(self, **retry_kwargs):
        policy = ResiliencePolicy(
            retry=RetryPolicy(timeout_s=1.0, jitter=0.0, **retry_kwargs),
            hedge=None,
            breaker=None,
        )
        return ResilienceManager(policy)

    def test_fast_primary_served_untouched(self):
        outcome = self._manager().evaluate_read("ctx", "node-0", 0.2, [("node-1", 0.3)])
        assert outcome.node_id == "node-0"
        assert outcome.extra_delay_s == 0.0
        assert not outcome.degraded

    def test_slow_primary_retries_onto_fast_alternate(self):
        manager = self._manager()
        outcome = manager.evaluate_read("ctx", "node-0", 5.0, [("node-1", 0.2)])
        assert outcome.node_id == "node-1"
        assert outcome.retries == 1
        assert not outcome.degraded
        # The failed attempt costs its timeout plus the backoff.
        assert outcome.extra_delay_s >= 1.0
        assert manager.timeouts == 1

    def test_all_replicas_slow_degrades_instead_of_failing(self):
        manager = self._manager(max_attempts=3)
        outcome = manager.evaluate_read(
            "ctx", "node-0", 5.0, [("node-1", 5.0), ("node-2", 5.0)]
        )
        assert outcome.degraded

    def test_no_alternates_degrades_after_first_timeout(self):
        outcome = self._manager().evaluate_read("ctx", "node-0", 5.0, [])
        assert outcome.degraded
        assert outcome.retries == 0

    def test_hedge_launches_after_delay_and_faster_path_wins(self):
        policy = ResiliencePolicy(
            retry=None, hedge=HedgePolicy(initial_delay_s=0.5), breaker=None
        )
        manager = ResilienceManager(policy)
        outcome = manager.evaluate_read("ctx", "node-0", 2.0, [("node-1", 0.2)])
        assert outcome.hedged
        assert outcome.node_id == "node-1"  # 0.5 + 0.2 beats 2.0
        assert outcome.extra_delay_s == pytest.approx(0.5)
        assert manager.hedge_wins == 1

    def test_hedge_loses_to_a_primary_it_cannot_beat(self):
        policy = ResiliencePolicy(
            retry=None, hedge=HedgePolicy(initial_delay_s=0.5), breaker=None
        )
        manager = ResilienceManager(policy)
        outcome = manager.evaluate_read("ctx", "node-0", 0.6, [("node-1", 0.55)])
        assert outcome.hedged
        assert outcome.node_id == "node-0"
        assert outcome.extra_delay_s == 0.0
        assert manager.hedge_wins == 0

    def test_hedge_delay_tracks_observed_quantile(self):
        policy = ResiliencePolicy(
            retry=None,
            hedge=HedgePolicy(quantile=0.5, min_samples=4, initial_delay_s=9.0),
            breaker=None,
        )
        manager = ResilienceManager(policy)
        assert manager.hedge_delay_s() == 9.0  # too few samples yet
        for service in (0.1, 0.2, 0.3, 0.4):
            manager.observe_service(service)
        assert manager.hedge_delay_s() == pytest.approx(0.3)


class TestManagerBookkeeping:
    def test_bare_manager_is_inactive_but_counts_faults(self):
        manager = ResilienceManager(None, seed=5)
        assert not manager.active
        assert manager.node_allowed("node-0")
        assert manager.backoff_s("ctx", 0) == 0.0
        assert manager.seed == 5

    def test_counter_keys_match_report_fields(self):
        """The driver forwards counters as ResilienceReport kwargs verbatim."""
        fields = {f.name for f in dataclasses.fields(ResilienceReport)}
        assert set(ResilienceManager(None).counters()) <= fields

    def test_breaker_gate_counts_rejections(self):
        manager = ResilienceManager(
            ResiliencePolicy(breaker=BreakerPolicy(failure_threshold=1))
        )
        manager._breaker("node-0").record_failure(0.0)
        assert not manager.node_allowed("node-0")
        assert manager.breaker_blocked == 1
        assert manager.breaker_trips == 1


class TestResilienceReport:
    def test_ratio_math(self):
        report = ResilienceReport(offered=10, served=8, degraded=2, shed=2, failed=0)
        assert report.goodput == 6
        assert report.availability == pytest.approx(1.0)  # 8 of 8 non-shed
        assert report.degraded_ratio == pytest.approx(0.25)

    def test_mttr_only_counts_cleared_faults(self):
        cleared = FaultOutcome("fault-0", "crash", "node-0", 1.0, cleared_at_s=5.0)
        censored = FaultOutcome("fault-1", "corruption", "ctx@replica", 2.0)
        report = ResilienceReport(
            offered=1, served=1, degraded=0, shed=0, failed=0, faults=(cleared, censored)
        )
        assert report.mttr_s == {"fault-0": 4.0}
        assert report.mean_mttr_s == pytest.approx(4.0)
        assert censored.mttr_s is None

    def test_format_table_mentions_uncleared_faults(self):
        censored = FaultOutcome("fault-0", "gpu", "gpu", 2.0)
        report = ResilienceReport(
            offered=1, served=1, degraded=0, shed=0, failed=0, faults=(censored,)
        )
        table = report.format_table()
        assert "availability" in table
        assert "not recovered in-run" in table

"""The injector's in-place component swaps against built backends."""

from __future__ import annotations

import pytest

from repro.faults import (
    Corruption,
    FaultInjector,
    FaultSchedule,
    GpuStraggler,
    LinkDegradation,
    NodeCrash,
    ResilienceManager,
    ScaledTrace,
)
from repro.llm import MISTRAL_7B, ComputeModel
from repro.network import ConstantTrace, gbps
from repro.serving.api import ServingSpec, build_backend

CLUSTER_SPEC = ServingSpec(
    topology="cluster", num_nodes=3, replication=2, chunk_tokens=256, concurrency=2
)
SINGLE_SPEC = ServingSpec(chunk_tokens=256)


def cluster_injector(schedule):
    backend = build_backend(CLUSTER_SPEC)
    injector = FaultInjector(schedule, backend, ResilienceManager(None))
    return backend, injector


class TestScaledTrace:
    def test_scales_the_base_bandwidth(self):
        trace = ScaledTrace(ConstantTrace(gbps(2.0)), factor=0.25)
        assert trace.bandwidth_at(0.0) == pytest.approx(gbps(0.5))

    def test_rejects_out_of_range_factors(self):
        with pytest.raises(ValueError):
            ScaledTrace(ConstantTrace(gbps(1.0)), factor=1.0)


class TestValidation:
    def test_corruption_requires_a_cluster_backend(self):
        schedule = FaultSchedule([Corruption("ctx", at_s=1.0)])
        with pytest.raises(ValueError, match="cluster"):
            FaultInjector(schedule, build_backend(SINGLE_SPEC), ResilienceManager(None))

    def test_unknown_node_id_rejected_up_front(self):
        schedule = FaultSchedule([NodeCrash("node-99", at_s=1.0)])
        backend = build_backend(CLUSTER_SPEC)
        with pytest.raises(KeyError):
            FaultInjector(schedule, backend, ResilienceManager(None))


class TestTiming:
    def test_due_and_apply_respect_the_clock(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=2.0, recover_at_s=5.0)])
        _, injector = cluster_injector(schedule)
        assert not injector.due(1.9)
        assert injector.due(2.0)
        applied = injector.apply_due(2.0)
        assert [event.action for event in applied] == ["node_down"]
        assert not injector.due(4.0)
        assert not injector.exhausted

    def test_drain_applies_everything_left(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=2.0, recover_at_s=5.0)])
        _, injector = cluster_injector(schedule)
        applied = injector.drain()
        assert [event.action for event in applied] == ["node_down", "node_up"]
        assert injector.exhausted


class TestComponentSwaps:
    def test_node_crash_marks_down_then_up(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=1.0, recover_at_s=2.0)])
        backend, injector = cluster_injector(schedule)
        node = backend.frontend.cluster.node("node-0")
        injector.apply_due(1.0)
        assert not node.up
        injector.apply_due(2.0)
        assert node.up

    def test_link_degrade_swaps_trace_and_restore_swaps_back(self):
        schedule = FaultSchedule(
            [LinkDegradation(at_s=1.0, until_s=2.0, factor=0.5, node_id="node-1")]
        )
        backend, injector = cluster_injector(schedule)
        link = backend.frontend.cluster.node("node-1").link
        base = link.trace
        injector.apply_due(1.0)
        assert isinstance(link.trace, ScaledTrace)
        assert link.trace.base is base
        assert link.trace.bandwidth_at(0.0) == pytest.approx(base.bandwidth_at(0.0) * 0.5)
        injector.apply_due(2.0)
        assert link.trace is base

    def test_clusterwide_link_fault_degrades_every_node(self):
        schedule = FaultSchedule([LinkDegradation(at_s=1.0, until_s=2.0, factor=0.5)])
        backend, injector = cluster_injector(schedule)
        injector.apply_due(1.0)
        cluster = backend.frontend.cluster
        assert all(
            isinstance(node.link.trace, ScaledTrace) for node in cluster.nodes.values()
        )

    def test_gpu_straggler_swaps_compute_and_restores(self):
        schedule = FaultSchedule([GpuStraggler(at_s=1.0, until_s=2.0, slowdown=4.0)])
        backend = build_backend(SINGLE_SPEC)
        injector = FaultInjector(schedule, backend, ResilienceManager(None))
        base = backend.engine._parts.compute
        injector.apply_due(1.0)
        proxy = backend.engine._parts.compute
        assert proxy is not base
        assert proxy.decode_delay(64) == pytest.approx(base.decode_delay(64) * 4.0)
        # The proxy must mirror the full ComputeModel signature (gpu_share).
        assert proxy.prefill_delay(64, gpu_share=0.5) == pytest.approx(
            base.prefill_delay(64, gpu_share=0.5) * 4.0
        )
        injector.apply_due(2.0)
        assert backend.engine._parts.compute is base

    def test_straggler_proxy_delegates_everything_else(self):
        from repro.faults.injector import _StragglerCompute

        base = ComputeModel(MISTRAL_7B)
        proxy = _StragglerCompute(base, slowdown=2.0)
        assert proxy.model is base.model
        assert proxy.gpu is base.gpu

    def test_corruption_poisons_a_replica(self):
        schedule = FaultSchedule([Corruption("ctx-a", at_s=1.0)])
        backend, injector = cluster_injector(schedule)
        backend.ingest("ctx-a", 640)
        injector.apply_due(1.0)
        cluster = backend.frontend.cluster
        replicas = cluster.replicas_for("ctx-a")
        assert (replicas[0], "ctx-a") in cluster.corrupted_replicas

    def test_corrupting_an_unstored_context_is_a_noop(self):
        schedule = FaultSchedule([Corruption("ctx-missing", at_s=1.0)])
        backend, injector = cluster_injector(schedule)
        injector.apply_due(1.0)
        assert not backend.frontend.cluster.corrupted_replicas


class TestOutcomes:
    def test_recovery_clears_the_outcome(self):
        schedule = FaultSchedule([NodeCrash("node-0", at_s=1.0, recover_at_s=4.0)])
        _, injector = cluster_injector(schedule)
        injector.drain()
        (outcome,) = injector.finalize()
        assert outcome.fault_id == "fault-0"
        assert outcome.mttr_s == pytest.approx(3.0)

    def test_flap_reopens_the_fault_until_its_last_restore(self):
        schedule = FaultSchedule(
            [LinkDegradation(at_s=0.0, until_s=3.0, factor=0.5, node_id="node-0", flaps=1)]
        )
        _, injector = cluster_injector(schedule)
        injector.apply_due(2.0)  # degrade, restore, degrade again
        assert injector.outcomes["fault-0"].cleared_at_s is None
        injector.drain()
        (outcome,) = injector.finalize()
        assert outcome.cleared_at_s == pytest.approx(3.0)

    def test_finalize_orders_outcomes_by_fault_index(self):
        schedule = FaultSchedule(
            [
                NodeCrash("node-0", at_s=5.0, recover_at_s=6.0),
                GpuStraggler(at_s=1.0, until_s=2.0, slowdown=2.0),
            ]
        )
        _, injector = cluster_injector(schedule)
        injector.drain()
        outcomes = injector.finalize()
        assert [outcome.fault_id for outcome in outcomes] == ["fault-0", "fault-1"]

"""End-to-end telemetry: traced serving runs and their exported timelines."""

import json

import pytest

from repro.serving.api import ServeRequest, ServingSpec, TokenBucketAdmission, serve
from repro.telemetry import (
    COMPUTE,
    DECODE,
    QUEUEING,
    TRANSFER,
    Tracer,
    chrome_trace_events,
    to_chrome_trace,
)

SPEC = ServingSpec(model="mistral-7b", chunk_tokens=256, concurrency=4)


def contended_requests(n: int = 5) -> list[ServeRequest]:
    """Near-simultaneous queries against one context: link + GPU contention."""
    return [
        ServeRequest("shared-doc", f"Q{i}?", arrival_s=0.01 * i, num_tokens=640)
        for i in range(n)
    ]


def request_roots(tracer: Tracer) -> list:
    return [s for s in tracer.root_spans() if s.category == "request"]


def category_sums(root) -> dict:
    sums: dict = {}
    for child in root.children:
        sums[child.category] = sums.get(child.category, 0.0) + child.dur_s
    return sums


class TestTracedConcurrentRun:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        report = serve(SPEC, contended_requests(), tracer=tracer)
        return tracer, report

    def test_report_carries_the_tracer(self, traced):
        tracer, report = traced
        assert report.telemetry is tracer

    def test_one_root_span_per_response(self, traced):
        tracer, report = traced
        roots = request_roots(tracer)
        assert len(roots) == len(report.responses) == 5
        # Root spans cover arrival → finish and carry the context id.
        for root in roots:
            assert root.args["context_id"] == "shared-doc"
            assert root.track == f"request:{root.request_id}"

    def test_span_durations_sum_exactly_to_the_ttft_breakdown(self, traced):
        """The headline consistency property: per-category child-span sums
        reproduce each request's QueueingTTFTBreakdown components exactly
        (durations are copied from the simulator's records, never derived
        from endpoint subtraction)."""
        tracer, report = traced
        roots_by_arrival = {root.start_s: root for root in request_roots(tracer)}
        for response in report.responses:
            root = roots_by_arrival[response.arrival_s]
            sums = category_sums(root)
            ttft = response.ttft
            assert sums.get(TRANSFER, 0.0) == ttft.network_s
            assert sums.get(DECODE, 0.0) == ttft.decode_s
            assert sums.get(COMPUTE, 0.0) == ttft.compute_s
            assert sums.get(QUEUEING, 0.0) == pytest.approx(
                ttft.queueing_s, rel=1e-12, abs=1e-15
            )
            assert root.dur_s == pytest.approx(ttft.total_s, rel=1e-12, abs=1e-15)

    def test_queue_wait_spans_explain_the_slowest_request(self, traced):
        """Under contention the tail TTFT is queueing, and the trace shows
        which queue: the slow request's wait spans name the link and GPU."""
        tracer, report = traced
        slowest = max(report.responses, key=lambda r: r.ttft_s)
        fastest = min(report.responses, key=lambda r: r.ttft_s)
        assert slowest.ttft.queueing_s > fastest.ttft.queueing_s
        # Exact == on purpose: the root span's start is *copied* from the
        # arrival, so lookup by equality is the invariant under test.
        root = next(
            r
            for r in request_roots(tracer)
            if r.start_s == slowest.arrival_s  # simcheck: ignore[SIM004]
        )
        waits = [c for c in root.children if c.category == QUEUEING]
        assert waits, "the slowest request must show explicit wait spans"
        assert {c.name for c in waits} <= {"admission wait", "link wait", "gpu wait"}

    def test_resource_tracks_record_utilization(self, traced):
        tracer, _report = traced
        assert tracer.spans_on("gpu"), "GPU launches must appear on the gpu track"
        assert tracer.spans_on("link:serving"), "transfers must appear on the link track"
        # Queue depths were sampled on every enqueue/dequeue event.
        depth_tracks = {s.track for s in tracer.samples if s.name == "queue_depth"}
        assert {"gpu", "link:serving"} <= depth_tracks
        metrics = tracer.metrics.snapshot()
        assert metrics["gpu_busy_s"]["values"]["gpu=gpu"] > 0.0
        assert metrics["request_ttft_s"]["values"][""]["count"] == 5

    def test_chrome_export_is_schema_valid_with_monotonic_timestamps(self, traced):
        tracer, _report = traced
        trace = to_chrome_trace(tracer)
        assert json.loads(json.dumps(trace)) == trace
        events = trace["traceEvents"]
        phases = [e["ph"] for e in events]
        first_timed = phases.index(next(p for p in phases if p != "M"))
        assert set(phases[:first_timed]) == {"M"}
        assert "M" not in phases[first_timed:]
        timestamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert timestamps == sorted(timestamps)
        assert all(ts >= 0 for ts in timestamps)


class TestZeroOverheadDefault:
    def test_untraced_runs_record_nothing_and_match_traced_results(self):
        requests = contended_requests()
        untraced = serve(SPEC, requests)
        assert untraced.telemetry is None

        tracer = Tracer()
        traced = serve(SPEC, contended_requests(), tracer=tracer)
        assert [r.ttft_s for r in traced.responses] == [
            r.ttft_s for r in untraced.responses
        ]

    def test_null_tracer_stays_empty(self):
        from repro.telemetry import NullTracer

        tracer = NullTracer()
        serve(SPEC, contended_requests(3), tracer=tracer)
        assert tracer.spans == [] and tracer.instants == [] and tracer.samples == []


class TestDriverEvents:
    def test_ingests_and_sheds_appear_as_events(self):
        tracer = Tracer()
        requests = [
            ServeRequest("doc-a", "Q0?", arrival_s=0.0, num_tokens=320),
            ServeRequest("doc-a", "Q1?", arrival_s=0.01, num_tokens=320),
            ServeRequest("doc-b", "Q2?", arrival_s=0.02, num_tokens=320),
            ServeRequest("doc-b", "Q3?", arrival_s=0.03, num_tokens=320),
        ]
        report = serve(
            SPEC,
            requests,
            admission=TokenBucketAdmission(rate_per_s=2.0, burst=1),
            tracer=tracer,
        )
        assert report.shed > 0
        sheds = [i for i in tracer.instants if i.name == "shed"]
        assert len(sheds) == report.shed
        assert all(shed.track == "admission" for shed in sheds)
        assert tracer.metrics.counter("requests_shed").value() == report.shed
        ingests = tracer.find_spans(name="ingest/encode")
        # Only the admitted arrival triggered an ingest: shed requests never
        # reach the ingest path, so their contexts leave no encode span.
        assert {s.args["context_id"] for s in ingests} == {"doc-a"}
        assert all(s.track == "ingest" for s in ingests)

    def test_cluster_runs_trace_topology_and_storage_events(self):
        spec = ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            topology="cluster",
            num_nodes=2,
            replication=2,
            concurrency=2,
        )
        tracer = Tracer()
        from repro.serving.api import Driver, build_backend

        requests = [
            ServeRequest("ha-doc", f"Q{i}?", arrival_s=0.5 * i, num_tokens=640)
            for i in range(6)
        ]
        backend = build_backend(spec)
        driver = Driver(backend, requests, node_failures={3: "node-0"}, tracer=tracer)
        report = driver.run()
        assert report.hard_failures == 0
        downs = [i for i in tracer.instants if i.name == "node down"]
        assert len(downs) == 1 and downs[0].track == "cluster"
        assert downs[0].args == {"node": "node-0"}
        # Requests after the failure still serve from the surviving replica.
        assert report.kv_served > 0
        events = chrome_trace_events(tracer)
        timestamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert timestamps == sorted(timestamps)

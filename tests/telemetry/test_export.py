"""Chrome trace-event and JSONL export formats."""

import json

from repro.telemetry import (
    Tracer,
    chrome_trace_events,
    iter_jsonl_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.export import REQUESTS_PID, RESOURCES_PID


def small_tracer() -> Tracer:
    """A hand-built tracer touching every event kind and both pid groups."""
    tracer = Tracer()
    root = tracer.span(
        "request doc", track="request:0", start_s=0.0, dur_s=1.0, request_id=0
    )
    tracer.span(
        "transfer", track="request:0", start_s=0.1, dur_s=0.4, category="transfer",
        parent=root, bytes=1000,
    )
    tracer.span("batch decode x2", track="gpu", start_s=0.5, dur_s=0.2, category="decode")
    tracer.instant("eviction", track="storage:local", at_s=0.3, context_id="old-doc")
    tracer.sample("queue_depth", 2, track="gpu", at_s=0.45)
    tracer.metrics.counter("requests_served").inc(1, path="kv")
    return tracer


class TestChromeTrace:
    def test_metadata_events_come_first_and_name_every_track(self):
        tracer = small_tracer()
        events = chrome_trace_events(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        assert events[: len(meta)] == meta  # all "M" events lead
        process_names = {
            e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert process_names == {REQUESTS_PID: "requests", RESOURCES_PID: "resources"}
        thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert thread_names == {"request:0", "gpu", "storage:local"}

    def test_timestamps_are_monotonic_microseconds(self):
        events = chrome_trace_events(small_tracer())
        timed = [e for e in events if e["ph"] != "M"]
        timestamps = [e["ts"] for e in timed]
        assert timestamps == sorted(timestamps)
        # The sim clock is seconds; the trace wants microseconds.
        transfer = next(e for e in timed if e["name"] == "transfer")
        assert transfer["ts"] == 0.1 * 1e6
        assert transfer["dur"] == 0.4 * 1e6

    def test_event_shapes_match_the_trace_event_format(self):
        events = chrome_trace_events(small_tracer())
        for event in events:
            assert event["ph"] in {"M", "X", "i", "C"}
            assert "pid" in event and "tid" in event
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"  # thread-scoped instant
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["name"] == "gpu queue_depth"
        assert counter["args"] == {"queue_depth": 2.0}

    def test_request_and_resource_tracks_split_by_pid(self):
        events = chrome_trace_events(small_tracer())
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert spans["request doc"]["pid"] == REQUESTS_PID
        assert spans["batch decode x2"]["pid"] == RESOURCES_PID

    def test_trace_object_round_trips_through_json(self):
        trace = to_chrome_trace(small_tracer())
        assert json.loads(json.dumps(trace)) == trace
        assert trace["displayTimeUnit"] == "ms"
        metrics = trace["otherData"]["metrics"]
        assert metrics["requests_served"]["values"] == {"path=kv": 1.0}

    def test_write_chrome_trace_creates_parent_dirs(self, tmp_path):
        out = tmp_path / "nested" / "trace.json"
        path = write_chrome_trace(small_tracer(), out)
        assert path == out
        loaded = json.loads(out.read_text())
        assert {e["ph"] for e in loaded["traceEvents"]} == {"M", "X", "i", "C"}


class TestJsonl:
    def test_records_are_time_ordered_and_self_describing(self):
        records = list(iter_jsonl_events(small_tracer()))
        assert records[-1]["kind"] == "metrics"
        timed = records[:-1]
        assert [r["kind"] for r in timed] == ["span", "span", "instant", "counter", "span"]
        times = [r.get("start_s", r.get("at_s")) for r in timed]
        assert times == sorted(times)

    def test_write_jsonl_emits_one_object_per_line(self, tmp_path):
        out = write_jsonl(small_tracer(), tmp_path / "events.jsonl")
        lines = out.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert len(parsed) == 6  # 3 spans + 1 instant + 1 counter + metrics
        assert parsed[-1]["metrics"]["requests_served"]["type"] == "counter"

    def test_round_trip_reconstructs_the_tracer_state(self, tmp_path):
        """Everything the tracer holds survives the trip through the file."""
        tracer = small_tracer()
        out = write_jsonl(tracer, tmp_path / "events.jsonl")
        records = [json.loads(line) for line in out.read_text().splitlines()]

        spans = [r for r in records if r["kind"] == "span"]
        assert len(spans) == len(tracer.spans)
        by_name = {s["name"]: s for s in spans}
        for span in tracer.spans:
            record = by_name[span.name]
            assert record["track"] == span.track
            assert record["start_s"] == span.start_s
            assert record["dur_s"] == span.dur_s
            assert record["category"] == span.category
            assert record["args"] == span.args

        (instant,) = [r for r in records if r["kind"] == "instant"]
        (tracer_instant,) = tracer.instants
        assert instant["name"] == tracer_instant.name
        assert instant["at_s"] == tracer_instant.at_s
        assert instant["track"] == tracer_instant.track

        (counter,) = [r for r in records if r["kind"] == "counter"]
        (sample,) = tracer.samples
        assert counter["name"] == sample.name
        assert counter["at_s"] == sample.at_s
        assert counter["value"] == sample.value

        (metrics,) = [r for r in records if r["kind"] == "metrics"]
        assert metrics["metrics"] == tracer.metrics.snapshot()

"""Self-contained HTML dashboard rendering."""

import re

import pytest

from repro.telemetry import (
    AlertEngine,
    BurnRateRule,
    SLOObjective,
    TimeSeriesRecorder,
    render_dashboard,
    render_diff_dashboard,
    write_dashboard,
)


@pytest.fixture()
def recorder():
    # Windows 2-3 blow the SLO (misses at 1.0s TTFT), window 4 recovers.
    rec = TimeSeriesRecorder(window_s=1.0)
    for i in range(50):
        at = i * 0.1
        failing = 2.0 <= at < 4.0
        rec.record_request(
            at,
            1.0 if failing else 0.1,
            used_kv_cache=not failing,
            served_tier=None if failing else ("hot" if i % 2 == 0 else "cold"),
        )
    rec.record_shed(2.1)
    rec.record_busy("gpu", 0.0, 3.0)
    rec.record_busy("link:node-0", 1.0, 1.5)
    rec.record_queue_depth("gpu", 2.5, 4)
    return rec


@pytest.fixture()
def html(recorder):
    objective = SLOObjective("ttft", ttft_s=0.5, target=0.9)
    engine = AlertEngine(
        [objective],
        rules=[BurnRateRule("fast-burn", long_s=2.0, short_s=1.0, max_burn_rate=8.0)],
    )
    alerts = engine.evaluate(recorder.windows())
    assert alerts  # fixture sanity: the scenario must raise at least one
    return render_dashboard(
        recorder, alerts=alerts, objectives=[objective], title="Test run"
    )


class TestSelfContained:
    """The dashboard must open from file:// with zero network access."""

    def test_no_external_references(self, html):
        assert not re.search(r"\bsrc\s*=", html, re.IGNORECASE)
        assert not re.search(r"\bhref\s*=", html, re.IGNORECASE)
        for proto in ("http://", "https://", "//cdn", "@import", "url("):
            assert proto not in html

    def test_single_document_with_inline_style_and_svg(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<style>") == 1
        assert "<script" not in html
        assert "<svg" in html

    def test_diff_view_is_also_self_contained(self, recorder):
        html = render_diff_dashboard(recorder, recorder)
        assert not re.search(r"\b(?:src|href)\s*=", html, re.IGNORECASE)


class TestContent:
    def test_panels_and_title_present(self, html):
        assert "Test run" in html
        for panel in (
            "Traffic",
            "TTFT",
            "Utilization",
            "Tier hit ratio",
            "Alerts",
        ):
            assert panel in html

    def test_windows_carry_machine_readable_attributes(self, html, recorder):
        assert 'data-window="0"' in html
        p99_ms = recorder.windows()[0].ttft_percentile(99.0) * 1000.0
        assert f'data-ttft-p99-ms="{p99_ms:.1f}"' in html
        assert 'data-shed="1"' in html
        assert re.search(r'data-hit-ratio="0\.\d+"', html)

    def test_alert_rows_carry_fire_and_resolve_instants(self, html):
        match = re.search(r'data-alert-count="(\d+)"', html)
        assert match and int(match.group(1)) > 0
        assert re.search(r'data-alert-name="ttft:[a-z-]+"', html)
        assert re.search(r'data-fired-at-s="[\d.]+"', html)
        assert re.search(r'data-resolved-at-s="[\d.]+"', html)

    def test_table_view_exists_behind_details(self, html):
        assert "<details" in html and "<table" in html

    def test_slo_reference_line_drawn(self, html):
        assert "SLO" in html

    def test_empty_run_still_renders_a_document(self):
        html = render_dashboard(TimeSeriesRecorder(window_s=1.0))
        assert html.startswith("<!DOCTYPE html>")
        assert 'data-alert-count="0"' in html
        assert "No alerts" in html


class TestFaultLane:
    def test_fault_bands_carry_machine_readable_attributes(self, recorder):
        from repro.faults import FaultOutcome

        faults = [
            FaultOutcome("fault-0", "crash", "node-0", 2.0, cleared_at_s=4.0),
            FaultOutcome("fault-1", "corruption", "ctx@replica", 3.0),
        ]
        html = render_dashboard(recorder, faults=faults, title="Chaos run")
        assert "Fault timeline" in html
        assert 'data-fault-count="2"' in html
        assert 'data-fault-id="fault-0"' in html
        assert 'data-kind="crash"' in html
        assert 'data-injected-at-s="2"' in html
        assert 'data-cleared-at-s="4"' in html
        # The censored fault has no clear instant; its band runs to the edge.
        assert 'data-fault-id="fault-1"' in html
        assert "not recovered in-run" in html

    def test_no_faults_no_lane(self, html):
        assert "data-fault-count" not in html
        assert "Fault timeline" not in html


class TestDiff:
    def test_diff_labels_and_totals(self, recorder):
        other = TimeSeriesRecorder(window_s=1.0)
        for i in range(10):
            other.record_request(i * 0.5, 0.2, used_kv_cache=True)
        html = render_diff_dashboard(
            recorder, other, labels=("healthy", "degraded"), title="Compare"
        )
        assert "Compare" in html
        assert "healthy" in html and "degraded" in html
        assert "Totals" in html


class TestWriteDashboard:
    def test_writes_file_and_returns_path(self, recorder, tmp_path):
        out = write_dashboard(tmp_path / "dash.html", recorder)
        assert out == tmp_path / "dash.html"
        text = out.read_text(encoding="utf-8")
        assert text.startswith("<!DOCTYPE html>")
        assert not re.search(r"\b(?:src|href)\s*=", text, re.IGNORECASE)

    def test_accepts_plain_window_sequence(self, recorder):
        html = render_dashboard(recorder.windows())
        assert "<svg" in html

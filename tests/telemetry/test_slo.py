"""SLO objectives, burn-rate alerting, and structural detectors."""

import pytest

from repro.telemetry import (
    AlertEngine,
    BurnRateRule,
    HitRatioCollapse,
    QueueDepthBuildup,
    SLOObjective,
    ShedStorm,
    TimeSeriesRecorder,
    default_burn_rules,
    default_detectors,
)


def build_windows(ttfts_per_window, *, window_s=1.0, shed_per_window=None):
    """Materialize windows from a list of per-window TTFT sample lists."""
    recorder = TimeSeriesRecorder(window_s=window_s)
    for i, ttfts in enumerate(ttfts_per_window):
        at = i * window_s + 0.5 * window_s
        for ttft in ttfts:
            recorder.record_request(at, ttft, used_kv_cache=True)
        for _ in range((shed_per_window or {}).get(i, 0)):
            recorder.record_shed(at)
    recorder.extend_to(len(ttfts_per_window) * window_s - 1e-9)
    return recorder.windows()


GOOD = [0.1] * 10
BAD = [1.0] * 10


class TestSLOObjective:
    def test_error_budget_and_events(self):
        objective = SLOObjective("ttft", ttft_s=0.5, target=0.9)
        assert objective.error_budget == pytest.approx(0.1)
        (window,) = build_windows([[0.1, 0.2, 0.8, 1.5]], shed_per_window={0: 2})
        bad, total = objective.events(window)
        assert (bad, total) == (4, 6)  # 2 violations + 2 sheds

    def test_shed_can_be_excluded(self):
        objective = SLOObjective("ttft", ttft_s=0.5, target=0.9, include_shed=False)
        (window,) = build_windows([[0.1, 0.8]], shed_per_window={0: 3})
        assert objective.events(window) == (1, 2)

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="ttft_s"):
            SLOObjective("ttft", ttft_s=0.0)
        with pytest.raises(ValueError, match="target"):
            SLOObjective("ttft", ttft_s=0.5, target=1.0)


class TestBurnRules:
    def test_wall_clock_defaults_follow_sre_handbook(self):
        rules = default_burn_rules()
        by_name = {r.name: r for r in rules}
        assert by_name["fast-burn"].long_s == 3600.0
        assert by_name["fast-burn"].max_burn_rate == 14.4
        assert by_name["fast-burn"].severity == "page"
        assert by_name["slow-burn"].long_s == 21600.0
        assert by_name["slow-burn"].severity == "ticket"

    def test_short_runs_scale_rules_to_the_window(self):
        rules = default_burn_rules(window_s=0.5)
        by_name = {r.name: r for r in rules}
        assert by_name["fast-burn"].long_s == 2.0
        assert by_name["fast-burn"].short_s == 0.5
        assert by_name["slow-burn"].long_s == 6.0

    def test_rule_validates_window_ordering(self):
        with pytest.raises(ValueError, match="short_s"):
            BurnRateRule("bad", long_s=1.0, short_s=2.0, max_burn_rate=1.0)


class TestBurnRateAlerts:
    # target=0.9 -> budget 0.1; an all-bad window burns at rate 10.
    OBJECTIVE = SLOObjective("ttft", ttft_s=0.5, target=0.9)
    RULE = BurnRateRule("burn", long_s=2.0, short_s=1.0, max_burn_rate=8.0)

    def engine(self):
        return AlertEngine([self.OBJECTIVE], rules=[self.RULE], detectors=())

    def test_fires_and_resolves_on_the_simulated_clock(self):
        # w0,w1 good; w2,w3 bad; w4 good. The long (2-window) burn first
        # reaches 10 >= 8 once w2 and w3 are both bad -> fires at 4.0s, and
        # drops once w4 lands -> resolves at 5.0s.
        windows = build_windows([GOOD, GOOD, BAD, BAD, GOOD])
        (alert,) = self.engine().evaluate(windows)
        assert alert.kind == "burn-rate"
        assert alert.name == "ttft:burn"
        assert alert.fired_at_s == 4.0
        assert alert.resolved_at_s == 5.0
        assert not alert.active
        assert alert.duration_s == 1.0
        assert alert.peak == pytest.approx(10.0)

    def test_still_active_alert_has_no_resolved_instant(self):
        windows = build_windows([GOOD, GOOD, BAD, BAD])
        (alert,) = self.engine().evaluate(windows)
        assert alert.fired_at_s == 4.0
        assert alert.resolved_at_s is None
        assert alert.active

    def test_requires_both_long_and_short_windows_burning(self):
        # A single bad window satisfies the short burn but the long
        # (2-window) burn is only 5 < 8, so nothing fires.
        windows = build_windows([GOOD, BAD, GOOD, GOOD])
        assert self.engine().evaluate(windows) == []

    def test_separate_episodes_become_separate_alerts(self):
        # At w0 only one window exists, so the clamped long burn already
        # reaches 10 -> the first episode fires at 1.0s.
        windows = build_windows([BAD, BAD, GOOD, GOOD, BAD, BAD, GOOD])
        alerts = self.engine().evaluate(windows)
        assert [a.fired_at_s for a in alerts] == [1.0, 6.0]
        assert [a.resolved_at_s for a in alerts] == [3.0, 7.0]

    def test_quiet_run_raises_no_alerts(self):
        windows = build_windows([GOOD, GOOD, GOOD])
        assert self.engine().evaluate(windows) == []
        assert self.engine().evaluate([]) == []


class TestDetectors:
    def test_queue_depth_buildup_needs_consecutive_windows(self):
        detector = QueueDepthBuildup(min_depth=4.0, consecutive=2)
        recorder = TimeSeriesRecorder(window_s=1.0)
        for at, depth in [(0.5, 5), (1.5, 6), (2.5, 1), (3.5, 7)]:
            recorder.record_queue_depth("gpu", at, depth)
        (alert,) = detector.evaluate(recorder.windows())
        assert alert.kind == "queue-depth"
        assert alert.fired_at_s == 2.0  # end of the 2nd consecutive deep window
        assert alert.resolved_at_s == 3.0
        # the lone deep window at t=3.5 never reaches 2 consecutive

    def test_hit_ratio_collapse_compares_to_trailing_baseline(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        hits = [(0, True)] * 3 + [(1, True)] * 3 + [(2, True)] * 3
        misses = [(3, False)] * 4 + [(4, False)] * 4
        recovered = [(5, True)] * 3
        for idx, kv in hits + misses + recovered:
            recorder.record_request(idx + 0.5, 0.1, used_kv_cache=kv)
        (alert,) = HitRatioCollapse(min_served=3).evaluate(recorder.windows())
        assert alert.kind == "hit-ratio"
        assert alert.fired_at_s == 4.0
        assert alert.resolved_at_s == 6.0

    def test_shed_storm(self):
        windows = build_windows(
            [GOOD, [0.1], GOOD], shed_per_window={1: 6}
        )
        (alert,) = ShedStorm(min_shed=5, min_ratio=0.5).evaluate(windows)
        assert alert.kind == "shed-storm"
        assert alert.fired_at_s == 2.0
        assert alert.resolved_at_s == 3.0
        assert alert.peak == 6.0

    def test_default_detectors_cover_all_three_signals(self):
        kinds = {type(d).__name__ for d in default_detectors()}
        assert kinds == {"QueueDepthBuildup", "HitRatioCollapse", "ShedStorm"}


class TestAlertEngine:
    def test_alerts_sorted_by_fire_time_then_name(self):
        objective = SLOObjective("ttft", ttft_s=0.5, target=0.9)
        rules = [
            BurnRateRule("a-burn", long_s=2.0, short_s=1.0, max_burn_rate=8.0),
            BurnRateRule("b-burn", long_s=2.0, short_s=1.0, max_burn_rate=8.0),
        ]
        windows = build_windows([GOOD, BAD, BAD, GOOD])
        alerts = AlertEngine([objective], rules=rules, detectors=()).evaluate(windows)
        assert [a.name for a in alerts] == ["ttft:a-burn", "ttft:b-burn"]

    def test_empty_engine_is_silent(self):
        windows = build_windows([BAD, BAD])
        assert AlertEngine(detectors=()).evaluate(windows) == []

    def test_default_rules_scale_to_observed_window_width(self):
        # No explicit rules: the engine derives burn rules from the window
        # width, so a sustained outage on a sub-second run still alerts.
        objective = SLOObjective("ttft", ttft_s=0.5, target=0.9)
        windows = build_windows([GOOD] * 2 + [BAD] * 12 + [GOOD] * 2)
        alerts = AlertEngine([objective], detectors=()).evaluate(windows)
        by_name = {a.name: a for a in alerts}
        fast = by_name["ttft:fast-burn"]
        assert fast.kind == "burn-rate" and fast.severity == "page"
        assert fast.resolved_at_s is not None

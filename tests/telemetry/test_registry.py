"""Metrics primitives: labeled counters, gauges, histograms, the registry."""

import pytest

from repro.metrics.stats import percentiles
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_label_sets_accumulate_independently(self):
        counter = Counter("bytes_moved")
        counter.inc(100, link="node-0")
        counter.inc(50, link="node-0")
        counter.inc(7, link="node-1")
        assert counter.value(link="node-0") == 150
        assert counter.value(link="node-1") == 7
        assert counter.value(link="node-9") == 0.0
        assert counter.total() == 157

    def test_rejects_negative_increments(self):
        counter = Counter("evictions")
        with pytest.raises(ValueError, match="non-negative"):
            counter.inc(-1)

    def test_snapshot_renders_label_strings(self):
        counter = Counter("requests")
        counter.inc(3, path="kv")
        counter.inc()
        assert counter.snapshot() == {"": 1.0, "path=kv": 3.0}


class TestGauge:
    def test_tracks_last_min_max_and_samples(self):
        gauge = Gauge("queue_depth")
        for depth in (2, 5, 1):
            gauge.set(depth, gpu="gpu")
        assert gauge.value(gpu="gpu") == 1
        assert gauge.max(gpu="gpu") == 5
        entry = gauge.snapshot()["gpu=gpu"]
        assert entry["min"] == 1 and entry["samples"] == 3

    def test_unset_label_reads_zero(self):
        gauge = Gauge("queue_depth")
        assert gauge.value(gpu="other") == 0.0
        assert gauge.max(gpu="other") == 0.0


class TestHistogram:
    def test_summary_uses_the_shared_percentile_helper(self):
        histogram = Histogram("ttft_s", qs=(50.0, 99.0))
        samples = [0.1, 0.5, 0.9, 0.2, 0.4]
        for value in samples:
            histogram.observe(value)
        summary = histogram.summary()
        p50, p99 = percentiles(samples, (50.0, 99.0))
        assert summary["p50"] == p50
        assert summary["p99"] == p99
        assert summary["count"] == 5
        assert summary["max"] == 0.9

    def test_empty_summary_is_all_zero(self):
        """Idle resources must snapshot cleanly, mirroring summarize_latencies."""
        summary = Histogram("ttft_s").summary()
        assert summary == {"count": 0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_values_returns_a_copy(self):
        histogram = Histogram("ttft_s")
        histogram.observe(1.0)
        histogram.values().append(2.0)
        assert histogram.count() == 1


class TestHistogramReservoir:
    def test_count_mean_max_stay_exact_when_sampling(self):
        histogram = Histogram("ttft_s", max_samples=100)
        for i in range(10_000):
            histogram.observe(float(i))
        assert histogram.count() == 10_000
        assert len(histogram.values()) == 100
        summary = histogram.summary()
        assert summary["count"] == 10_000
        assert summary["mean"] == pytest.approx(4999.5)
        assert summary["max"] == 9999.0

    def test_reservoir_is_deterministic_per_metric_name(self):
        def build(name):
            histogram = Histogram(name, max_samples=16)
            for i in range(1000):
                histogram.observe(float(i))
            return histogram.values()

        assert build("ttft_s") == build("ttft_s")
        assert build("ttft_s") != build("decode_s")

    def test_below_capacity_keeps_every_sample(self):
        histogram = Histogram("ttft_s", max_samples=100)
        for i in range(10):
            histogram.observe(float(i))
        assert histogram.values() == [float(i) for i in range(10)]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="max_samples"):
            Histogram("ttft_s", max_samples=0)

    def test_registry_passes_capacity_through(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("ttft_s", max_samples=8)
        assert registry.histogram("ttft_s") is histogram
        for i in range(100):
            histogram.observe(float(i))
        assert len(histogram.values()) == 8
        registry.counter("requests")
        with pytest.raises(TypeError, match="counter"):
            registry.histogram("requests")


class TestPrometheusText:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help='served "requests"').inc(3, path="kv")
        registry.gauge("queue_depth").set(4, gpu="gpu-0")
        histogram = registry.histogram("ttft_s", help="first token latency")
        for value in (0.1, 0.2, 0.3, 0.4):
            histogram.observe(value)
        return registry

    def test_exposition_format(self):
        text = self.build().to_prometheus_text()
        lines = text.splitlines()
        assert "# TYPE requests_total counter" in lines
        # HELP text escapes backslash/newline only; quotes stay literal.
        assert '# HELP requests_total served "requests"' in lines
        assert 'requests_total{path="kv"} 3' in lines
        assert "# TYPE queue_depth gauge" in lines
        assert 'queue_depth{gpu="gpu-0"} 4' in lines
        assert "# TYPE ttft_s summary" in lines
        assert 'ttft_s{quantile="0.5"}' in "\n".join(lines)
        assert "ttft_s_sum 1" in text
        assert "ttft_s_count 4" in text
        assert text.endswith("\n")

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("link:node-0/bytes").inc(1)
        text = registry.to_prometheus_text()
        # '-' and '/' are illegal in exposition names; ':' is legal.
        assert "link:node_0_bytes 1" in text

    def test_output_is_deterministic_across_insertion_order(self):
        forward = MetricsRegistry()
        forward.counter("a").inc(1, x="1")
        forward.counter("b").inc(2)
        backward = MetricsRegistry()
        backward.counter("b").inc(2)
        backward.counter("a").inc(1, x="1")
        assert forward.to_prometheus_text() == backward.to_prometheus_text()
        assert list(forward.snapshot()) == list(backward.snapshot())


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("requests") is registry.counter("requests")
        assert registry.get("requests") is not None
        assert registry.get("missing") is None

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("requests")

    def test_snapshot_shape_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("requests", help="served requests").inc(2, path="kv")
        registry.gauge("depth").set(3, gpu="gpu")
        registry.histogram("ttft_s").observe(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["requests"]["type"] == "counter"
        assert snapshot["requests"]["help"] == "served requests"
        assert snapshot["requests"]["values"] == {"path=kv": 2.0}
        assert snapshot["ttft_s"]["values"][""]["count"] == 1
        assert sorted(registry.names()) == ["depth", "requests", "ttft_s"]

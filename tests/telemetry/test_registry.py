"""Metrics primitives: labeled counters, gauges, histograms, the registry."""

import pytest

from repro.metrics.stats import percentiles
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_label_sets_accumulate_independently(self):
        counter = Counter("bytes_moved")
        counter.inc(100, link="node-0")
        counter.inc(50, link="node-0")
        counter.inc(7, link="node-1")
        assert counter.value(link="node-0") == 150
        assert counter.value(link="node-1") == 7
        assert counter.value(link="node-9") == 0.0
        assert counter.total() == 157

    def test_rejects_negative_increments(self):
        counter = Counter("evictions")
        with pytest.raises(ValueError, match="non-negative"):
            counter.inc(-1)

    def test_snapshot_renders_label_strings(self):
        counter = Counter("requests")
        counter.inc(3, path="kv")
        counter.inc()
        assert counter.snapshot() == {"": 1.0, "path=kv": 3.0}


class TestGauge:
    def test_tracks_last_min_max_and_samples(self):
        gauge = Gauge("queue_depth")
        for depth in (2, 5, 1):
            gauge.set(depth, gpu="gpu")
        assert gauge.value(gpu="gpu") == 1
        assert gauge.max(gpu="gpu") == 5
        entry = gauge.snapshot()["gpu=gpu"]
        assert entry["min"] == 1 and entry["samples"] == 3

    def test_unset_label_reads_zero(self):
        gauge = Gauge("queue_depth")
        assert gauge.value(gpu="other") == 0.0
        assert gauge.max(gpu="other") == 0.0


class TestHistogram:
    def test_summary_uses_the_shared_percentile_helper(self):
        histogram = Histogram("ttft_s", qs=(50.0, 99.0))
        samples = [0.1, 0.5, 0.9, 0.2, 0.4]
        for value in samples:
            histogram.observe(value)
        summary = histogram.summary()
        p50, p99 = percentiles(samples, (50.0, 99.0))
        assert summary["p50"] == p50
        assert summary["p99"] == p99
        assert summary["count"] == 5
        assert summary["max"] == 0.9

    def test_empty_summary_is_all_zero(self):
        """Idle resources must snapshot cleanly, mirroring summarize_latencies."""
        summary = Histogram("ttft_s").summary()
        assert summary == {"count": 0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_values_returns_a_copy(self):
        histogram = Histogram("ttft_s")
        histogram.observe(1.0)
        histogram.values().append(2.0)
        assert histogram.count() == 1


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("requests") is registry.counter("requests")
        assert registry.get("requests") is not None
        assert registry.get("missing") is None

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("requests")

    def test_snapshot_shape_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("requests", help="served requests").inc(2, path="kv")
        registry.gauge("depth").set(3, gpu="gpu")
        registry.histogram("ttft_s").observe(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["requests"]["type"] == "counter"
        assert snapshot["requests"]["help"] == "served requests"
        assert snapshot["requests"]["values"] == {"path=kv": 2.0}
        assert snapshot["ttft_s"]["values"][""]["count"] == 1
        assert sorted(registry.names()) == ["depth", "requests", "ttft_s"]

"""Windowed time-series: bucketing, exact recombination, tracer rebuild."""

from types import SimpleNamespace

import pytest

from repro.metrics.stats import percentiles
from repro.telemetry import TimeSeriesRecorder, Tracer, auto_window_s


def response(arrival_s, ttft_s, *, kv=True, tier=None):
    return SimpleNamespace(
        arrival_s=arrival_s, ttft_s=ttft_s, used_kv_cache=kv, served_tier=tier
    )


class TestAutoWindow:
    def test_snaps_to_1_2_5_steps(self):
        assert auto_window_s(60.0) == 1.0
        assert auto_window_s(100.0) == 2.0
        assert auto_window_s(250.0) == 5.0
        assert auto_window_s(1.2) == 0.02

    def test_degenerate_durations_fall_back_to_one_second(self):
        assert auto_window_s(0.0) == 1.0
        assert auto_window_s(-3.0) == 1.0

    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError, match="target_windows"):
            auto_window_s(10.0, target_windows=0)


class TestBucketing:
    def test_requests_key_to_their_arrival_window(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        recorder.record_request(0.2, 0.1, used_kv_cache=True)
        recorder.record_request(1.9, 0.3, used_kv_cache=False)
        recorder.record_shed(1.5)
        windows = recorder.windows()
        assert [w.served for w in windows] == [1, 1]
        assert [w.shed for w in windows] == [0, 1]
        assert windows[1].arrivals == 2
        assert windows[0].kv_served == 1 and windows[1].text_served == 1

    def test_quiet_windows_are_materialized_not_skipped(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        recorder.record_request(0.5, 0.1, used_kv_cache=True)
        recorder.record_request(3.5, 0.1, used_kv_cache=True)
        windows = recorder.windows()
        assert [w.index for w in windows] == [0, 1, 2, 3]
        assert windows[1].arrivals == 0 and windows[1].ttft_count == 0
        assert windows[1].hit_ratio == 0.0

    def test_tier_counts_split_hot_and_cold(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        recorder.record_request(0.1, 0.1, used_kv_cache=True, served_tier="hot")
        recorder.record_request(0.2, 0.2, used_kv_cache=True, served_tier="cold")
        recorder.record_request(0.3, 0.9, used_kv_cache=False)
        window = recorder.windows()[0]
        assert window.hot_served == 1 and window.cold_served == 1
        assert window.miss_ratio == pytest.approx(1 / 3)
        assert window.hot_hit_ratio == pytest.approx(1 / 3)

    def test_busy_intervals_split_across_window_boundaries(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        recorder.record_busy("gpu", 0.5, 2.0)  # covers [0.5, 2.5)
        windows = recorder.windows()
        assert windows[0].busy_s["gpu"] == pytest.approx(0.5)
        assert windows[1].busy_s["gpu"] == pytest.approx(1.0)
        assert windows[2].busy_s["gpu"] == pytest.approx(0.5)
        assert windows[1].utilization("gpu") == pytest.approx(1.0)

    def test_busy_interval_on_a_float_window_boundary_terminates(self):
        # 0.1 // 0.05 floors into the window that *ends* at 0.1; the split
        # loop must still make progress and bill the next window.
        recorder = TimeSeriesRecorder(window_s=0.05)
        recorder.record_busy("gpu", 0.1, 0.3)
        total = sum(w.busy_s.get("gpu", 0.0) for w in recorder.windows())
        assert total == pytest.approx(0.3)

    def test_queue_depth_keeps_the_window_peak(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        recorder.record_queue_depth("gpu", 0.1, 2)
        recorder.record_queue_depth("gpu", 0.9, 5)
        recorder.record_queue_depth("gpu", 0.95, 1)
        assert recorder.windows()[0].max_queue_depth["gpu"] == 5.0

    def test_extend_to_covers_trailing_quiet_time(self):
        recorder = TimeSeriesRecorder(window_s=1.0)
        recorder.record_request(0.5, 0.1, used_kv_cache=True)
        recorder.extend_to(4.2)
        assert len(recorder.windows()) == 5
        assert recorder.duration_s == 5.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError, match="window_s"):
            TimeSeriesRecorder(window_s=0.0)


class TestConsistency:
    """The acceptance guarantee: windows recombine to the whole-run numbers."""

    RESPONSES = [
        response(0.1, 0.30, kv=True, tier="hot"),
        response(0.4, 0.10, kv=True, tier="cold"),
        response(1.2, 0.90, kv=False),
        response(1.7, 0.20, kv=True, tier="hot"),
        response(2.3, 0.55, kv=False),
        response(2.9, 0.15, kv=True, tier="hot"),
        response(3.3, 0.70, kv=True, tier="cold"),
    ]
    SHEDS = [1.5, 2.4]

    def test_single_window_matches_whole_run_exactly(self):
        recorder = TimeSeriesRecorder.from_run(
            self.RESPONSES, window_s=100.0, shed_times=self.SHEDS
        )
        assert len(recorder.windows()) == 1
        window = recorder.windows()[0]
        ttfts = [r.ttft_s for r in self.RESPONSES]
        # Samples are kept in recording order, so percentiles are the exact
        # values the RunReport's summarize_latencies would produce.
        p50, p95, p99 = percentiles(ttfts, (50.0, 95.0, 99.0))
        assert window.ttft_percentile(50.0) == p50
        assert window.ttft_percentile(95.0) == p95
        assert window.ttft_percentile(99.0) == p99
        assert window.served == 7 and window.shed == 2 and window.arrivals == 9
        assert window.kv_served == 5 and window.text_served == 2
        assert window.hit_ratio == 5 / 7
        totals = recorder.totals()
        assert totals["ttft_p50_s"] == p50
        assert totals["ttft_p95_s"] == p95
        assert totals["ttft_p99_s"] == p99
        assert totals["num_requests"] == 9

    def test_multi_window_counts_sum_and_percentiles_recombine(self):
        whole = TimeSeriesRecorder.from_run(
            self.RESPONSES, window_s=100.0, shed_times=self.SHEDS
        )
        split = TimeSeriesRecorder.from_run(
            self.RESPONSES, window_s=0.5, shed_times=self.SHEDS
        )
        windows = split.windows()
        assert len(windows) > 3
        assert sum(w.served for w in windows) == 7
        assert sum(w.shed for w in windows) == 2
        assert sum(w.kv_served for w in windows) == 5
        assert sum(w.hot_served for w in windows) == 3
        assert sum(w.cold_served for w in windows) == 2
        # Percentiles are order-insensitive: recombined totals are identical
        # no matter how the run was windowed.
        assert split.totals() == whole.totals()

    def test_summary_is_json_shaped(self):
        import json

        recorder = TimeSeriesRecorder.from_run(self.RESPONSES, window_s=1.0)
        summaries = [w.summary() for w in recorder.windows()]
        assert json.loads(json.dumps(summaries)) == summaries
        assert {"ttft_p50_s", "ttft_p90_s", "ttft_p99_s"} <= set(summaries[0])


class TestFromTracer:
    def test_rebuilds_requests_sheds_and_resources(self):
        tracer = Tracer()
        root = tracer.span(
            "request a", track="request:0", start_s=0.2, dur_s=0.3, category="request"
        )
        root.annotate(used_kv_cache=True, tier="hot")
        miss = tracer.span(
            "request b", track="request:1", start_s=1.4, dur_s=0.8, category="request"
        )
        miss.annotate(used_kv_cache=False)
        # A child span must not be double-counted as a request.
        tracer.span(
            "transfer", track="request:0", start_s=0.2, dur_s=0.1,
            category="transfer", parent=root,
        )
        tracer.instant("shed", track="admission", at_s=0.9, category="admission")
        tracer.span("batch decode", track="gpu", start_s=0.5, dur_s=0.4, category="decode")
        tracer.sample("queue_depth", 3, track="gpu", at_s=0.6)
        tracer.advance_to(3.0)

        recorder = TimeSeriesRecorder.from_tracer(tracer, window_s=1.0)
        windows = recorder.windows()
        assert len(windows) == 3  # extends to tracer.now
        assert windows[0].served == 1 and windows[0].hot_served == 1
        assert windows[0].shed == 1
        assert windows[1].text_served == 1
        assert windows[1].ttft_samples == [0.8]
        assert windows[0].busy_s["gpu"] == pytest.approx(0.4)
        assert windows[0].max_queue_depth["gpu"] == 3.0
        # Request swimlanes never become resource lanes.
        assert recorder.resource_tracks() == ["gpu"]

"""Tracer, Span and NullTracer semantics."""

import pytest

from repro.telemetry import (
    COMPUTE,
    DECODE,
    NULL_TRACER,
    QUEUEING,
    TRANSFER,
    NullTracer,
    Tracer,
    emit_breakdown_spans,
)


class TestSpan:
    def test_durations_are_authoritative_not_derived(self):
        tracer = Tracer()
        span = tracer.span("transfer", track="link:a", start_s=1.0, dur_s=0.25)
        assert span.dur_s == 0.25
        assert span.end_s == 1.25

    def test_end_clamps_to_non_negative(self):
        tracer = Tracer()
        span = tracer.span("x", track="t", start_s=2.0)
        span.end(1.5)
        assert span.dur_s == 0.0

    def test_end_s_keyword_computes_duration(self):
        tracer = Tracer()
        span = tracer.span("x", track="t", start_s=1.0, end_s=3.5)
        assert span.dur_s == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Tracer().span("x", track="t", start_s=0.0, dur_s=-1.0)

    def test_children_nest_and_inherit_request_id(self):
        tracer = Tracer()
        root = tracer.span("request", track="request:0", start_s=0.0, request_id=0)
        child = tracer.span("wait", track="request:0", start_s=0.0, parent=root)
        assert child in root.children
        assert child.request_id == 0
        assert [s.name for s in root.walk()] == ["request", "wait"]

    def test_annotate_merges_args(self):
        tracer = Tracer()
        span = tracer.span("x", track="t", start_s=0.0, bytes=10)
        span.annotate(tier="disk")
        assert span.args == {"bytes": 10, "tier": "disk"}


class TestTracer:
    def test_soft_clock_never_moves_backward(self):
        tracer = Tracer()
        tracer.advance_to(2.0)
        tracer.advance_to(1.0)
        assert tracer.now == 2.0
        assert tracer.instant("evt", track="t").at_s == 2.0
        assert tracer.span("s", track="t").start_s == 2.0

    def test_request_ids_are_run_unique(self):
        tracer = Tracer()
        assert [tracer.new_request_id() for _ in range(3)] == [0, 1, 2]

    def test_tracks_keep_first_use_order(self):
        tracer = Tracer()
        tracer.span("a", track="gpu", start_s=0.0)
        tracer.sample("depth", 1, track="link:x", at_s=0.0)
        tracer.instant("down", track="cluster", at_s=0.0)
        tracer.span("b", track="gpu", start_s=1.0)
        assert tracer.tracks == ["gpu", "link:x", "cluster"]

    def test_queries_filter_by_track_request_and_name(self):
        tracer = Tracer()
        root = tracer.span("request", track="request:7", start_s=0.0, request_id=7)
        tracer.span("gpu wait", track="request:7", start_s=0.0, category=QUEUEING, parent=root)
        tracer.span("batch decode", track="gpu", start_s=0.0, category="decode")
        assert len(tracer.spans_on("request:7")) == 2
        assert len(tracer.spans_for_request(7)) == 2
        assert tracer.root_spans() == [root, tracer.spans_on("gpu")[0]]
        assert tracer.find_spans(name="gpu wait")[0].category == QUEUEING
        assert tracer.find_spans(category="decode")[0].name == "batch decode"


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        span = tracer.span("x", track="t", start_s=0.0, dur_s=1.0)
        span.end(5.0).annotate(a=1)
        tracer.instant("evt", track="t")
        tracer.sample("depth", 3, track="t")
        tracer.advance_to(10.0)
        assert tracer.spans == [] and tracer.instants == [] and tracer.samples == []
        assert tracer.tracks == []
        assert tracer.now == 0.0
        assert list(span.walk()) == []

    def test_metrics_discard_updates(self):
        metrics = NULL_TRACER.metrics
        counter = metrics.counter("requests")
        counter.inc(5, path="kv")
        assert counter.value(path="kv") == 0.0
        metrics.gauge("depth").set(3)
        metrics.histogram("ttft_s").observe(1.0)
        assert metrics.snapshot() == {}

    def test_span_handle_is_shared(self):
        assert NULL_TRACER.span("a", track="t") is NULL_TRACER.span("b", track="t")


class TestEmitBreakdownSpans:
    def test_components_lie_back_to_back_from_arrival(self):
        from repro.metrics.system import QueueingTTFTBreakdown

        tracer = Tracer()
        ttft = QueueingTTFTBreakdown(
            network_s=0.2, decode_s=0.05, compute_s=0.1, queueing_s=0.3
        )
        root = emit_breakdown_spans(tracer, label="doc", arrival_s=1.0, ttft=ttft)
        assert root.start_s == 1.0
        # Exact == on purpose: the duration is copied, not accumulated.
        assert root.dur_s == ttft.total_s  # simcheck: ignore[SIM004]
        assert root.args["context_id"] == "doc"
        categories = [child.category for child in root.children]
        assert categories == [QUEUEING, TRANSFER, DECODE, COMPUTE]
        cursor = 1.0
        for child in root.children:
            assert child.start_s == cursor
            cursor = child.end_s
        assert cursor == pytest.approx(1.0 + ttft.total_s)

    def test_zero_components_are_skipped(self):
        from repro.metrics.system import TTFTBreakdown

        tracer = Tracer()
        ttft = TTFTBreakdown(network_s=0.2, decode_s=0.0, compute_s=0.1)
        root = emit_breakdown_spans(tracer, label="doc", arrival_s=0.0, ttft=ttft)
        # No queueing_s attribute and a zero decode: only transfer + compute.
        assert [child.category for child in root.children] == [TRANSFER, COMPUTE]

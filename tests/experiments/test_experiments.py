"""Tests for the experiment harness (run with tiny, fast settings).

These are integration tests of the table/figure reproductions: they check the
*shape* of each result — who wins, by roughly what factor, where crossovers
fall — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    run_appendix_e,
    run_figure11,
    run_figure12_concurrency,
    run_figure12_context_length,
    run_figure13,
    run_figure14,
    run_figure15,
    run_figure16,
    run_figure19,
    run_figure5,
    run_figure8,
    run_table1,
    run_table2,
    run_tiered_storage,
)
from repro.experiments.common import ExperimentResult


def by_method(result, key="method"):
    grouped = {}
    for row in result.rows:
        grouped.setdefault(row[key], []).append(row)
    return grouped


class TestHarnessBasics:
    def test_registry_covers_every_artifact(self):
        assert len(ALL_EXPERIMENTS) == 21

    def test_experiment_result_helpers(self):
        result = ExperimentResult(name="x", description="demo")
        result.add_row(a=1, b=2.5)
        result.add_row(a=2, b=3.5)
        assert result.column("a") == [1, 2]
        assert result.filter(a=2)[0]["b"] == 3.5
        assert "demo" in result.format_table()


class TestTables:
    def test_table2_matches_paper(self):
        result = run_table2()
        rows = {row["dataset"]: row for row in result.rows}
        assert rows["longchat"]["size"] == 200
        assert abs(rows["longchat"]["median_tokens"] - 9_400) < 500
        assert rows["wikitext"]["size"] == 62

    def test_table1_ordering(self):
        result = run_table1(num_contexts=1, context_token_cap=1_500)
        rows = {row["technique"]: row for row in result.rows}
        # CacheGen shrinks the cache by ~3x or more vs 8-bit quantization.
        assert rows["quant-8bit"]["kv_size_mb"] / rows["cachegen"]["kv_size_mb"] > 2.5
        # Composition shrinks H2O / LLMLingua further.
        assert rows["cachegen+h2o"]["kv_size_mb"] < rows["h2o"]["kv_size_mb"] / 2.5
        assert rows["cachegen+llmlingua"]["kv_size_mb"] < rows["llmlingua"]["kv_size_mb"] / 2.5
        # Accuracy stays within a few percent.
        assert rows["cachegen"]["accuracy"] > 0.95 * rows["quant-8bit"]["accuracy"]


class TestFigures:
    def test_figure5_grouping_order(self):
        result = run_figure5(models=("llama-7b",), num_contexts=1, context_token_cap=1_200)
        row = result.rows[0]
        assert row["entropy_channel_layer"] < row["entropy_token"]

    def test_figure8_speedups(self):
        result = run_figure8(
            pairs=(("mistral-7b", "longchat"),),
            num_contexts=1,
            quant_bits=(8,),
            context_token_cap=2_000,
        )
        rows = by_method(result)
        cachegen = rows["cachegen"][0]["ttft_s"]
        assert rows["text"][0]["ttft_s"] / cachegen > 2.0
        assert rows["quant-8bit"][0]["ttft_s"] / cachegen > 1.5

    def test_figure11_cachegen_wins_at_low_bandwidth(self):
        result = run_figure11(bandwidths_gbps=(1.0, 100.0), num_tokens=2_000)
        rows = by_method(result)
        low_bw = {m: r[0]["ttft_s"] for m, r in rows.items()}
        assert low_bw["cachegen"] < low_bw["quant-8bit"]
        assert low_bw["cachegen"] < low_bw["text"]

    def test_figure12_concurrency_hurts_text_most(self):
        result = run_figure12_concurrency(concurrency_levels=(1, 8), num_tokens=2_000)
        rows = by_method(result)

        def absolute_increase(method):
            series = {r["concurrent_requests"]: r["ttft_s"] for r in rows[method]}
            return series[8] - series[1]

        # Prefill dominates the text path, so losing GPU cycles costs it far
        # more absolute TTFT than it costs CacheGen.
        assert absolute_increase("text") > 3 * absolute_increase("cachegen")

    def test_figure12_short_context_reverts_to_text(self):
        result = run_figure12_context_length(context_lengths=(100, 6_000))
        rows = by_method(result)
        short = {r["context_tokens"]: r["ttft_s"] for r in rows["cachegen"]}
        text = {r["context_tokens"]: r["ttft_s"] for r in rows["text"]}
        assert short[100] <= text[100] + 1e-9

    def test_figure13_adaptation_lowers_violations(self):
        result = run_figure13(
            slos_s=(1.0,), num_traces=2, num_contexts=1, context_token_cap=3_000
        )
        rows = {row["method"]: row for row in result.rows}
        assert rows["cachegen"]["violation_rate"] <= rows["quantization"]["violation_rate"]

    def test_figure14_panels_present(self):
        result = run_figure14(num_tokens=2_000)
        panels = {row["panel"] for row in result.rows}
        assert panels == {"ttft_breakdown", "flops", "offline_delay", "storage"}

    def test_figure15_ac_reduces_size(self):
        result = run_figure15(num_contexts=1, context_token_cap=1_200)
        rows = {row["variant"]: row for row in result.rows}
        assert rows["quant+ac"]["bits_per_element"] < rows["default-quant"]["bits_per_element"]
        assert rows["cachegen"]["quality"] >= rows["quant+ac"]["quality"]

    def test_figure16_cachegen_best_mos(self):
        result = run_figure16(num_samples=1, context_token_cap=2_000, bandwidth_gbps=0.8)
        rows = by_method(result, key="pipeline")
        assert rows["cachegen"][0]["mos"] >= rows["quantization"][0]["mos"]
        assert rows["cachegen"][0]["mos"] >= rows["original"][0]["mos"]

    def test_figure19_improvement_positive(self):
        result = run_figure19(bandwidths_gbps=(3.0,), concurrency_levels=(1, 4), num_tokens=2_000)
        assert all(row["improvement"] > 1.0 for row in result.rows)

    def test_appendix_e_breakeven(self):
        result = run_appendix_e()
        assert result.metadata["breakeven_requests_per_month"] < 500
        assert result.filter(requests_per_month=1_000)[0]["caching_is_cheaper"]

    def test_appendix_e_cold_tier_breaks_even_earlier(self):
        result = run_appendix_e()
        assert (
            result.metadata["cold_breakeven_requests_per_month"]
            < result.metadata["breakeven_requests_per_month"]
        )
        row = result.filter(requests_per_month=50)[0]
        assert row["cold_storage_usd_per_month"] < row["storage_usd_per_month"]

    def test_tiered_storage_sweep_shape(self):
        result = run_tiered_storage(
            hot_fractions=(1.0, 0.25), num_requests=24, num_contexts=6, concurrency=3
        )
        baseline = result.filter(hot_fraction=1.0)[0]
        tiered = result.filter(hot_fraction=0.25)[0]
        # The single-tier baseline never demotes; the tiered split demotes
        # under pressure instead of dropping, and reports cold hits.
        assert baseline["demotions"] == 0 and baseline["cold_hit_ratio"] == 0.0
        assert tiered["demotions"] > 0
        assert tiered["evict_drops"] == 0
        assert tiered["cold_hit_ratio"] > 0.0
        assert tiered["hot_hit_ratio"] + tiered["cold_hit_ratio"] == pytest.approx(
            tiered["hit_ratio"]
        )
        # Shifting budget to the cheaper tier cuts the storage bill.
        assert tiered["storage_usd_per_month"] < baseline["storage_usd_per_month"]
        assert tiered["cost_usd_per_request"] > 0.0

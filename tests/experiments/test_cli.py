"""The ``python -m repro.experiments`` CLI: telemetry output flags."""

import json
import re

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentResult, experiment_cli


def fake_experiment(tracer=None):
    """A fast traceable experiment standing in for a real figure."""
    result = ExperimentResult("fake", "CLI smoke experiment")
    result.add_row(metric=1.0)
    if tracer is not None:
        hit = tracer.span(
            "request q0", track="request:0", start_s=0.0, dur_s=0.4, category="request"
        )
        hit.annotate(used_kv_cache=True, tier="hot")
        miss = tracer.span(
            "request q1", track="request:1", start_s=1.0, dur_s=1.5, category="request"
        )
        miss.annotate(used_kv_cache=False)
        tracer.span("decode", track="gpu", start_s=0.1, dur_s=0.3, category="decode")
        tracer.metrics.counter("requests_served").inc(2)
        tracer.advance_to(3.0)
    return result


@pytest.fixture()
def fake_cli(monkeypatch):
    monkeypatch.setitem(ALL_EXPERIMENTS, "fake-observability", fake_experiment)


class TestTelemetryFlags:
    def test_metrics_out_writes_the_registry_snapshot(self, fake_cli, tmp_path):
        out = tmp_path / "metrics.json"
        text = experiment_cli(["fake-observability", "--metrics-out", str(out)])
        assert f"wrote metrics snapshot to {out}" in text
        snapshot = json.loads(out.read_text(encoding="utf-8"))
        assert snapshot["requests_served"]["type"] == "counter"
        assert snapshot["requests_served"]["values"] == {"": 2.0}

    def test_dashboard_out_renders_the_windowed_run(self, fake_cli, tmp_path):
        out = tmp_path / "dash.html"
        text = experiment_cli(
            [
                "fake-observability",
                "--dashboard-out",
                str(out),
                "--window-s",
                "1.0",
                "--slo-ttft-s",
                "0.5",
                "--slo-target",
                "0.9",
            ]
        )
        assert f"wrote dashboard to {out}" in text
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "fake-observability dashboard" in html
        assert 'data-window="0"' in html
        # Self-contained: the CI artifact must open without network access.
        assert not re.search(r"\b(?:src|href)\s*=", html, re.IGNORECASE)

    def test_dashboard_window_defaults_to_auto(self, fake_cli, tmp_path):
        out = tmp_path / "dash.html"
        experiment_cli(["fake-observability", "--dashboard-out", str(out)])
        assert out.exists()

    def test_plain_run_stays_untraced(self, fake_cli):
        text = experiment_cli(["fake-observability"])
        assert "fake" in text
        assert "wrote" not in text

    def test_telemetry_flags_reject_untraceable_experiments(
        self, monkeypatch, tmp_path, capsys
    ):
        def no_tracer():
            return ExperimentResult("plain", "no tracer parameter")

        monkeypatch.setitem(ALL_EXPERIMENTS, "fake-untraceable", no_tracer)
        with pytest.raises(SystemExit):
            experiment_cli(
                ["fake-untraceable", "--dashboard-out", str(tmp_path / "x.html")]
            )
        assert "does not support tracing" in capsys.readouterr().err

"""Tests for the §5.1 insight analyses and the codec ablation."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ABLATION_VARIANTS,
    codec_ablation,
    delta_value_distribution,
    grouping_entropy_study,
    layer_sensitivity_study,
)


class TestInsight1:
    def test_deltas_more_concentrated(self, kv):
        distribution = delta_value_distribution(kv)
        assert distribution.variance_ratio > 2.0
        # The delta CDF dominates the original CDF (more mass near zero).
        points = [0.5, 1.0, 2.0]
        assert all(
            d >= o for d, o in zip(distribution.cdf("delta", points), distribution.cdf("original", points))
        )

    def test_bad_layer_index(self, kv):
        with pytest.raises(IndexError):
            delta_value_distribution(kv, layer=999)


class TestInsight2:
    def test_shallow_loss_hurts_most(self, llm, kv):
        rows = layer_sensitivity_study(llm, kv, num_groups=4)
        assert len(rows) == 4
        qualities = [row["quality"] for row in rows]
        assert qualities[0] < qualities[-1] - 0.1
        assert qualities[0] < 0.85
        assert qualities[-1] > 0.93

    def test_invalid_groups(self, llm, kv):
        with pytest.raises(ValueError):
            layer_sensitivity_study(llm, kv, num_groups=0)


class TestInsight3:
    def test_grouping_entropy_ordering(self, kv):
        entropies = grouping_entropy_study(kv)
        assert entropies["channel_layer"] < entropies["token"]
        assert entropies["layer"] < entropies["global"] + 1e-9


class TestAblation:
    def test_all_variants_evaluated(self, kv, sample_caches, quality_model):
        points = codec_ablation(kv, sample_caches, quality_model)
        assert [p.variant for p in points] == list(ABLATION_VARIANTS)

    def test_ac_shrinks_and_full_design_best_quality(self, kv, sample_caches, quality_model):
        points = {p.variant: p for p in codec_ablation(kv, sample_caches, quality_model)}
        assert points["quant+ac"].bits_per_element < points["default-quant"].bits_per_element
        assert points["cachegen"].quality >= points["quant+ac"].quality
        assert points["cachegen"].quality >= points["quant+ac+change"].quality - 1e-6

"""Rule-by-rule coverage of the simcheck determinism lint."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.simcheck.lint import (
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)


def rules_hit(source: str) -> list[str]:
    return [v.rule for v in lint_source(textwrap.dedent(source), "snippet.py")]


class TestSIM001WallClock:
    def test_flags_time_module_calls(self):
        src = """
            import time

            def now():
                return time.time() + time.perf_counter() + time.monotonic()
        """
        assert rules_hit(src).count("SIM001") == 3

    def test_flags_from_imports_and_datetime(self):
        src = """
            from time import perf_counter
            from datetime import datetime

            def stamp():
                return perf_counter(), datetime.now(), datetime.utcnow()
        """
        assert rules_hit(src).count("SIM001") == 3

    def test_follows_module_aliases(self):
        src = """
            import time as walltime

            def now():
                return walltime.time()
        """
        assert "SIM001" in rules_hit(src)

    def test_simulated_clock_passes(self):
        src = """
            def now(clock):
                return clock.now  # simulated time, not host time
        """
        assert rules_hit(src) == []

    def test_unrelated_attribute_named_time_passes(self):
        src = """
            def f(record):
                return record.time()  # not the time module
        """
        assert rules_hit(src) == []


class TestSIM002UnseededRng:
    def test_flags_global_random_functions(self):
        src = """
            import random

            def pick(items):
                random.shuffle(items)
                return random.choice(items), random.random()
        """
        assert rules_hit(src).count("SIM002") == 3

    def test_flags_unseeded_constructors(self):
        src = """
            import random
            import numpy as np

            def make():
                return random.Random(), np.random.default_rng()
        """
        assert rules_hit(src).count("SIM002") == 2

    def test_flags_legacy_numpy_global_fns(self):
        src = """
            import numpy as np

            def noise(n):
                return np.random.randn(n)
        """
        assert "SIM002" in rules_hit(src)

    def test_seeded_generators_pass(self):
        src = """
            import random
            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(1234)
        """
        assert rules_hit(src) == []

    def test_injected_rng_method_calls_pass(self):
        src = """
            def pick(rng, items):
                return items[rng.randrange(len(items))]
        """
        assert rules_hit(src) == []


class TestSIM003SetIteration:
    def test_flags_for_loop_over_set_literal(self):
        src = """
            def schedule(tasks):
                for task in {"a", "b", "c"}:
                    tasks.append(task)
        """
        assert "SIM003" in rules_hit(src)

    def test_flags_loop_over_set_typed_name(self):
        src = """
            def drain(ready: set):
                for item in ready:
                    dispatch(item)
        """
        assert "SIM003" in rules_hit(src)

    def test_flags_set_assigned_name_and_list_capture(self):
        src = """
            def order(nodes):
                pending = set(nodes)
                return list(pending)
        """
        assert "SIM003" in rules_hit(src)

    def test_flags_self_attribute_annotated_set(self):
        src = """
            class Scheduler:
                def __init__(self):
                    self._ready: set[str] = set()

                def dispatch(self):
                    for node in self._ready:
                        launch(node)
        """
        assert "SIM003" in rules_hit(src)

    def test_sorted_consumption_passes(self):
        src = """
            def order(nodes):
                pending = set(nodes)
                return sorted(pending) + [min(pending), max(pending)]
        """
        assert rules_hit(src) == []

    def test_dict_iteration_passes(self):
        # dicts are insertion-ordered in CPython; only sets are hash-ordered.
        src = """
            def drain(queues: dict):
                for key, queue in queues.items():
                    flush(queue)
        """
        assert rules_hit(src) == []

    def test_membership_test_passes(self):
        src = """
            def known(seen: set, item):
                return item in seen
        """
        assert rules_hit(src) == []


class TestSIM004TimestampEquality:
    def test_flags_timestamp_equality(self):
        src = """
            def same(a, b):
                return a.arrival_s == b.finish_s
        """
        assert "SIM004" in rules_hit(src)

    def test_flags_not_equal_too(self):
        src = """
            def moved(start_s, end_s):
                return start_s != end_s
        """
        assert "SIM004" in rules_hit(src)

    def test_zero_sentinel_passes(self):
        src = """
            def unset(finish_s):
                return finish_s == 0.0 or finish_s == 0
        """
        assert rules_hit(src) == []

    def test_none_sentinel_passes(self):
        src = """
            def unset(deadline):
                return deadline == None
        """
        assert "SIM004" not in rules_hit(src)

    def test_non_timestamp_names_pass(self):
        src = """
            def same(a, b):
                return a.count == b.count
        """
        assert rules_hit(src) == []


class TestSIM005MutableDefaults:
    def test_flags_literal_defaults(self):
        src = """
            def collect(item, acc=[]):
                acc.append(item)
                return acc
        """
        assert "SIM005" in rules_hit(src)

    def test_flags_constructor_defaults_incl_kwonly(self):
        src = """
            def collect(item, acc=dict(), *, index=list()):
                return acc, index
        """
        assert rules_hit(src).count("SIM005") == 2

    def test_none_default_passes(self):
        src = """
            def collect(item, acc=None):
                acc = acc if acc is not None else []
                return acc
        """
        assert rules_hit(src) == []


class TestSuppression:
    def test_targeted_ignore_suppresses_only_that_rule(self):
        src = """
            import time

            def f():
                return time.time()  # simcheck: ignore[SIM001]
        """
        assert rules_hit(src) == []

    def test_ignore_with_wrong_rule_id_does_not_suppress(self):
        src = """
            import time

            def f():
                return time.time()  # simcheck: ignore[SIM002]
        """
        assert "SIM001" in rules_hit(src)

    def test_bare_ignore_suppresses_everything(self):
        src = """
            import time

            def f(acc=[]):  # simcheck: ignore
                return time.time()  # simcheck: ignore
        """
        assert rules_hit(src) == []

    def test_multi_rule_ignore(self):
        src = """
            import time, random

            def f():
                return time.time() + random.random()  # simcheck: ignore[SIM001,SIM002]
        """
        assert rules_hit(src) == []


class TestBaseline:
    def make_file(self, tmp_path, body):
        path = tmp_path / "module.py"
        path.write_text(textwrap.dedent(body), encoding="utf-8")
        return path

    def test_roundtrip_and_matching(self, tmp_path):
        source = self.make_file(
            tmp_path,
            """
            import time

            def f():
                return time.time()
            """,
        )
        violations = lint_paths([source])
        assert [v.rule for v in violations] == ["SIM001"]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, violations)
        baseline = load_baseline(baseline_path)
        new, stale = apply_baseline(lint_paths([source]), baseline)
        assert new == [] and stale == []

    def test_new_violation_not_absorbed(self, tmp_path):
        source = self.make_file(
            tmp_path,
            """
            import time

            def f():
                return time.time()
            """,
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([source]))
        source.write_text(
            source.read_text() + "\n\ndef g():\n    return time.perf_counter()\n"
        )
        new, _ = apply_baseline(lint_paths([source]), load_baseline(baseline_path))
        assert len(new) == 1
        assert "perf_counter" in new[0].message

    def test_fixed_debt_reported_stale(self, tmp_path):
        source = self.make_file(
            tmp_path,
            """
            import time

            def f():
                return time.time()
            """,
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([source]))
        source.write_text("def f():\n    return 0.0\n")
        new, stale = apply_baseline(lint_paths([source]), load_baseline(baseline_path))
        assert new == [] and len(stale) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_baseline_is_line_number_independent(self, tmp_path):
        source = self.make_file(
            tmp_path,
            """
            import time

            def f():
                return time.time()
            """,
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([source]))
        # Shift the violation down two lines; the fingerprint still matches.
        source.write_text("# pad\n# pad\n" + source.read_text())
        new, stale = apply_baseline(lint_paths([source]), load_baseline(baseline_path))
        assert new == [] and stale == []


class TestCli:
    def run_cli(self, argv, capsys=None):
        import io

        from repro.simcheck.__main__ import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_clean_tree_exits_zero(self, tmp_path):
        module = tmp_path / "clean.py"
        module.write_text("def f():\n    return 1\n")
        code, output = self.run_cli([str(module), "--no-baseline"])
        assert code == 0
        assert "clean" in output

    def test_violations_exit_one_with_refresh_help(self, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import time\n\ndef f():\n    return time.time()\n")
        code, output = self.run_cli([str(module), "--no-baseline"])
        assert code == 1
        assert "SIM001" in output
        assert "--write-baseline" in output

    def test_write_then_check_roundtrip(self, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import time\n\ndef f():\n    return time.time()\n")
        baseline = tmp_path / "baseline.json"
        code, _ = self.run_cli([str(module), "--baseline", str(baseline), "--write-baseline"])
        assert code == 0
        assert json.loads(baseline.read_text())["entries"]
        code, output = self.run_cli([str(module), "--baseline", str(baseline)])
        assert code == 0
        assert "baseline-matched" in output

    def test_select_restricts_rules(self, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import time\n\ndef f(acc=[]):\n    return time.time()\n")
        code, output = self.run_cli([str(module), "--no-baseline", "--select", "SIM005"])
        assert code == 1
        assert "SIM005" in output and "SIM001" not in output

    def test_list_rules(self):
        code, output = self.run_cli(["--list-rules"])
        assert code == 0
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005"):
            assert rule_id in output


class TestRepositoryIsClean:
    def test_src_repro_lints_clean_against_committed_baseline(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        violations = lint_paths([repo / "src" / "repro"])
        baseline = load_baseline(repo / "simcheck-baseline.json")
        new, _ = apply_baseline(violations, baseline)
        assert new == [], "\n".join(v.format() for v in new)

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        module = tmp_path / "broken.py"
        module.write_text("def f(:\n")
        violations = lint_paths([module])
        assert [v.rule for v in violations] == ["SIM000"]


@pytest.mark.parametrize(
    "source",
    [
        "x = 1\n",
        "def f(clock):\n    return clock.now\n",
        "import numpy as np\n\nrng = np.random.default_rng(7)\n",
    ],
)
def test_clean_snippets_have_no_findings(source):
    assert lint_source(source, "ok.py") == []

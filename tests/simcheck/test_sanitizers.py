"""Runtime sanitizers: the clock, the monitor, and the invariant checks."""

from __future__ import annotations

import heapq

import pytest

from repro.serving.api import Driver, ServeRequest, ServingSpec, build_backend, serve
from repro.serving.concurrent import SimClock
from repro.simcheck import (
    ClockSanitizer,
    SimcheckConfig,
    SimcheckError,
    SimcheckMonitor,
)
from repro.simcheck.invariants import (
    check_clock,
    check_span_breakdowns,
    check_store_capacity,
    check_tracer_tracks,
)
from repro.telemetry import Tracer

SPEC = ServingSpec(model="mistral-7b", chunk_tokens=256)
REQUESTS = [
    ServeRequest("sanitized-doc", f"Q{i}?", arrival_s=0.05 * i, num_tokens=640)
    for i in range(4)
]


class TestSimClockClampCounter:
    """Satellite: the base clock counts clamped past-time schedules."""

    def test_past_schedule_is_clamped_and_counted(self):
        clock = SimClock()
        fired_at: list[float] = []
        clock.schedule(1.0, lambda: clock.schedule(0.5, lambda: fired_at.append(clock.now)))
        clock.run()
        assert clock.clamped_schedules == 1
        # The event still fired — at `now`, not in the past.
        assert fired_at == [1.0]

    def test_clean_run_counts_zero(self):
        clock = SimClock()
        clock.schedule(0.0, lambda: clock.schedule(1.0, lambda: None))
        clock.run()
        assert clock.clamped_schedules == 0


class TestClockSanitizer:
    def test_records_past_schedule_diagnostics(self):
        clock = ClockSanitizer()
        clock.schedule(2.0, lambda: clock.schedule(0.5, lambda: None))
        clock.run()
        assert len(clock.past_schedules) == 1
        record = clock.past_schedules[0]
        assert record.requested_s == 0.5
        assert record.now_s == 2.0
        assert record.slip_s == pytest.approx(1.5)
        assert clock.clamped_schedules == 1  # base-class counter still ticks

    def test_strict_raises_immediately(self):
        clock = ClockSanitizer(strict=True)
        clock.schedule(2.0, lambda: clock.schedule(0.5, lambda: None))
        with pytest.raises(SimcheckError, match="causality"):
            clock.run()

    def test_run_rejects_non_monotonic_heap(self):
        clock = ClockSanitizer()
        clock.schedule(1.0, lambda: None)
        # Corrupt the heap behind schedule()'s back: an event in the past
        # relative to where the loop will be once 1.0 has fired.
        def corrupt():
            heapq.heappush(clock._heap, (0.25, clock._tie_break(), lambda: None))

        clock.schedule(1.0, corrupt)
        with pytest.raises(SimcheckError, match="not monotonic"):
            clock.run()

    def test_perturbation_reorders_equal_timestamps_only(self):
        def firing_order(seed):
            clock = ClockSanitizer(perturb_seed=seed)
            order: list[str] = []
            for label in "abcdef":
                clock.schedule(1.0, lambda label=label: order.append(label))
            clock.schedule(0.5, lambda: order.append("early"))
            clock.run()
            return order

        fifo = firing_order(None)
        assert fifo == ["early", "a", "b", "c", "d", "e", "f"]
        shuffled = [firing_order(seed) for seed in range(1, 6)]
        # Distinct timestamps keep their order under every perturbation...
        assert all(order[0] == "early" for order in shuffled)
        # ...but at least one seed permutes the equal-time tie.
        assert any(order[1:] != fifo[1:] for order in shuffled)
        # And each seed is itself deterministic.
        assert firing_order(3) == firing_order(3)


class TestInvariantChecks:
    def test_check_clock_flags_clamps_with_worst_slip(self):
        clock = ClockSanitizer()
        clock.schedule(2.0, lambda: clock.schedule(0.5, lambda: None))
        clock.run()
        violations = check_clock(clock)
        assert len(violations) == 1
        assert violations[0].check == "clock"
        assert "worst slip" in violations[0].message

    def test_check_clock_passes_clean_clock(self):
        clock = ClockSanitizer()
        clock.schedule(1.0, lambda: None)
        clock.run()
        assert check_clock(clock) == []

    def test_negative_gauge_sample_is_flagged(self):
        tracer = Tracer()
        tracer.sample("queue_depth", -1.0, track="gpu", at_s=1.0)
        violations = check_tracer_tracks(tracer)
        assert any(v.check == "gauges" and "negative" in v.message for v in violations)

    def test_overlapping_resource_spans_are_flagged(self):
        tracer = Tracer()
        tracer.span("launch", track="gpu", start_s=0.0, dur_s=1.0)
        tracer.span("launch", track="gpu", start_s=0.5, dur_s=1.0)
        violations = check_tracer_tracks(tracer)
        assert any(v.check == "busy-time" for v in violations)

    def test_sequential_resource_spans_pass(self):
        tracer = Tracer()
        tracer.span("launch", track="gpu", start_s=0.0, dur_s=1.0)
        tracer.span("launch", track="gpu", start_s=1.0, dur_s=1.0)
        assert check_tracer_tracks(tracer) == []

    def test_corrupted_span_tree_is_rejected(self):
        """Tamper one child span's duration: the breakdown check must notice."""
        tracer = Tracer()
        report = serve(SPEC.with_(concurrency=2), REQUESTS, tracer=tracer)
        clean_matched, clean = check_span_breakdowns(tracer, report.responses)
        assert clean == [] and clean_matched == len(REQUESTS)

        victim = next(
            child
            for root in tracer.root_spans()
            if root.category == "request"
            for child in root.children
            if child.dur_s > 0
        )
        victim.dur_s += 1e-3
        _, violations = check_span_breakdowns(tracer, report.responses)
        assert violations
        assert all(v.check == "spans" for v in violations)
        assert any("span sum" in v.message or "TTFT total" in v.message for v in violations)

    def test_missing_root_span_is_reported(self):
        tracer = Tracer()
        report = serve(SPEC, REQUESTS[:1], tracer=tracer)
        for root in tracer.root_spans():
            if root.category == "request":
                root.args["context_id"] = "someone-else"
        matched, violations = check_span_breakdowns(tracer, report.responses)
        assert matched == 0
        assert any("no request root span" in v.message for v in violations)

    def test_store_over_capacity_is_flagged(self):
        class FakeStore:
            max_bytes = 100.0

            def storage_bytes(self):
                return 150.0

        class FakeEngine:
            store = FakeStore()

        class FakeBackend:
            engine = FakeEngine()

        violations = check_store_capacity(FakeBackend())
        assert len(violations) == 1
        assert violations[0].check == "capacity"

    def test_real_backends_end_within_capacity(self):
        for spec in (
            SPEC,
            SPEC.with_(topology="cluster", num_nodes=2, replication=2, concurrency=2),
        ):
            backend = build_backend(spec)
            Driver(backend, REQUESTS, simcheck=False).run()
            assert check_store_capacity(backend) == []


class TestDriverIntegration:
    def test_simcheck_true_attaches_clean_report(self):
        backend = build_backend(SPEC.with_(concurrency=2))
        tracer = Tracer()
        report = Driver(backend, REQUESTS, tracer=tracer, simcheck=True).run()
        result = report.simcheck
        assert result is not None and result.ok
        assert set(result.checks_run) == {"clock", "gauges", "spans", "capacity"}
        assert result.clocks == 1
        assert result.spans_matched == len(REQUESTS)
        assert result.past_schedules == 0
        assert "simcheck ok" in result.format()

    @pytest.mark.parametrize(
        "spec",
        [
            SPEC,
            SPEC.with_(concurrency=2),
            SPEC.with_(topology="cluster", num_nodes=2, replication=2, concurrency=2),
        ],
        ids=["single", "concurrent", "cluster"],
    )
    def test_span_breakdown_verified_on_every_backend(self, spec):
        """Acceptance: span-sum == TTFT-breakdown holds on all three backends."""
        tracer = Tracer()
        report = Driver(build_backend(spec), REQUESTS, tracer=tracer, simcheck=True).run()
        assert report.simcheck.ok
        assert "spans" in report.simcheck.checks_run
        assert report.simcheck.spans_matched == len(report.responses)

    def test_simcheck_false_disables_everything(self):
        report = Driver(build_backend(SPEC), REQUESTS, simcheck=False).run()
        assert report.simcheck is None

    def test_untraced_run_skips_tracer_checks(self):
        report = Driver(build_backend(SPEC.with_(concurrency=2)), REQUESTS, simcheck=True).run()
        assert report.simcheck.ok
        assert set(report.simcheck.checks_run) == {"clock", "capacity"}

    def test_runtime_default_reaches_prebuilt_drivers(self, monkeypatch):
        from repro.simcheck import runtime

        # Neutralize the suite-wide autouse fixture so the control run below
        # really sees "no default configured".
        monkeypatch.setattr(runtime, "_default", None)
        monkeypatch.delenv("REPRO_SIMCHECK", raising=False)
        driver = Driver(build_backend(SPEC), REQUESTS)
        with runtime.enabled():
            inside = driver.run()
        outside = driver.run()
        assert inside.simcheck is not None and inside.simcheck.ok
        assert outside.simcheck is None

    def test_env_var_enables_default(self, monkeypatch):
        from repro.simcheck import runtime

        monkeypatch.setattr(runtime, "_default", None)
        monkeypatch.setenv("REPRO_SIMCHECK", "1")
        report = Driver(build_backend(SPEC), REQUESTS).run()
        assert report.simcheck is not None
        monkeypatch.setenv("REPRO_SIMCHECK", "0")
        report = Driver(build_backend(SPEC), REQUESTS).run()
        assert report.simcheck is None

    def test_custom_config_respected(self):
        config = SimcheckConfig(strict=False, check_capacity=False)
        report = Driver(build_backend(SPEC), REQUESTS, simcheck=config).run()
        assert report.simcheck.checks_run == ["clock"]

    def test_invalid_simcheck_argument_rejected(self):
        with pytest.raises(TypeError, match="simcheck"):
            Driver(build_backend(SPEC), REQUESTS, simcheck="yes").run()


class TestMonitorStrictness:
    def make_failing_run(self):
        """A finished run whose trace has been corrupted after the fact."""
        tracer = Tracer()
        report = serve(SPEC.with_(concurrency=2), REQUESTS, tracer=tracer)
        victim = next(
            child
            for root in tracer.root_spans()
            if root.category == "request"
            for child in root.children
            if child.dur_s > 0
        )
        victim.dur_s += 1e-3
        return tracer, report

    def test_strict_monitor_raises_on_violation(self):
        tracer, report = self.make_failing_run()
        monitor = SimcheckMonitor(SimcheckConfig(strict=True))
        with pytest.raises(SimcheckError, match="violation"):
            monitor.finalize(report, tracer=tracer)

    def test_lenient_monitor_attaches_findings(self):
        tracer, report = self.make_failing_run()
        monitor = SimcheckMonitor(SimcheckConfig(strict=False))
        result = monitor.finalize(report, tracer=tracer)
        assert not result.ok
        assert report.simcheck is result
        assert "violation" in result.format()

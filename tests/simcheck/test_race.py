"""The event-order race detector: catches order-dependent simulations."""

from __future__ import annotations

import pytest

from repro.serving.api import ServeRequest, ServingSpec, serve
from repro.simcheck import check_spec_order_independence, find_order_race
from repro.simcheck.race import run_report_digest

SEEDS = tuple(range(1, 7))


class TestFindOrderRace:
    def test_order_dependent_toy_is_caught(self):
        """Same-timestamp callbacks whose effects do not commute: the final
        state depends on firing order, which perturbation must expose."""

        def run(clock_factory):
            clock = clock_factory()
            state = {"value": 1.0}

            def double():
                state["value"] *= 2.0

            def increment():
                state["value"] += 10.0

            for callback in (double, increment, double, increment):
                clock.schedule(1.0, callback)
            clock.run()
            return state["value"]

        report = find_order_race(run, seeds=SEEDS)
        assert report.order_dependent
        assert report.mismatching_seeds  # names the seeds that exposed it
        assert "ORDER-DEPENDENT" in report.describe()

    def test_commutative_toy_passes(self):
        def run(clock_factory):
            clock = clock_factory()
            state = {"total": 0.0}
            for amount in (1.0, 2.0, 3.0, 4.0):
                clock.schedule(1.0, lambda amount=amount: state.__setitem__(
                    "total", state["total"] + amount
                ))
            clock.run()
            return state["total"]

        report = find_order_race(run, seeds=SEEDS)
        assert not report.order_dependent
        assert report.mismatching_seeds == ()
        assert "order-independent" in report.describe()

    def test_order_dependent_event_sequence_is_caught(self):
        """Even when numeric results agree, an order-sensitive digest (the
        firing sequence itself) must move under perturbation."""

        def run(clock_factory):
            clock = clock_factory()
            order: list[str] = []
            for label in "abcd":
                clock.schedule(2.0, lambda label=label: order.append(label))
            clock.run()
            return tuple(order)

        report = find_order_race(run, seeds=SEEDS)
        assert report.baseline == ("a", "b", "c", "d")  # FIFO baseline
        assert report.order_dependent

    def test_requires_at_least_one_seed(self):
        with pytest.raises(ValueError, match="seed"):
            find_order_race(lambda factory: 0, seeds=())


class TestRunReportDigest:
    def test_identical_runs_digest_identically(self):
        spec = ServingSpec(model="mistral-7b", chunk_tokens=256, concurrency=2)
        requests = [
            ServeRequest("digest-doc", f"Q{i}?", arrival_s=0.05 * i, num_tokens=640)
            for i in range(3)
        ]
        first = run_report_digest(serve(spec, requests))
        second = run_report_digest(serve(spec, requests))
        assert first == second

    def test_digest_is_response_order_insensitive(self):
        spec = ServingSpec(model="mistral-7b", chunk_tokens=256, concurrency=2)
        requests = [
            ServeRequest("digest-doc", f"Q{i}?", arrival_s=0.05 * i, num_tokens=640)
            for i in range(3)
        ]
        report = serve(spec, requests)
        digest = run_report_digest(report)
        report.responses.reverse()
        assert run_report_digest(report) == digest


class TestSpecOrderIndependence:
    def test_figure12_concurrency_shape_is_clean(self):
        """Acceptance: the figure12 experiment shape — one shared context,
        simultaneous identical arrivals over a worker pool — must not depend
        on same-timestamp tie-break order."""
        spec = ServingSpec(concurrency=8, gpu_workers=2)
        requests = [
            ServeRequest("figure12-context", "race?", arrival_s=0.0, num_tokens=640)
            for _ in range(6)
        ]
        report = check_spec_order_independence(spec, requests, seeds=(1, 2))
        assert not report.order_dependent, report.describe()

    def test_requires_exactly_one_request_source(self):
        spec = ServingSpec(concurrency=2)
        with pytest.raises(ValueError, match="exactly one"):
            check_spec_order_independence(spec)
        with pytest.raises(ValueError, match="num_requests"):
            check_spec_order_independence(spec, workload=object())


class TestCliSmoke:
    def test_race_smoke_flag_is_clean(self):
        import io

        from repro.simcheck.__main__ import main

        out = io.StringIO()
        assert main(["--race-smoke"], out=out) == 0
        assert "order-independent" in out.getvalue()

"""Examples stay loadable: every script compiles and exposes ``main``.

The full scripts are executed (with ``REPRO_SMOKE=1``) by the CI
``examples-smoke`` job; this tier-1 check only guards against import/syntax
rot without paying the runtime.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_has_main(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    compile(tree, str(path), "exec")
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions

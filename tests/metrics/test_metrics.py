"""Tests for quality, system, entropy, QoE and cluster-aggregate metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import QualityModel
from repro.metrics import (
    TTFTBreakdown,
    hit_ratio,
    slo_attainment,
    summarize_latencies,
    accuracy,
    empirical_entropy_bits,
    f1_score,
    grouping_entropy_comparison,
    mean_opinion_score,
    perplexity,
    size_reduction,
    slo_violation_rate,
    speedup,
    summarize_quality,
)


class TestQualityMetrics:
    def test_accuracy(self):
        assert accuracy([True, True, False, False]) == 0.5
        with pytest.raises(ValueError):
            accuracy([])

    def test_f1(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.5, 0.0) == 0.0
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            f1_score(1.5, 0.5)

    def test_perplexity(self):
        assert perplexity([0.0, 0.0]) == pytest.approx(1.0)
        assert perplexity([-1.0]) == pytest.approx(np.e)
        with pytest.raises(ValueError):
            perplexity([])

    def test_summarize_quality(self):
        model = QualityModel(num_layers=4)
        qualities = [model.score("qa_accuracy", np.full(4, d)) for d in (0.0, 0.1)]
        summary = summarize_quality(qualities)
        assert summary.count == 2
        assert 0 < summary.mean_value <= 1.0
        assert summary.metric == "accuracy"

    def test_summarize_mixed_tasks_rejected(self):
        model = QualityModel(num_layers=4)
        qualities = [
            model.score("qa_accuracy", np.zeros(4)),
            model.score("perplexity", np.zeros(4)),
        ]
        with pytest.raises(ValueError):
            summarize_quality(qualities)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_quality([])


class TestSystemMetrics:
    def test_breakdown_total(self):
        breakdown = TTFTBreakdown(network_s=1.0, decode_s=0.25, compute_s=0.5)
        assert breakdown.total_s == pytest.approx(1.75)

    def test_breakdown_negative_rejected(self):
        with pytest.raises(ValueError):
            TTFTBreakdown(network_s=-1.0, decode_s=0.0, compute_s=0.0)

    def test_slo_violation_rate(self):
        assert slo_violation_rate([0.1, 0.6, 1.2, 0.4], 0.5) == 0.5
        assert slo_violation_rate([0.1], 0.5) == 0.0
        with pytest.raises(ValueError):
            slo_violation_rate([0.1], 0.0)

    def test_slo_violation_rate_empty_warns(self):
        with pytest.warns(RuntimeWarning):
            assert slo_violation_rate([], 0.5) == 0.0

    def test_size_reduction_and_speedup(self):
        assert size_reduction(622e6, 176e6) == pytest.approx(3.53, abs=0.01)
        assert speedup(3.2, 1.0) == pytest.approx(3.2)
        with pytest.raises(ValueError):
            size_reduction(0, 1)
        with pytest.raises(ValueError):
            speedup(1, 0)


class TestEntropyMetrics:
    def test_empirical_entropy_uniform(self, rng):
        symbols = rng.integers(0, 16, size=20_000)
        assert empirical_entropy_bits(symbols) == pytest.approx(4.0, abs=0.05)

    def test_empirical_entropy_constant(self):
        assert empirical_entropy_bits(np.zeros(100, dtype=int)) == 0.0

    def test_empirical_entropy_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_entropy_bits(np.array([]))

    def test_grouping_comparison_insight3(self, kv):
        """Channel/layer grouping lowers entropy far more than token grouping."""
        entropies = grouping_entropy_comparison(kv.k)
        assert entropies["channel_layer"] < entropies["token"]
        assert entropies["channel"] < entropies["token"]
        assert entropies["channel_layer"] <= entropies["global"]
        assert (entropies["global"] - entropies["channel_layer"]) > 2 * (
            entropies["global"] - entropies["token"]
        )


class TestQoE:
    def test_fast_response_max_score(self):
        assert mean_opinion_score(0.2) == 5.0

    def test_monotone_in_ttft(self):
        scores = [mean_opinion_score(t) for t in (0.5, 1.0, 2.0, 5.0, 20.0)]
        assert scores == sorted(scores, reverse=True)

    def test_quality_degradation_lowers_mos(self):
        assert mean_opinion_score(1.0, relative_quality=0.8) < mean_opinion_score(1.0, 1.0)

    def test_bounded(self):
        assert 1.0 <= mean_opinion_score(1e4) <= 5.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mean_opinion_score(-1.0)
        with pytest.raises(ValueError):
            mean_opinion_score(1.0, relative_quality=1.5)


class TestClusterAggregates:
    def test_latency_summary_percentiles(self):
        samples = [0.1 * i for i in range(1, 101)]
        summary = summarize_latencies(samples)
        assert summary.count == 100
        assert summary.p50_s <= summary.p95_s <= summary.p99_s <= summary.max_s
        assert summary.p50_s == pytest.approx(5.05, abs=0.1)
        assert summary.max_s == pytest.approx(10.0)

    def test_slo_attainment_complements_violation_rate(self):
        ttfts = [0.5, 1.0, 1.5, 2.5]
        assert slo_attainment(ttfts, 2.0) == pytest.approx(
            1.0 - slo_violation_rate(ttfts, 2.0)
        )

    def test_hit_ratio(self):
        assert hit_ratio(3, 4) == pytest.approx(0.75)
        assert hit_ratio(0, 0) == 0.0
        with pytest.raises(ValueError):
            hit_ratio(5, 4)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            summarize_latencies([-1.0])
        with pytest.raises(ValueError):
            slo_attainment([1.0], 0.0)

    def test_empty_samples_warn_with_defined_results(self):
        with pytest.warns(RuntimeWarning):
            summary = summarize_latencies([])
        assert summary.count == 0
        assert summary.mean_s == 0.0
        assert summary.p99_s == 0.0
        with pytest.warns(RuntimeWarning):
            assert slo_attainment([], 1.0) == 1.0

"""End-to-end cluster simulation tests (the acceptance scenario, scaled down)."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterFrontend, ClusterSimulator, WorkloadGenerator
from repro.core import CacheGenConfig
from repro.network import ConstantTrace, NetworkLink, gbps

NUM_REQUESTS = 50


def _frontend(num_nodes: int = 3, max_bytes: float | None = 150e6) -> ClusterFrontend:
    config = CacheGenConfig(chunk_tokens=256)
    links = [NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(num_nodes)]
    return ClusterFrontend(
        "mistral-7b",
        node_links=links,
        replication_factor=2,
        max_bytes_per_node=max_bytes,
        eviction_policy="lru",
        config=config,
    )


def _workload(seed: int = 7) -> WorkloadGenerator:
    return WorkloadGenerator(
        num_contexts=10, zipf_alpha=1.0, token_choices=(320, 640), seed=seed
    )


@pytest.fixture(scope="module")
def report():
    simulator = ClusterSimulator(
        _frontend(), _workload(), slo_s=1.0, adaptive=False, node_failures={25: "node-1"}
    )
    return simulator.run(NUM_REQUESTS)


class TestRun:
    def test_every_request_served(self, report):
        assert report.hard_failures == 0
        assert len(report.records) == NUM_REQUESTS
        assert report.kv_served + report.text_served == NUM_REQUESTS

    def test_cache_behaviour_reported(self, report):
        assert 0.0 < report.hit_ratio <= 1.0
        assert report.total_evictions > 0
        assert report.ingests >= len({r.request.context_id for r in report.records})
        assert report.replication_bytes > 0
        assert report.query_bytes > 0

    def test_latency_summary(self, report):
        assert report.ttft.count == NUM_REQUESTS
        assert 0 < report.ttft.p50_s <= report.ttft.p95_s <= report.ttft.p99_s
        assert report.slo_attainment is not None
        assert 0.0 <= report.slo_attainment <= 1.0

    def test_node_summaries_cover_cluster(self, report):
        assert {s.node_id for s in report.node_summaries} == {
            "node-0",
            "node-1",
            "node-2",
        }
        downed = {s.node_id: s for s in report.node_summaries}["node-1"]
        assert not downed.up

    def test_failure_degrades_but_serves(self, report):
        after_failure = [r for r in report.records if r.request.index >= 25]
        assert after_failure  # the run extends past the failure
        assert all(r.served_by != "node-1" for r in after_failure)

    def test_format_table_mentions_nodes(self, report):
        table = report.format_table()
        assert "hit ratio" in table
        assert "node-1" in table and "DOWN" in table


class TestBlackout:
    def test_total_blackout_degrades_to_text_without_failures(self):
        simulator = ClusterSimulator(
            _frontend(num_nodes=2),
            _workload(seed=3),
            adaptive=False,
            node_failures={5: "node-0", 7: "node-1"},
        )
        report = simulator.run(20)
        assert report.hard_failures == 0
        assert len(report.records) == 20
        # With every node down, new contexts cannot be ingested but every
        # request is still answered from the text path.
        assert report.failed_ingests > 0
        after = [r for r in report.records if r.request.index >= 7]
        assert after and all(not r.used_kv_cache for r in after)


class TestRepeatedRuns:
    def test_counters_are_per_run(self):
        simulator = ClusterSimulator(_frontend(), _workload(seed=5), adaptive=False)
        first = simulator.run(20)
        second = simulator.run(20)
        # Eviction counts are per-run deltas that sum to the cluster total.
        assert (
            first.total_evictions + second.total_evictions
            == simulator.frontend.cluster.total_evictions()
        )
        # The warm cache does not re-ingest contexts that are still resident.
        assert second.ingests <= first.ingests
        assert second.hard_failures == 0


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        kwargs = dict(slo_s=1.0, adaptive=False, node_failures={25: "node-1"})
        first = ClusterSimulator(_frontend(), _workload(), **kwargs).run(NUM_REQUESTS)
        second = ClusterSimulator(_frontend(), _workload(), **kwargs).run(NUM_REQUESTS)
        assert first.ttft == second.ttft
        assert first.hit_ratio == second.hit_ratio
        assert first.total_evictions == second.total_evictions
        assert [r.served_by for r in first.records] == [r.served_by for r in second.records]

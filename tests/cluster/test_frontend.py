"""Tests for the cluster serving frontend: routing, failover, text fallback."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterFrontend
from repro.core import CacheGenConfig
from repro.network import ConstantTrace, NetworkLink, gbps

TOKENS = 2_200


@pytest.fixture(scope="module")
def frontend() -> ClusterFrontend:
    config = CacheGenConfig(chunk_tokens=1_024)
    links = [NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(3)]
    return ClusterFrontend(
        "mistral-7b", node_links=links, replication_factor=2, config=config
    )


@pytest.fixture(scope="module")
def ingested(frontend):
    return frontend.ingest("report-2023", TOKENS)


class TestIngest:
    def test_report_names_replicas(self, frontend, ingested):
        assert len(ingested.replica_node_ids) == 2
        assert set(ingested.replica_node_ids) <= set(frontend.nodes)
        assert ingested.replicated_bytes == pytest.approx(
            2 * ingested.total_stored_bytes
        )

    def test_context_visible_in_cluster(self, frontend, ingested):
        assert "report-2023" in frontend.cluster


class TestQuery:
    def test_served_from_replica(self, frontend, ingested):
        response = frontend.query("report-2023", "Summarise the revenue drivers.")
        assert response.used_kv_cache
        assert response.served_by == ingested.replica_node_ids[0]
        assert not response.failed_over
        assert response.quality.relative_quality > 0.95

    def test_failover_to_backup_replica(self, frontend, ingested):
        primary, backup = ingested.replica_node_ids
        frontend.mark_down(primary)
        try:
            response = frontend.query("report-2023", "Any risks?")
            assert response.used_kv_cache
            assert response.served_by == backup
            assert response.failed_over
            assert primary in response.attempted_node_ids
        finally:
            frontend.mark_up(primary)

    def test_whole_cluster_down_falls_back_to_text(self, frontend, ingested):
        for node_id in frontend.nodes:
            frontend.mark_down(node_id)
        try:
            # num_tokens omitted on purpose: the catalogue remembers it.
            response = frontend.query("report-2023", "Still there?")
            assert not response.used_kv_cache
            assert response.served_by is None
            assert response.chunk_configs == ["text"]
        finally:
            for node_id in frontend.nodes:
                frontend.mark_up(node_id)

    def test_unknown_context_needs_num_tokens(self, frontend):
        with pytest.raises(ValueError):
            frontend.query("never-seen", "What is this?")
        response = frontend.query("never-seen-2", "What is this?", num_tokens=1_500)
        assert not response.used_kv_cache

    def test_unknown_node_rejected(self, frontend):
        with pytest.raises(KeyError):
            frontend.mark_down("node-99")


class TestHeterogeneousLinks:
    def test_slow_replica_slower_than_fast_replica(self):
        config = CacheGenConfig(chunk_tokens=1_024)
        links = [NetworkLink(ConstantTrace(gbps(3.0))), NetworkLink(ConstantTrace(gbps(0.4)))]
        frontend = ClusterFrontend(
            "mistral-7b", node_links=links, replication_factor=2, config=config
        )
        report = frontend.ingest("doc", TOKENS)
        assert set(report.replica_node_ids) == {"node-0", "node-1"}
        fast = frontend.query("doc", "q?")
        frontend.mark_down(fast.served_by)
        slow = frontend.query("doc", "q?")
        by_node = {fast.served_by: fast, slow.served_by: slow}
        assert by_node["node-1"].ttft_s > by_node["node-0"].ttft_s


class TestTieredFrontend:
    @pytest.fixture()
    def tight_frontend(self):
        """Hot tiers sized so two long contexts cannot both stay hot."""
        config = CacheGenConfig(chunk_tokens=1_024)
        probe = ClusterFrontend("mistral-7b", node_links=1, config=config)
        probe.ingest("probe", TOKENS)
        one = float(next(iter(probe.nodes.values())).store.storage_bytes())
        links = [NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(2)]
        return ClusterFrontend(
            "mistral-7b",
            node_links=links,
            replication_factor=2,
            max_bytes_per_node=1.2 * one,
            cold_bytes_per_node=10 * one,
            config=config,
        )

    def test_pressure_demotes_and_cold_hit_serves_kv(self, tight_frontend):
        tight_frontend.ingest("doc-a", TOKENS)
        tight_frontend.ingest("doc-b", TOKENS)  # demotes doc-a on both nodes
        for node in tight_frontend.nodes.values():
            assert node.store.eviction_count == 0
        response = tight_frontend.query("doc-a", "What does it say?")
        assert response.used_kv_cache
        assert response.served_tier == "cold"
        assert response.tier_transfer_s > 0.0
        # The tier read is part of the reported TTFT's network component.
        assert response.ttft.network_s >= response.tier_transfer_s

    def test_cold_hit_slower_than_hot_hit_faster_than_text(self, tight_frontend):
        tight_frontend.ingest("doc-a", TOKENS)
        hot = tight_frontend.query("doc-a", "Q?")
        assert hot.served_tier == "hot"
        tight_frontend.ingest("doc-b", TOKENS)  # demotes doc-a
        cold = tight_frontend.query("doc-a", "Q?")
        assert cold.served_tier == "cold"
        assert cold.ttft_s > hot.ttft_s
        text = tight_frontend._query_with_text("doc-x", "Q?", TOKENS, 4, "qa_accuracy")
        assert cold.ttft_s < text.ttft_s

    def test_promotion_visible_on_next_query(self, tight_frontend):
        tight_frontend.ingest("doc-a", TOKENS)
        tight_frontend.ingest("doc-b", TOKENS)
        first = tight_frontend.query("doc-a", "Q?")
        second = tight_frontend.query("doc-a", "Q?")
        assert first.served_tier == "cold"
        assert second.served_tier == "hot"
        assert second.ttft_s < first.ttft_s

    def test_cold_tier_requires_bounded_hot_tier(self):
        with pytest.raises(ValueError):
            ClusterFrontend("mistral-7b", node_links=2, cold_bytes_per_node=1e9)

    def test_tier_links_must_match_node_count(self):
        with pytest.raises(ValueError):
            ClusterFrontend(
                "mistral-7b",
                node_links=2,
                max_bytes_per_node=1e9,
                cold_bytes_per_node=1e9,
                tier_links=[NetworkLink()],
            )

"""Tests for the cluster serving frontend: routing, failover, text fallback."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterFrontend
from repro.core import CacheGenConfig
from repro.network import ConstantTrace, NetworkLink, gbps

TOKENS = 2_200


@pytest.fixture(scope="module")
def frontend() -> ClusterFrontend:
    config = CacheGenConfig(chunk_tokens=1_024)
    links = [NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(3)]
    return ClusterFrontend(
        "mistral-7b", node_links=links, replication_factor=2, config=config
    )


@pytest.fixture(scope="module")
def ingested(frontend):
    return frontend.ingest("report-2023", TOKENS)


class TestIngest:
    def test_report_names_replicas(self, frontend, ingested):
        assert len(ingested.replica_node_ids) == 2
        assert set(ingested.replica_node_ids) <= set(frontend.nodes)
        assert ingested.replicated_bytes == pytest.approx(
            2 * ingested.total_stored_bytes
        )

    def test_context_visible_in_cluster(self, frontend, ingested):
        assert "report-2023" in frontend.cluster


class TestQuery:
    def test_served_from_replica(self, frontend, ingested):
        response = frontend.query("report-2023", "Summarise the revenue drivers.")
        assert response.used_kv_cache
        assert response.served_by == ingested.replica_node_ids[0]
        assert not response.failed_over
        assert response.quality.relative_quality > 0.95

    def test_failover_to_backup_replica(self, frontend, ingested):
        primary, backup = ingested.replica_node_ids
        frontend.mark_down(primary)
        try:
            response = frontend.query("report-2023", "Any risks?")
            assert response.used_kv_cache
            assert response.served_by == backup
            assert response.failed_over
            assert primary in response.attempted_node_ids
        finally:
            frontend.mark_up(primary)

    def test_whole_cluster_down_falls_back_to_text(self, frontend, ingested):
        for node_id in frontend.nodes:
            frontend.mark_down(node_id)
        try:
            # num_tokens omitted on purpose: the catalogue remembers it.
            response = frontend.query("report-2023", "Still there?")
            assert not response.used_kv_cache
            assert response.served_by is None
            assert response.chunk_configs == ["text"]
        finally:
            for node_id in frontend.nodes:
                frontend.mark_up(node_id)

    def test_unknown_context_needs_num_tokens(self, frontend):
        with pytest.raises(ValueError):
            frontend.query("never-seen", "What is this?")
        response = frontend.query("never-seen-2", "What is this?", num_tokens=1_500)
        assert not response.used_kv_cache

    def test_unknown_node_rejected(self, frontend):
        with pytest.raises(KeyError):
            frontend.mark_down("node-99")


class TestHeterogeneousLinks:
    def test_slow_replica_slower_than_fast_replica(self):
        config = CacheGenConfig(chunk_tokens=1_024)
        links = [NetworkLink(ConstantTrace(gbps(3.0))), NetworkLink(ConstantTrace(gbps(0.4)))]
        frontend = ClusterFrontend(
            "mistral-7b", node_links=links, replication_factor=2, config=config
        )
        report = frontend.ingest("doc", TOKENS)
        assert set(report.replica_node_ids) == {"node-0", "node-1"}
        fast = frontend.query("doc", "q?")
        frontend.mark_down(fast.served_by)
        slow = frontend.query("doc", "q?")
        by_node = {fast.served_by: fast, slow.served_by: slow}
        assert by_node["node-1"].ttft_s > by_node["node-0"].ttft_s

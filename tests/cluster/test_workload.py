"""Tests for the Zipf/Poisson workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import WorkloadGenerator


@pytest.fixture()
def workload() -> WorkloadGenerator:
    return WorkloadGenerator(
        num_contexts=20, zipf_alpha=1.0, token_choices=(400, 800), seed=42
    )


class TestDeterminism:
    def test_same_seed_same_sequence(self, workload):
        again = WorkloadGenerator(
            num_contexts=20, zipf_alpha=1.0, token_choices=(400, 800), seed=42
        )
        assert workload.generate(100) == again.generate(100)

    def test_different_seed_different_sequence(self, workload):
        other = WorkloadGenerator(
            num_contexts=20, zipf_alpha=1.0, token_choices=(400, 800), seed=43
        )
        assert workload.generate(100) != other.generate(100)

    def test_context_lengths_are_stable(self, workload):
        requests = workload.generate(200)
        lengths: dict[str, int] = {}
        for request in requests:
            assert lengths.setdefault(request.context_id, request.num_tokens) == (
                request.num_tokens
            )
            assert request.num_tokens in (400, 800)


class TestShape:
    def test_arrivals_strictly_increase(self, workload):
        arrivals = [request.arrival_s for request in workload.generate(200)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_zipf_popularity_is_skewed(self, workload):
        requests = workload.generate(1_000)
        counts = np.zeros(workload.num_contexts)
        for request in requests:
            rank = int(request.context_id.rsplit("-", 1)[1])
            counts[rank] += 1
        # The hottest context dominates the coldest half combined under α=1.
        assert counts[0] > counts[workload.num_contexts // 2 :].sum() * 0.5
        assert counts[0] == counts.max()

    def test_uniform_when_alpha_zero(self):
        workload = WorkloadGenerator(num_contexts=10, zipf_alpha=0.0, seed=1)
        assert np.allclose(workload.popularity(), 0.1)

    def test_sessions_round_robin(self, workload):
        requests = workload.generate(16)
        assert requests[0].session_id != requests[1].session_id
        assert requests[0].session_id == requests[workload.num_sessions].session_id

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_contexts": 0},
            {"zipf_alpha": -0.1},
            {"arrival_rate_per_s": 0.0},
            {"token_choices": ()},
            {"token_choices": (0,)},
            {"num_sessions": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadGenerator(**kwargs)

    def test_invalid_request_count(self, workload):
        with pytest.raises(ValueError):
            workload.generate(0)

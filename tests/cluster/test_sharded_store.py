"""Tests for sharded placement, replication, failover and capacity pressure."""

from __future__ import annotations

import pytest

from repro.cluster import ShardedKVStore, StorageNode
from repro.storage import KVCacheStore, LRUPolicy


def _node(encoder, node_id: str, max_bytes: float | None = None) -> StorageNode:
    return StorageNode(
        node_id,
        KVCacheStore(encoder, max_bytes=max_bytes, eviction_policy=LRUPolicy()),
    )


@pytest.fixture()
def cluster(encoder) -> ShardedKVStore:
    nodes = [_node(encoder, f"node-{i}") for i in range(4)]
    return ShardedKVStore(encoder, nodes, replication_factor=2)


class TestPlacement:
    def test_replication_factor_respected(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        assert len(placement.replica_node_ids) == 2
        holders = [
            node_id for node_id, node in cluster.nodes.items() if "doc" in node.store
        ]
        assert sorted(holders) == sorted(placement.replica_node_ids)

    def test_replicas_follow_ring_preference(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        assert list(placement.replica_node_ids) == cluster.ring.nodes_for("doc", 2)

    def test_down_node_skipped_at_ingest(self, cluster, kv):
        primary = cluster.ring.node_for("doc")
        cluster.mark_down(primary)
        placement = cluster.store_kv("doc", kv)
        assert primary not in placement.replica_node_ids
        assert primary in placement.skipped_node_ids
        assert len(placement.replica_node_ids) == 2

    def test_encode_happens_once(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        stored = [cluster.nodes[nid].store.get_context("doc") for nid in placement.replica_node_ids]
        # Replication ships bitstreams; both replicas hold the same encoding.
        assert stored[0] is stored[1]


class TestFailover:
    def test_lookup_prefers_primary(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        lookup = cluster.locate("doc")
        assert lookup.found
        assert lookup.node.node_id == placement.replica_node_ids[0]
        assert not lookup.failed_over

    def test_failover_returns_identical_bitstreams(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        primary, backup = placement.replica_node_ids[:2]
        before = cluster.nodes[primary].store.get_kv("doc", 0, "medium")
        cluster.mark_down(primary)
        lookup = cluster.locate("doc")
        assert lookup.found and lookup.failed_over
        assert lookup.node.node_id == backup
        after = lookup.node.store.get_kv("doc", 0, "medium")
        assert after.payload_bits == before.payload_bits
        assert after.compressed_bytes == before.compressed_bytes

    def test_all_replicas_down_is_a_full_miss(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        for node_id in placement.replica_node_ids:
            cluster.mark_down(node_id)
        lookup = cluster.locate("doc")
        assert not lookup.found
        assert "doc" not in cluster
        assert cluster.known_tokens("doc") == kv.num_tokens

    def test_recovery_restores_service(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        for node_id in placement.replica_node_ids:
            cluster.mark_down(node_id)
        cluster.mark_up(placement.replica_node_ids[0])
        assert cluster.locate("doc").found


class TestCapacityPressure:
    def test_squeeze_evicts_and_reports(self, encoder, llm):
        kv = llm.calculate_kv("sizing-probe", 320)
        one_context = KVCacheStore(encoder).store_kv("probe", kv).total_bytes()
        # Room for ~2 contexts per node.
        nodes = [_node(encoder, f"node-{i}", max_bytes=2.2 * one_context) for i in range(2)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        for i in range(4):
            cluster.store_kv(f"doc-{i}", llm.calculate_kv(f"doc-{i}", 320))
        assert cluster.total_evictions() > 0
        resident = {nid: len(node.store) for nid, node in cluster.nodes.items()}
        assert all(count <= 2 for count in resident.values())
        # Evicted contexts are still in the catalogue for the text fallback.
        assert all(cluster.known_tokens(f"doc-{i}") == 320 for i in range(4))

    def test_explicit_evict_hits_all_replicas(self, cluster, kv):
        cluster.store_kv("doc", kv)
        assert cluster.evict("doc") == 2
        assert "doc" not in cluster

"""Tests for sharded placement, replication, failover and capacity pressure."""

from __future__ import annotations

import pytest

from repro.cluster import ShardedKVStore, StorageNode
from repro.network import ConstantTrace, NetworkLink, gbps
from repro.storage import DiskKVStore, KVCacheStore, LRUPolicy, TieredKVStore


def _node(
    encoder,
    node_id: str,
    max_bytes: float | None = None,
    link: NetworkLink | None = None,
) -> StorageNode:
    return StorageNode(
        node_id,
        KVCacheStore(encoder, max_bytes=max_bytes, eviction_policy=LRUPolicy()),
        link=link,
    )


@pytest.fixture()
def cluster(encoder) -> ShardedKVStore:
    nodes = [_node(encoder, f"node-{i}") for i in range(4)]
    return ShardedKVStore(encoder, nodes, replication_factor=2)


class TestPlacement:
    def test_replication_factor_respected(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        assert len(placement.replica_node_ids) == 2
        holders = [
            node_id for node_id, node in cluster.nodes.items() if "doc" in node.store
        ]
        assert sorted(holders) == sorted(placement.replica_node_ids)

    def test_replicas_follow_ring_preference(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        assert list(placement.replica_node_ids) == cluster.ring.nodes_for("doc", 2)

    def test_down_node_skipped_at_ingest(self, cluster, kv):
        primary = cluster.ring.node_for("doc")
        cluster.mark_down(primary)
        placement = cluster.store_kv("doc", kv)
        assert primary not in placement.replica_node_ids
        assert primary in placement.skipped_node_ids
        assert len(placement.replica_node_ids) == 2

    def test_encode_happens_once(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        stored = [cluster.nodes[nid].store.get_context("doc") for nid in placement.replica_node_ids]
        # Replication ships bitstreams; both replicas hold the same encoding.
        assert stored[0] is stored[1]


class TestFailover:
    def test_lookup_prefers_primary(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        lookup = cluster.locate("doc")
        assert lookup.found
        assert lookup.node.node_id == placement.replica_node_ids[0]
        assert not lookup.failed_over

    def test_failover_returns_identical_bitstreams(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        primary, backup = placement.replica_node_ids[:2]
        before = cluster.nodes[primary].store.get_kv("doc", 0, "medium")
        cluster.mark_down(primary)
        lookup = cluster.locate("doc")
        assert lookup.found and lookup.failed_over
        assert lookup.node.node_id == backup
        after = lookup.node.store.get_kv("doc", 0, "medium")
        assert after.payload_bits == before.payload_bits
        assert after.compressed_bytes == before.compressed_bytes

    def test_all_replicas_down_is_a_full_miss(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        for node_id in placement.replica_node_ids:
            cluster.mark_down(node_id)
        lookup = cluster.locate("doc")
        assert not lookup.found
        assert "doc" not in cluster
        assert cluster.known_tokens("doc") == kv.num_tokens

    def test_recovery_restores_service(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        for node_id in placement.replica_node_ids:
            cluster.mark_down(node_id)
        cluster.mark_up(placement.replica_node_ids[0])
        assert cluster.locate("doc").found


class TestReplicaSelection:
    def test_faster_link_wins_over_ring_order(self, encoder, kv):
        slow = NetworkLink(ConstantTrace(gbps(0.2)))
        fast = NetworkLink(ConstantTrace(gbps(5.0)))
        nodes = [_node(encoder, "node-0", link=slow), _node(encoder, "node-1", link=fast)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        cluster.store_kv("doc", kv)
        # Both replicas hold the context; the modeled-fastest one serves it,
        # whatever the ring's preference order says.
        assert cluster.locate("doc").node.node_id == "node-1"

    def test_deeper_queue_deflects_to_other_replica(self, cluster, kv):
        placement = cluster.store_kv("doc", kv)
        primary, backup = placement.replica_node_ids
        assert cluster.locate("doc").node.node_id == primary
        cluster.node(primary).begin_serving()
        try:
            # With a request already streaming from the primary, the modeled
            # service time doubles and the idle backup replica wins.
            assert cluster.locate("doc").node.node_id == backup
        finally:
            cluster.node(primary).end_serving()
        assert cluster.locate("doc").node.node_id == primary

    def test_slower_replica_is_not_a_failover(self, encoder, kv):
        slow = NetworkLink(ConstantTrace(gbps(0.2)))
        fast = NetworkLink(ConstantTrace(gbps(5.0)))
        nodes = [_node(encoder, "node-0", link=slow), _node(encoder, "node-1", link=fast)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        cluster.store_kv("doc", kv)
        lookup = cluster.locate("doc")
        # Passing over a live-but-slower replica is a choice, not a failover.
        assert not lookup.failed_over
        assert cluster.stats.failovers == 0


class TestRebalance:
    NUM_CONTEXTS = 8

    @pytest.fixture()
    def populated(self, encoder, llm):
        nodes = [_node(encoder, f"node-{i}") for i in range(3)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        for i in range(self.NUM_CONTEXTS):
            cluster.store_kv(f"doc-{i}", llm.calculate_kv(f"doc-{i}", 320))
        return cluster

    def test_add_node_migrates_remapped_contexts(self, populated):
        joining = _node(populated.encoder, "node-3")
        report = populated.add_node(joining)
        owned = [
            f"doc-{i}"
            for i in range(self.NUM_CONTEXTS)
            if "node-3" in populated.ring.nodes_for(f"doc-{i}", 2)
        ]
        assert owned, "the new node must own some contexts for this test to bite"
        assert report.contexts_moved == len(owned)
        assert report.bytes_moved > 0
        for context_id in owned:
            assert context_id in joining.store

    def test_rebalance_preserves_replication_factor(self, populated):
        report = populated.add_node(_node(populated.encoder, "node-3"))
        assert report.replicas_dropped == report.contexts_moved
        for i in range(self.NUM_CONTEXTS):
            assert len(populated.replicas_for(f"doc-{i}")) == 2

    def test_rebalance_can_be_disabled(self, populated):
        joining = _node(populated.encoder, "node-3")
        report = populated.add_node(joining, rebalance=False)
        assert report.contexts_moved == 0
        assert len(joining.store) == 0

    def test_capacity_bounded_join_never_under_replicates(self, populated, encoder):
        """A small joining node fills up, it never churns earlier migrants.

        Migrating under capacity pressure would evict earlier migrants whose
        displaced old replicas are already gone; the rebalance must skip
        instead, keeping every context at full replication.
        """
        one_context = next(iter(populated.nodes.values())).store.peek_context(
            "doc-0"
        ).total_bytes()
        joining = _node(populated.encoder, "node-3", max_bytes=1.5 * one_context)
        report = populated.add_node(joining)
        assert report.contexts_moved == len(joining.store) <= 1
        assert joining.store.eviction_count == 0
        for i in range(self.NUM_CONTEXTS):
            assert len(populated.replicas_for(f"doc-{i}")) >= 2

    def test_rebalance_cuts_post_scaleup_misses(self, populated):
        """After a proactive rebalance every lookup is a primary hit again."""
        populated.add_node(_node(populated.encoder, "node-3"))
        failovers_before = populated.stats.failovers
        for i in range(self.NUM_CONTEXTS):
            assert populated.locate(f"doc-{i}").found
        assert populated.stats.failovers == failovers_before


class TestCapacityPressure:
    def test_squeeze_evicts_and_reports(self, encoder, llm):
        kv = llm.calculate_kv("sizing-probe", 320)
        one_context = KVCacheStore(encoder).store_kv("probe", kv).total_bytes()
        # Room for ~2 contexts per node.
        nodes = [_node(encoder, f"node-{i}", max_bytes=2.2 * one_context) for i in range(2)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        for i in range(4):
            cluster.store_kv(f"doc-{i}", llm.calculate_kv(f"doc-{i}", 320))
        assert cluster.total_evictions() > 0
        resident = {nid: len(node.store) for nid, node in cluster.nodes.items()}
        assert all(count <= 2 for count in resident.values())
        # Evicted contexts are still in the catalogue for the text fallback.
        assert all(cluster.known_tokens(f"doc-{i}") == 320 for i in range(4))

    def test_explicit_evict_hits_all_replicas(self, cluster, kv):
        cluster.store_kv("doc", kv)
        assert cluster.evict("doc") == 2
        assert "doc" not in cluster


def _tiered_node(
    encoder,
    node_id: str,
    hot_bytes: float,
    cold_bytes: float | None = None,
    link: NetworkLink | None = None,
    tier_link: NetworkLink | None = None,
) -> StorageNode:
    hot = KVCacheStore(encoder, max_bytes=hot_bytes, eviction_policy=LRUPolicy())
    cold = DiskKVStore(max_bytes=cold_bytes, link=tier_link)
    return StorageNode(node_id, TieredKVStore(hot, cold), link=link)


class TestTieredCluster:
    def _sized(self, encoder, llm):
        kv = llm.calculate_kv("sizing-probe", 320)
        return KVCacheStore(encoder).store_kv("probe", kv).total_bytes()

    def test_locate_prefers_hot_replica_over_cold(self, encoder, llm):
        """Failover order: hot replica first, cold tier only when no hot copy."""
        one = self._sized(encoder, llm)
        nodes = [
            _tiered_node(encoder, "node-0", hot_bytes=1.2 * one),
            _tiered_node(encoder, "node-1", hot_bytes=1.2 * one),
        ]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        cluster.store_kv("doc", llm.calculate_kv("doc", 320))
        # Demote the ring-preferred replica's copy to its cold tier.
        primary = cluster.ring.node_for("doc")
        backup = next(nid for nid in cluster.nodes if nid != primary)
        cluster.nodes[primary].store.hot.evict("doc")
        cluster.nodes[primary].store.cold.store_prepared(
            cluster.nodes[backup].store.peek_context("doc")
        )
        lookup = cluster.locate("doc")
        assert lookup.tier == "hot"
        assert lookup.node.node_id == backup
        assert not lookup.cold_hit

    def test_cold_hit_promotes_on_the_serving_node(self, encoder, llm):
        one = self._sized(encoder, llm)
        nodes = [
            _tiered_node(encoder, f"node-{i}", hot_bytes=1.2 * one) for i in range(2)
        ]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        cluster.store_kv("doc-0", llm.calculate_kv("doc-0", 320))
        cluster.store_kv("doc-1", llm.calculate_kv("doc-1", 320))  # demotes doc-0
        for node in nodes:
            node.store.flush_demotions()
        assert all(node.store.tier_of("doc-0") == "cold" for node in nodes)
        lookup = cluster.locate("doc-0")
        assert lookup.cold_hit
        assert lookup.node.store.tier_of("doc-0") == "hot"
        assert cluster.stats.cold_lookup_hits == 1

    def test_capacity_pressure_demotes_and_serves_without_text_fallback(
        self, encoder, llm
    ):
        one = self._sized(encoder, llm)
        nodes = [
            _tiered_node(encoder, f"node-{i}", hot_bytes=2.2 * one) for i in range(2)
        ]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        for i in range(4):
            cluster.store_kv(f"doc-{i}", llm.calculate_kv(f"doc-{i}", 320))
        # Everything is still resident somewhere: no full misses, no drops.
        assert cluster.total_evictions() == 0
        for i in range(4):
            assert cluster.locate(f"doc-{i}").found
        assert cluster.stats.full_misses == 0

    def test_rebalance_counts_in_flight_demotions(self, encoder, llm):
        """The capacity guard must see write-buffer bytes, or the joining
        node's hot tier over-fills and churns earlier migrants."""
        one = self._sized(encoder, llm)
        nodes = [_node(encoder, f"node-{i}") for i in range(3)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        for i in range(6):
            cluster.store_kv(f"doc-{i}", llm.calculate_kv(f"doc-{i}", 320))
        joining = _tiered_node(encoder, "node-3", hot_bytes=2.5 * one)
        # Pre-fill the joining node so its write buffer holds one in-flight
        # demotion: hot fits 2 contexts, the third's victim awaits write-back.
        for i in range(3):
            joining.store.store_kv(f"warm-{i}", llm.calculate_kv(f"warm-{i}", 320))
        assert joining.store.pending_demotion_bytes > 0
        headroom = joining.store.migration_headroom_bytes()
        assert headroom < one  # no room for a migration right now
        hot_resident_before = set(joining.store.hot.context_ids())
        cluster.add_node(joining)
        # The guard skipped every migration: nothing demoted the warm set.
        assert set(joining.store.hot.context_ids()) == hot_resident_before
        for i in range(6):
            assert len(cluster.replicas_for(f"doc-{i}")) >= 2

    def test_rebalance_fills_tiered_node_with_headroom(self, encoder, llm):
        nodes = [_node(encoder, f"node-{i}") for i in range(3)]
        cluster = ShardedKVStore(encoder, nodes, replication_factor=2)
        for i in range(6):
            cluster.store_kv(f"doc-{i}", llm.calculate_kv(f"doc-{i}", 320))
        joining = _tiered_node(encoder, "node-3", hot_bytes=1e9)
        report = cluster.add_node(joining)
        assert report.contexts_moved > 0
        assert joining.store.demotion_count == 0

"""Tests for the consistent-hash placement ring."""

from __future__ import annotations

import pytest

from repro.cluster import ConsistentHashRing

KEYS = [f"ctx-{i:04d}" for i in range(1_000)]


@pytest.fixture()
def ring() -> ConsistentHashRing:
    return ConsistentHashRing([f"node-{i}" for i in range(4)])


class TestLookup:
    def test_deterministic(self, ring):
        assert all(ring.node_for(key) == ring.node_for(key) for key in KEYS[:50])

    def test_every_node_gets_keys(self, ring):
        owners = {ring.node_for(key) for key in KEYS}
        assert owners == set(ring.node_ids)

    def test_roughly_balanced(self, ring):
        counts = {node: 0 for node in ring.node_ids}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        # With 64 vnodes the split is not exact, but no node should be
        # starved or hold a majority of a 4-node ring.
        assert min(counts.values()) > len(KEYS) * 0.10
        assert max(counts.values()) < len(KEYS) * 0.50

    def test_nodes_for_distinct_and_ordered(self, ring):
        nodes = ring.nodes_for("ctx-0001", 3)
        assert len(nodes) == len(set(nodes)) == 3
        assert nodes[0] == ring.node_for("ctx-0001")
        # Asking for more replicas than nodes caps at the node count.
        assert len(ring.nodes_for("ctx-0001", 99)) == 4

    def test_preference_order_covers_all_nodes(self, ring):
        assert sorted(ring.preference_order("ctx-0002")) == ring.node_ids

    def test_invalid_inputs(self, ring):
        with pytest.raises(ValueError):
            ring.nodes_for("k", 0)
        with pytest.raises(RuntimeError):
            ConsistentHashRing([]).node_for("k")
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)


class TestStability:
    """Adding/removing a node must only remap a bounded key fraction."""

    def test_add_node_moves_few_keys(self, ring):
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("node-4")
        after = {key: ring.node_for(key) for key in KEYS}
        moved = sum(1 for key in KEYS if before[key] != after[key])
        # Expected movement is ~1/5 of the keyspace; naive mod-N hashing
        # would move ~4/5.  Allow generous slack around the expectation.
        assert 0 < moved < len(KEYS) * 0.40
        # Every moved key moved *to* the new node, never between old nodes.
        assert all(after[key] == "node-4" for key in KEYS if before[key] != after[key])

    def test_remove_node_only_remaps_its_keys(self, ring):
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove_node("node-2")
        after = {key: ring.node_for(key) for key in KEYS}
        for key in KEYS:
            if before[key] == "node-2":
                assert after[key] != "node-2"
            else:
                assert after[key] == before[key]

    def test_add_remove_round_trips(self, ring):
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("node-4")
        ring.remove_node("node-4")
        assert {key: ring.node_for(key) for key in KEYS} == before

    def test_duplicate_and_missing_nodes(self, ring):
        with pytest.raises(ValueError):
            ring.add_node("node-0")
        with pytest.raises(KeyError):
            ring.remove_node("node-9")

"""Shared fixtures for the test suite.

Fixtures are session-scoped where construction is expensive (synthetic KV
generation, encoder profiling) so the several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CacheGenConfig, CacheGenDecoder, CacheGenEncoder, KVCache
from repro.llm import MISTRAL_7B, ComputeModel, QualityModel, SyntheticLLM
from repro.network import ConstantTrace, NetworkLink, gbps

#: Context length used by most tests — small enough to be fast, large enough
#: to span several anchor groups and more than one streaming chunk.
TEST_TOKENS = 640


@pytest.fixture(scope="session")
def llm() -> SyntheticLLM:
    return SyntheticLLM(MISTRAL_7B)


@pytest.fixture(scope="session")
def kv(llm: SyntheticLLM) -> KVCache:
    return llm.calculate_kv("test-context", TEST_TOKENS)


@pytest.fixture(scope="session")
def sample_caches(llm: SyntheticLLM) -> list[KVCache]:
    return [llm.calculate_kv(f"profile-{i}", 320) for i in range(2)]


@pytest.fixture(scope="session")
def small_config() -> CacheGenConfig:
    # Chunks of 256 tokens so TEST_TOKENS spans three chunks.
    return CacheGenConfig(chunk_tokens=256)


@pytest.fixture(scope="session")
def encoder(sample_caches: list[KVCache], small_config: CacheGenConfig) -> CacheGenEncoder:
    return CacheGenEncoder(small_config).fit(sample_caches)


@pytest.fixture(scope="session")
def decoder(encoder: CacheGenEncoder) -> CacheGenDecoder:
    return CacheGenDecoder(encoder)


@pytest.fixture(scope="session")
def compute_model() -> ComputeModel:
    return ComputeModel(MISTRAL_7B)


@pytest.fixture(scope="session")
def quality_model() -> QualityModel:
    return QualityModel(num_layers=MISTRAL_7B.sim_layers)


@pytest.fixture()
def fast_link() -> NetworkLink:
    return NetworkLink(ConstantTrace(gbps(3.0)))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)

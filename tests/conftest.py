"""Shared fixtures for the test suite.

Fixtures are session-scoped where construction is expensive (synthetic KV
generation, encoder profiling) so the several hundred tests stay fast.

The serving/cluster/fleet suites additionally run under the simcheck runtime
sanitizers (see ``pytest_collection_modifyitems``): every driver run in those
suites gets a recording :class:`~repro.simcheck.sanitizers.ClockSanitizer`
and strict conservation-invariant checks.  Run the subset alone with
``pytest -m simcheck``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CacheGenConfig, CacheGenDecoder, CacheGenEncoder, KVCache
from repro.llm import MISTRAL_7B, ComputeModel, QualityModel, SyntheticLLM
from repro.network import ConstantTrace, NetworkLink, gbps

#: Context length used by most tests — small enough to be fast, large enough
#: to span several anchor groups and more than one streaming chunk.
TEST_TOKENS = 640

#: Test directories whose runs exercise the event simulation; the simcheck
#: sanitizers are force-enabled for every test collected under them.
_SIMCHECK_DIRS = ("tests/serving", "tests/cluster", "tests/simcheck", "tests/faults")


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "simcheck: runs with the repro.simcheck runtime sanitizers enabled",
    )


def pytest_collection_modifyitems(config, items) -> None:
    for item in items:
        path = str(getattr(item, "path", "") or getattr(item, "fspath", ""))
        normalized = path.replace("\\", "/")
        if any(directory in normalized for directory in _SIMCHECK_DIRS):
            item.add_marker(pytest.mark.simcheck)


@pytest.fixture(autouse=True)
def _simcheck_sanitizers(request):
    """Enable strict runtime sanitizers for tests marked ``simcheck``."""
    if request.node.get_closest_marker("simcheck") is None:
        yield
        return
    from repro.simcheck.runtime import enabled

    with enabled():
        yield


@pytest.fixture(scope="session")
def llm() -> SyntheticLLM:
    return SyntheticLLM(MISTRAL_7B)


@pytest.fixture(scope="session")
def kv(llm: SyntheticLLM) -> KVCache:
    return llm.calculate_kv("test-context", TEST_TOKENS)


@pytest.fixture(scope="session")
def sample_caches(llm: SyntheticLLM) -> list[KVCache]:
    return [llm.calculate_kv(f"profile-{i}", 320) for i in range(2)]


@pytest.fixture(scope="session")
def small_config() -> CacheGenConfig:
    # Chunks of 256 tokens so TEST_TOKENS spans three chunks.
    return CacheGenConfig(chunk_tokens=256)


@pytest.fixture(scope="session")
def encoder(sample_caches: list[KVCache], small_config: CacheGenConfig) -> CacheGenEncoder:
    return CacheGenEncoder(small_config).fit(sample_caches)


@pytest.fixture(scope="session")
def decoder(encoder: CacheGenEncoder) -> CacheGenDecoder:
    return CacheGenDecoder(encoder)


@pytest.fixture(scope="session")
def compute_model() -> ComputeModel:
    return ComputeModel(MISTRAL_7B)


@pytest.fixture(scope="session")
def quality_model() -> QualityModel:
    return QualityModel(num_layers=MISTRAL_7B.sim_layers)


@pytest.fixture()
def fast_link() -> NetworkLink:
    return NetworkLink(ConstantTrace(gbps(3.0)))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)

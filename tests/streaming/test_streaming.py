"""Tests for chunking, adaptation and the KV streamer."""

from __future__ import annotations

import pytest

from repro.network import ConstantTrace, NetworkLink, StepTrace, gbps
from repro.streaming import (
    TEXT_CONFIG,
    ConcurrentScheduler,
    FixedLevelPolicy,
    KVStreamer,
    SLOAwareAdapter,
    prepare_chunks,
    split_context,
)


@pytest.fixture(scope="module")
def prepared(encoder, kv):
    return prepare_chunks(kv, encoder)


@pytest.fixture(scope="module")
def streamer(decoder, compute_model):
    return KVStreamer(decoder, compute_model, initial_throughput_bps=gbps(3))


@pytest.fixture()
def adapter(encoder):
    return SLOAwareAdapter(level_names=[level.name for level in encoder.config.levels])


class TestChunking:
    def test_split_covers_all_tokens(self, kv):
        chunks = split_context(kv, 256)
        assert sum(chunk.num_tokens for chunk in chunks) == kv.num_tokens
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_split_invalid_chunk_size(self, kv):
        with pytest.raises(ValueError):
            split_context(kv, 0)

    def test_prepare_chunks_has_all_levels(self, prepared, encoder):
        level_names = {level.name for level in encoder.config.levels}
        for chunk in prepared:
            assert set(chunk.level_names()) == level_names

    def test_prepared_sizes_ordered_by_level(self, prepared):
        for chunk in prepared:
            sizes = [chunk.bytes_for_level(name) for name in ("high", "medium", "low", "lowest")]
            assert sizes == sorted(sizes, reverse=True)

    def test_text_bytes_proportional_to_tokens(self, prepared, encoder):
        per_token = encoder.config.text_bytes_per_token
        for chunk in prepared:
            assert chunk.text_bytes == int(round(chunk.num_tokens * per_token))


class TestAdaptation:
    def test_high_bandwidth_picks_highest_level(self, prepared, adapter):
        decision = adapter.decide(
            prepared, throughput_bps=gbps(100), remaining_time_s=2.0, recompute_time_s=10.0
        )
        assert decision.config == "high"
        assert decision.feasible

    def test_medium_bandwidth_steps_down(self, prepared, adapter):
        total_high = sum(c.bytes_for_level("high") for c in prepared)
        throughput = total_high * 8.0 / 3.0  # high level would take 3s
        decision = adapter.decide(
            prepared, throughput_bps=throughput, remaining_time_s=2.0, recompute_time_s=10.0
        )
        assert decision.config in ("medium", "low", "lowest")

    def test_recompute_fallback_when_feasible(self, prepared, adapter):
        decision = adapter.decide(
            prepared, throughput_bps=gbps(0.001), remaining_time_s=5.0, recompute_time_s=1.0
        )
        assert decision.is_text

    def test_nothing_fits_picks_smallest(self, prepared, adapter):
        decision = adapter.decide(
            prepared, throughput_bps=gbps(0.01), remaining_time_s=0.05, recompute_time_s=100.0
        )
        assert decision.config == "lowest" or decision.is_text
        assert not decision.feasible

    def test_text_disabled(self, prepared, encoder):
        adapter = SLOAwareAdapter(
            level_names=[level.name for level in encoder.config.levels], allow_text_fallback=False
        )
        decision = adapter.decide(
            prepared, throughput_bps=gbps(10), remaining_time_s=10.0, recompute_time_s=0.01
        )
        assert not decision.is_text

    def test_empty_chunks_rejected(self, adapter):
        with pytest.raises(ValueError):
            adapter.decide([], throughput_bps=1.0, remaining_time_s=1.0, recompute_time_s=1.0)

    def test_fixed_policy_always_same_level(self, prepared):
        policy = FixedLevelPolicy("low")
        decision = policy.decide(
            prepared, throughput_bps=gbps(1), remaining_time_s=1.0, recompute_time_s=1.0
        )
        assert decision.config == "low"


class TestStreamer:
    def test_stream_reconstructs_all_tokens(self, streamer, prepared, kv, fast_link):
        result = streamer.stream(prepared, fast_link, FixedLevelPolicy("medium"))
        assert result.kv is not None
        assert result.kv.num_tokens == kv.num_tokens
        assert len(result.chunks) == len(prepared)

    def test_reconstruction_close_to_reference(self, streamer, prepared, kv, fast_link):
        result = streamer.stream(prepared, fast_link, FixedLevelPolicy("medium"))
        distortion = kv.normalized_distortion_per_layer(result.kv)
        assert float(distortion.mean()) < 0.1

    def test_total_time_positive_and_ordered(self, streamer, prepared, fast_link):
        result = streamer.stream(prepared, fast_link, FixedLevelPolicy("medium"))
        assert result.total_time_s >= result.network_time_s > 0

    def test_slower_link_longer_delay(self, streamer, prepared):
        fast = streamer.stream(prepared, NetworkLink(ConstantTrace(gbps(10))), FixedLevelPolicy("medium"))
        slow = streamer.stream(prepared, NetworkLink(ConstantTrace(gbps(0.5))), FixedLevelPolicy("medium"))
        assert slow.total_time_s > fast.total_time_s

    def test_slo_violation_flag(self, streamer, prepared):
        slow_link = NetworkLink(ConstantTrace(gbps(0.05)))
        result = streamer.stream(prepared, slow_link, FixedLevelPolicy("high"), slo_s=0.05)
        assert result.slo_violated

    def test_adaptive_switches_under_bandwidth_drop(self, streamer, prepared, adapter):
        """Under a severe, lasting drop the adapter changes configuration."""
        trace = StepTrace(gbps(3), gbps(0.01), gbps(0.01), drop_at_s=0.02, recover_at_s=60.0)
        result = streamer.stream(prepared, NetworkLink(trace), adapter, slo_s=0.2)
        assert len(set(result.configs)) > 1

    def test_adaptive_meets_slo_better_than_static(self, streamer, prepared, adapter):
        """Adaptation beats streaming the highest level through an outage."""
        trace = StepTrace(gbps(3), gbps(0.01), gbps(0.01), drop_at_s=0.02, recover_at_s=60.0)
        adaptive = streamer.stream(prepared, NetworkLink(trace), adapter, slo_s=0.2)
        static = streamer.stream(
            prepared, NetworkLink(trace), FixedLevelPolicy("high"), slo_s=0.2
        )
        assert adaptive.total_time_s < static.total_time_s

    def test_empty_chunks_rejected(self, streamer, fast_link, adapter):
        with pytest.raises(ValueError):
            streamer.stream([], fast_link, adapter)

    def test_text_chunks_are_lossless(self, decoder, compute_model, prepared, kv):
        streamer = KVStreamer(decoder, compute_model, initial_throughput_bps=gbps(0.001))
        link = NetworkLink(ConstantTrace(gbps(0.001)))
        adapter = SLOAwareAdapter(level_names=["high", "medium", "low", "lowest"])
        result = streamer.stream(prepared, link, adapter, slo_s=60.0)
        assert all(config == TEXT_CONFIG for config in result.configs)
        distortion = kv.normalized_distortion_per_layer(result.kv)
        assert float(distortion.mean()) == pytest.approx(0.0, abs=1e-9)


class TestScheduler:
    def test_batch_per_request_results(self, streamer, prepared, fast_link):
        scheduler = ConcurrentScheduler(streamer, max_batch_size=4)
        batch = scheduler.stream_batch([prepared, prepared], fast_link, FixedLevelPolicy("medium"))
        assert len(batch.per_request) == 2
        assert batch.max_loading_delay_s >= batch.mean_loading_delay_s > 0

    def test_more_concurrency_more_delay(self, streamer, prepared, fast_link):
        scheduler = ConcurrentScheduler(streamer, max_batch_size=8)
        single = scheduler.stream_batch([prepared], fast_link, FixedLevelPolicy("medium"))
        quad = scheduler.stream_batch([prepared] * 4, fast_link, FixedLevelPolicy("medium"))
        assert quad.max_loading_delay_s > single.max_loading_delay_s

    def test_queueing_beyond_batch_size(self, streamer, prepared, fast_link):
        scheduler = ConcurrentScheduler(streamer, max_batch_size=1)
        batch = scheduler.stream_batch([prepared, prepared], fast_link, FixedLevelPolicy("medium"))
        first, second = batch.per_request
        assert second.chunks[0].transfer_start_s >= first.total_time_s - 1e-6

    def test_empty_batch_rejected(self, streamer, fast_link):
        with pytest.raises(ValueError):
            ConcurrentScheduler(streamer).stream_batch([], fast_link, FixedLevelPolicy("medium"))

"""Tests for model configurations and their KV-size accounting."""

from __future__ import annotations

import pytest

from repro.llm import LLAMA_34B, LLAMA_70B, MISTRAL_7B, MODELS, get_model_config


class TestLookup:
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_get_by_name(self, name):
        assert get_model_config(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model_config("gpt-17")


class TestSizes:
    def test_kv_channels(self):
        assert MISTRAL_7B.kv_channels == 8 * 128

    def test_elements_per_token(self):
        assert MISTRAL_7B.kv_elements_per_token == 2 * 32 * 1024

    def test_bytes_per_token_fp16(self):
        assert MISTRAL_7B.kv_bytes_per_token_fp16 == 2 * MISTRAL_7B.kv_elements_per_token

    def test_mistral_8bit_cache_matches_table1(self):
        """Table 1: the 8-bit quantized cache of a ~9.4K LongChat context is ~622 MB."""
        size_mb = MISTRAL_7B.kv_cache_bytes(9_400, bits_per_element=8) / 1e6
        assert 550 < size_mb < 700

    def test_llama34b_cache_matches_intro(self):
        """§3: an ~80K-token context on Llama-34B produces a KV cache of ~19 GB."""
        size_gb = LLAMA_34B.kv_cache_bytes(80_000, bits_per_element=16) / 1e9
        assert 10 < size_gb < 25

    def test_70b_larger_than_7b(self):
        assert LLAMA_70B.kv_bytes_per_token_fp16 > MISTRAL_7B.kv_bytes_per_token_fp16

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            MISTRAL_7B.kv_cache_bytes(-1)


class TestSimulationDims:
    @pytest.mark.parametrize("config", list(MODELS.values()), ids=lambda c: c.name)
    def test_sim_dims_positive(self, config):
        assert config.sim_layers > 0
        assert config.sim_channels > 0
        assert config.sim_layers <= config.num_layers

    @pytest.mark.parametrize("config", list(MODELS.values()), ids=lambda c: c.name)
    def test_scale_factor_consistent(self, config):
        expected = (config.num_layers * config.kv_channels) / (
            config.sim_layers * config.sim_channels
        )
        assert config.sim_scale_factor == pytest.approx(expected)

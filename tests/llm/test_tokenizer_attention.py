"""Tests for the tokenizer and the attention-based token selection helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import SyntheticTokenizer, coverage_of, select_heavy_hitters, select_uniform


class TestTokenizer:
    def test_tokenize_counts_words_and_punctuation(self):
        tok = SyntheticTokenizer()
        result = tok.tokenize("Hello, world! This is CacheGen.")
        assert len(result) == 8

    def test_deterministic_ids(self):
        tok = SyntheticTokenizer()
        assert tok.tokenize("hello world").token_ids == tok.tokenize("hello world").token_ids

    def test_ids_within_vocab(self):
        tok = SyntheticTokenizer(vocab_size=100)
        ids = tok.tokenize("some words to hash into a small vocabulary").token_ids
        assert all(0 <= i < 100 for i in ids)

    def test_count_tokens_matches_tokenize(self):
        tok = SyntheticTokenizer()
        text = "A reasonably long sentence, with punctuation."
        assert tok.count_tokens(text) == len(tok.tokenize(text))

    def test_detokenize_joins(self):
        tok = SyntheticTokenizer()
        result = tok.tokenize("hello world")
        assert tok.detokenize(result.tokens) == "hello world"

    def test_text_bytes_for_tokens(self):
        tok = SyntheticTokenizer()
        assert tok.text_bytes_for_tokens(1000) == 4500
        with pytest.raises(ValueError):
            tok.text_bytes_for_tokens(-1)

    def test_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(vocab_size=1)


class TestTokenSelection:
    @pytest.fixture()
    def scores(self, rng):
        return rng.pareto(1.0, size=1000) + 0.01

    def test_heavy_hitters_respect_budget(self, scores):
        selection = select_heavy_hitters(scores, keep_fraction=0.3)
        assert selection.num_kept == pytest.approx(300, abs=2)
        assert selection.keep_fraction == pytest.approx(0.3, abs=0.01)

    def test_heavy_hitters_cover_more_than_uniform(self, scores):
        heavy = select_heavy_hitters(scores, keep_fraction=0.3)
        uniform = select_uniform(scores, keep_fraction=0.3, seed=1)
        assert heavy.attention_coverage > uniform.attention_coverage

    def test_heavy_hitters_include_recent_tokens(self, scores):
        selection = select_heavy_hitters(scores, keep_fraction=0.2, recent_window_fraction=0.5)
        recent = np.arange(len(scores) - 10, len(scores))
        assert np.isin(recent, selection.kept_positions).all()

    def test_positions_sorted_and_unique(self, scores):
        selection = select_heavy_hitters(scores, keep_fraction=0.4)
        positions = selection.kept_positions
        assert np.all(np.diff(positions) > 0)

    def test_uniform_coverage_close_to_keep_fraction(self, rng):
        scores = rng.uniform(0.5, 1.5, size=5000)
        selection = select_uniform(scores, keep_fraction=0.5, seed=3)
        assert selection.attention_coverage == pytest.approx(0.5, abs=0.05)

    def test_keep_everything(self, scores):
        selection = select_heavy_hitters(scores, keep_fraction=1.0)
        assert selection.num_kept == len(scores)
        assert selection.attention_coverage == pytest.approx(1.0)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction(self, scores, fraction):
        with pytest.raises(ValueError):
            select_heavy_hitters(scores, fraction)

    def test_negative_scores_rejected(self):
        with pytest.raises(ValueError):
            select_heavy_hitters(np.array([-1.0, 2.0]), 0.5)

    def test_coverage_of(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        assert coverage_of(scores, np.array([2, 3])) == pytest.approx(0.7)

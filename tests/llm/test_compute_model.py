"""Tests for the GPU compute / latency model."""

from __future__ import annotations

import pytest

from repro.llm import A40, A100, ComputeModel, MISTRAL_7B, LLAMA_70B


class TestFlops:
    def test_prefill_superlinear(self, compute_model):
        """Prefill compute grows superlinearly with context length (§2.1)."""
        flops_4k = compute_model.prefill_flops(4_000)
        flops_8k = compute_model.prefill_flops(8_000)
        assert flops_8k > 2.0 * flops_4k

    def test_prefill_flops_match_figure14(self, compute_model):
        """Figure 14b: ~250 TFLOPs scale for a ~9.4K-token Mistral-7B prefill."""
        tflops = compute_model.prefill_flops(9_400) / 1e12
        assert 100 < tflops < 400

    def test_decode_flops_negligible_vs_prefill(self, compute_model):
        assert compute_model.decode_flops(9_400) < 0.05 * compute_model.prefill_flops(9_400)

    def test_zero_tokens(self, compute_model):
        assert compute_model.prefill_flops(0) == 0.0
        assert compute_model.decode_flops(0) == 0.0

    def test_negative_tokens_rejected(self, compute_model):
        with pytest.raises(ValueError):
            compute_model.prefill_flops(-1)


class TestDelays:
    def test_3k_prefill_around_two_seconds(self, compute_model):
        """Calibration anchor from the paper's introduction."""
        assert 1.0 < compute_model.prefill_delay(3_000) < 3.5

    def test_gpu_share_scales_delay(self, compute_model):
        full = compute_model.prefill_delay(5_000, gpu_share=1.0)
        half = compute_model.prefill_delay(5_000, gpu_share=0.5)
        assert half == pytest.approx(2 * full)

    @pytest.mark.parametrize("share", [0.0, -0.5, 1.5])
    def test_invalid_share(self, compute_model, share):
        with pytest.raises(ValueError):
            compute_model.prefill_delay(100, gpu_share=share)

    def test_decode_much_faster_than_prefill(self, compute_model):
        assert compute_model.decode_delay(9_400) < 0.2 * compute_model.prefill_delay(9_400)

    def test_bigger_model_slower(self):
        small = ComputeModel(MISTRAL_7B)
        large = ComputeModel(LLAMA_70B)
        assert large.prefill_delay(4_000) > small.prefill_delay(4_000)

    def test_faster_gpu_faster_prefill(self):
        a40 = ComputeModel(MISTRAL_7B, A40)
        a100 = ComputeModel(MISTRAL_7B, A100)
        assert a100.prefill_delay(4_000) < a40.prefill_delay(4_000)

    def test_encode_delay_small(self, compute_model):
        """Offline encode delay is sub-second-ish per context (Figure 14c)."""
        assert compute_model.encode_delay(9_400) < 1.0

    def test_per_token_decode_delay_positive(self, compute_model):
        assert 0 < compute_model.per_token_decode_delay() < 0.5

"""Tests for the generation-quality surrogate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import QualityModel

LAYERS = 32


@pytest.fixture(scope="module")
def model() -> QualityModel:
    return QualityModel(num_layers=LAYERS)


class TestLayerSensitivity:
    def test_weights_sum_to_one(self, model):
        assert model.layer_sensitivity().sum() == pytest.approx(1.0)

    def test_shallow_layers_weigh_more(self, model):
        weights = model.layer_sensitivity()
        assert weights[0] > 5 * weights[-1]

    def test_monotone_decreasing(self, model):
        assert np.all(np.diff(model.layer_sensitivity()) <= 0)

    def test_single_layer_model(self):
        assert QualityModel(num_layers=1).layer_sensitivity().sum() == pytest.approx(1.0)

    def test_shallow_loss_hurts_more(self, model):
        """Insight 2: the same distortion hurts more in shallow layers."""
        shallow = np.zeros(LAYERS)
        shallow[:4] = 0.5
        deep = np.zeros(LAYERS)
        deep[-4:] = 0.5
        assert model.relative_quality("qa_accuracy", shallow) < model.relative_quality(
            "qa_accuracy", deep
        )


class TestScoring:
    def test_zero_distortion_is_lossless(self, model):
        quality = model.score("qa_accuracy", np.zeros(LAYERS))
        assert quality.relative_quality == pytest.approx(1.0)
        assert quality.value == pytest.approx(quality.base_value)

    def test_monotone_in_distortion(self, model):
        values = [
            model.relative_quality("qa_accuracy", np.full(LAYERS, d)) for d in (0.0, 0.05, 0.2, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_perplexity_increases_with_distortion(self, model):
        clean = model.score("perplexity", np.zeros(LAYERS))
        dirty = model.score("perplexity", np.full(LAYERS, 0.5))
        assert dirty.value > clean.value
        assert dirty.relative_quality < 1.0

    def test_unknown_task_rejected(self, model):
        with pytest.raises(ValueError):
            model.score("translation", np.zeros(LAYERS))

    def test_wrong_layer_count_rejected(self, model):
        with pytest.raises(ValueError):
            model.score("qa_accuracy", np.zeros(LAYERS + 1))

    def test_negative_distortion_rejected(self, model):
        with pytest.raises(ValueError):
            model.score("qa_accuracy", np.full(LAYERS, -0.1))

    def test_custom_base_values(self):
        model = QualityModel(num_layers=4, base_values={"qa_f1": 0.5})
        assert model.score("qa_f1", np.zeros(4)).value == pytest.approx(0.5)


class TestTokenRetention:
    def test_full_retention_no_penalty(self, model):
        assert model.token_retention_penalty(1.0, 1.0) == pytest.approx(1.0)

    def test_coverage_dominates_keep_fraction(self, model):
        heavy_hitters = model.token_retention_penalty(0.4, 0.95)
        random_drop = model.token_retention_penalty(0.9, 0.6)
        assert heavy_hitters > random_drop

    @pytest.mark.parametrize("keep,cov", [(0.0, 1.0), (1.5, 1.0), (0.5, -0.1), (0.5, 1.1)])
    def test_invalid_arguments(self, model, keep, cov):
        with pytest.raises(ValueError):
            model.token_retention_penalty(keep, cov)

    def test_calibration_h2o_vs_llmlingua(self, model):
        """H2O-style selection (high coverage) loses ~2-3%, LLMLingua-style ~6%."""
        h2o = model.relative_quality("qa_accuracy", np.zeros(LAYERS), 0.45, 0.96)
        lingua = model.relative_quality("qa_accuracy", np.zeros(LAYERS), 0.79, 0.79)
        assert 0.95 < h2o < 1.0
        assert 0.90 < lingua < h2o


@settings(max_examples=30, deadline=None)
@given(
    distortion=st.floats(0.0, 2.0),
    keep=st.floats(0.05, 1.0),
    coverage=st.floats(0.0, 1.0),
    task=st.sampled_from(["qa_accuracy", "qa_f1", "perplexity"]),
)
def test_relative_quality_bounded(distortion, keep, coverage, task):
    """Relative quality is always in [0, 1] for any inputs."""
    model = QualityModel(num_layers=8)
    value = model.relative_quality(task, np.full(8, distortion), keep, coverage)
    assert 0.0 <= value <= 1.0

"""Tests for the synthetic LLM substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta import consecutive_delta_variance_ratio
from repro.llm import LLAMA_7B, MISTRAL_7B, SyntheticLLM


class TestCalculateKV:
    def test_shapes(self, llm, kv):
        cfg = llm.config
        assert kv.shape == (cfg.sim_layers, 640, cfg.sim_channels)
        assert kv.full_layers == cfg.num_layers
        assert kv.full_channels == cfg.kv_channels

    def test_deterministic(self, llm):
        a = llm.calculate_kv("ctx", 100)
        b = llm.calculate_kv("ctx", 100)
        np.testing.assert_array_equal(a.k, b.k)

    def test_different_contexts_differ(self, llm):
        a = llm.calculate_kv("ctx-a", 100)
        b = llm.calculate_kv("ctx-b", 100)
        assert not np.array_equal(a.k, b.k)

    def test_channel_structure_shared_across_contexts(self, llm):
        """Per-channel scales are a model property, not a context property."""
        a = llm.calculate_kv("ctx-a", 400)
        b = llm.calculate_kv("ctx-b", 400)
        corr = np.corrcoef(a.k.std(axis=1).ravel(), b.k.std(axis=1).ravel())[0, 1]
        assert corr > 0.9

    def test_invalid_tokens(self, llm):
        with pytest.raises(ValueError):
            llm.calculate_kv("ctx", 0)

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            SyntheticLLM(MISTRAL_7B, token_correlation=1.5)

    def test_accepts_model_name(self):
        llm = SyntheticLLM("llama-7b")
        assert llm.config is LLAMA_7B


class TestStatisticalProperties:
    def test_insight1_consecutive_delta_ratio(self, kv):
        assert 2.2 < consecutive_delta_variance_ratio(kv.k) < 3.2

    def test_stationary_variance_across_positions(self, llm):
        """Early tokens must not have systematically lower variance."""
        kv = llm.calculate_kv("stationarity", 1000)
        early = kv.k[:, :100, :].var()
        late = kv.k[:, -100:, :].var()
        assert 0.6 < early / late < 1.6

    def test_channel_heterogeneity(self, kv):
        """Channel scales must vary widely (Insight 3 prerequisite)."""
        stds = kv.k.std(axis=1)  # (layers, channels)
        ratio = np.percentile(stds, 95) / np.percentile(stds, 5)
        assert ratio > 3.0

    def test_attention_scores_sum_to_one(self, llm):
        scores = llm.attention_scores("ctx", 500)
        assert scores.shape == (500,)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_attention_scores_heavy_tailed(self, llm):
        scores = np.sort(llm.attention_scores("ctx", 1000))[::-1]
        assert scores[:100].sum() > 0.5

    def test_attention_invalid_tokens(self, llm):
        with pytest.raises(ValueError):
            llm.attention_scores("ctx", 0)


class TestGenerateWithKV:
    def test_lossless_cache_full_quality(self, llm, kv):
        result = llm.generate_with_kv(kv, reference_kv=kv)
        assert result.quality.relative_quality == pytest.approx(1.0)
        assert result.text

    def test_lossy_cache_lower_quality(self, llm, kv):
        noisy = kv.copy()
        noisy.k += 0.5 * kv.k.std()
        result = llm.generate_with_kv(noisy, reference_kv=kv)
        assert result.quality.relative_quality < 0.9

    def test_token_dropping_penalty(self, llm, kv):
        result = llm.generate_with_kv(
            kv, reference_kv=kv, token_keep_fraction=0.5, important_token_coverage=0.7
        )
        assert result.quality.relative_quality < 1.0

    def test_no_reference_means_lossless(self, llm, kv):
        result = llm.generate_with_kv(kv)
        assert result.quality.relative_quality == pytest.approx(1.0)

    @pytest.mark.parametrize("task", ["qa_accuracy", "qa_f1", "perplexity"])
    def test_all_tasks_supported(self, llm, kv, task):
        result = llm.generate_with_kv(kv, reference_kv=kv, task=task)
        assert result.quality.task == task

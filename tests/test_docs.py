"""Documentation guardrails: docstring audit, generated API reference,
markdown link integrity, and the README fleet quickstart snippet.

These keep the docs satellites honest: every public export must carry a
docstring with an example, ``docs/API.md`` must match what the generator
would produce from those docstrings, every relative markdown link must
resolve, and the README's fleet snippet must at least compile (CI executes
it for real in the ``docs`` job).
"""

from __future__ import annotations

import importlib.util
import inspect
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_script(name: str):
    path = REPO_ROOT / "scripts" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocstringAudit:
    def test_every_export_has_a_docstring(self):
        import repro

        missing = [
            name
            for name in repro.__all__
            if name != "__version__" and not inspect.getdoc(getattr(repro, name))
        ]
        assert missing == []

    def test_every_export_docstring_has_an_example(self):
        import repro

        missing = []
        for name in repro.__all__:
            if name == "__version__":
                continue
            doc = inspect.getdoc(getattr(repro, name)) or ""
            if ">>>" not in doc:
                missing.append(name)
        assert missing == []


class TestGeneratedApiDocs:
    def test_api_md_is_up_to_date(self):
        generator = _load_script("generate_api_docs")
        expected = generator.render()
        path = REPO_ROOT / "docs" / "API.md"
        assert path.exists(), "docs/API.md missing — run scripts/generate_api_docs.py"
        assert path.read_text(encoding="utf-8") == expected, (
            "docs/API.md is stale — regenerate with "
            "`PYTHONPATH=src python scripts/generate_api_docs.py`"
        )

    def test_reference_covers_all_exports(self):
        import repro

        text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert f"### `{name}`" in text


class TestMarkdownLinks:
    def test_all_relative_links_resolve(self):
        checker = _load_script("check_markdown_links")
        errors = []
        for path in checker.default_files():
            errors.extend(checker.check_file(path))
        assert errors == []

    @pytest.mark.parametrize("target", ["docs/ARCHITECTURE.md", "docs/API.md"])
    def test_readme_links_the_docs(self, target):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert target in readme
        assert (REPO_ROOT / target).exists()


class TestReadmeFleetSnippet:
    def test_fleet_quickstart_snippet_compiles(self):
        runner = _load_script("run_readme_snippets")
        snippets = runner.extract_snippets(
            (REPO_ROOT / "README.md").read_text(encoding="utf-8"),
            "Fleet serving & autoscaling",
        )
        assert snippets, "README lost its fleet quickstart python snippet"
        for index, snippet in enumerate(snippets):
            compile(snippet, f"<fleet-snippet-{index}>", "exec")
        # The snippet must exercise the fleet spec fields it documents.
        joined = "\n".join(snippets)
        for field in ("gpu_workers", "dispatch_policy", "autoscale"):
            assert field in joined

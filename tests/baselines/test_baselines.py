"""Tests for the context-loading methods (CacheGen and every baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CacheGenMethod,
    CacheGenOnCompressionBaseline,
    GistingBaseline,
    H2OBaseline,
    LLMLinguaBaseline,
    LoadRequest,
    ScissorhandsBaseline,
    SmallerModelBaseline,
    TextContextBaseline,
    UniformQuantizationBaseline,
)
from repro.datasets.base import ContextRecord
from repro.network import ConstantTrace, NetworkLink, gbps


@pytest.fixture(scope="module")
def record(kv) -> ContextRecord:
    return ContextRecord(
        context_id="test-context",
        num_tokens=kv.num_tokens,
        prompt_tokens=32,
        task="qa_accuracy",
        question="What was the first topic?",
    )


@pytest.fixture(scope="module")
def request_(record, llm, kv, compute_model, quality_model):
    return LoadRequest(
        record=record,
        llm=llm,
        reference_kv=kv,
        link=NetworkLink(ConstantTrace(gbps(3))),
        compute_model=compute_model,
        quality_model=quality_model,
    )


class TestTextBaseline:
    def test_quality_is_lossless(self, request_):
        result = TextContextBaseline().evaluate(request_)
        assert result.quality.relative_quality == pytest.approx(1.0)

    def test_small_bytes_large_compute(self, request_):
        result = TextContextBaseline().evaluate(request_)
        assert result.transmitted_bytes < 1e5
        assert result.breakdown.compute_s > result.breakdown.network_s

    def test_invalid_bytes_per_token(self):
        with pytest.raises(ValueError):
            TextContextBaseline(bytes_per_token=0)


class TestQuantizationBaseline:
    @pytest.mark.parametrize("bits", [8, 4, 3])
    def test_size_proportional_to_bits(self, request_, bits):
        result = UniformQuantizationBaseline(bits).evaluate(request_)
        expected = request_.reference_kv.full_num_elements * bits / 8
        assert result.transmitted_bytes == pytest.approx(expected, rel=0.05)

    def test_8bit_nearly_lossless(self, request_):
        result = UniformQuantizationBaseline(8).evaluate(request_)
        assert result.quality.relative_quality > 0.995

    def test_fewer_bits_lower_quality(self, request_):
        qualities = [
            UniformQuantizationBaseline(bits).evaluate(request_).quality.value for bits in (8, 4, 3)
        ]
        assert qualities == sorted(qualities, reverse=True)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            UniformQuantizationBaseline(1)


class TestCacheGenMethod:
    @pytest.fixture(scope="class")
    def cachegen(self, encoder):
        return CacheGenMethod(encoder)

    def test_smaller_than_8bit_quant(self, request_, cachegen):
        quant = UniformQuantizationBaseline(8).evaluate(request_)
        ours = cachegen.evaluate(request_)
        assert ours.transmitted_bytes < quant.transmitted_bytes / 2.5

    def test_faster_than_text_and_quant(self, request_, cachegen):
        text = TextContextBaseline().evaluate(request_)
        quant = UniformQuantizationBaseline(8).evaluate(request_)
        ours = cachegen.evaluate(request_)
        assert ours.ttft_s < quant.ttft_s
        assert ours.ttft_s < text.ttft_s

    def test_quality_within_two_percent(self, request_, cachegen):
        result = cachegen.evaluate(request_)
        assert result.quality.relative_quality > 0.97

    def test_extras_report_configs(self, request_, cachegen):
        result = cachegen.evaluate(request_)
        assert len(result.extras["configs"]) >= 1
        assert result.extras["loading_delay_s"] > 0

    def test_static_variant_uses_fixed_level(self, encoder, request_):
        static = CacheGenMethod(encoder, adaptive=False, fixed_level="low")
        result = static.evaluate(request_)
        assert set(result.extras["configs"]) == {"low"}

    def test_prepared_chunk_cache_reused(self, encoder, request_):
        method = CacheGenMethod(encoder)
        method.evaluate(request_)
        first = method._prepared_cache
        method.evaluate(request_)
        assert method._prepared_cache is first and len(first) == 1


class TestTokenDroppingBaselines:
    def test_h2o_size_scales_with_keep_fraction(self, request_):
        small = H2OBaseline(keep_fraction=0.3).evaluate(request_)
        large = H2OBaseline(keep_fraction=0.6).evaluate(request_)
        assert small.transmitted_bytes < large.transmitted_bytes

    def test_h2o_quality_close_to_paper(self, request_):
        result = H2OBaseline(keep_fraction=0.45).evaluate(request_)
        assert 0.94 < result.quality.relative_quality <= 1.0

    def test_llmlingua_worse_than_h2o_at_same_keep(self, request_):
        h2o = H2OBaseline(keep_fraction=0.5).evaluate(request_)
        lingua = LLMLinguaBaseline(keep_fraction=0.5).evaluate(request_)
        assert lingua.quality.value <= h2o.quality.value + 1e-6

    def test_scissorhands_is_heavy_hitter_policy(self, request_):
        result = ScissorhandsBaseline(keep_fraction=0.3).evaluate(request_)
        assert result.extras["attention_coverage"] > 0.5

    def test_invalid_keep_fraction(self):
        with pytest.raises(ValueError):
            H2OBaseline(keep_fraction=0.0)
        with pytest.raises(ValueError):
            LLMLinguaBaseline(keep_fraction=1.5)


class TestComposition:
    def test_cachegen_on_h2o_smaller_than_h2o(self, request_, encoder):
        h2o = H2OBaseline(keep_fraction=0.45)
        composed = CacheGenOnCompressionBaseline(h2o, encoder)
        assert (
            composed.evaluate(request_).transmitted_bytes
            < h2o.evaluate(request_).transmitted_bytes / 2.5
        )

    def test_composition_keeps_most_quality(self, request_, encoder):
        h2o = H2OBaseline(keep_fraction=0.45)
        composed = CacheGenOnCompressionBaseline(h2o, encoder).evaluate(request_)
        plain = h2o.evaluate(request_)
        assert composed.quality.value > plain.quality.value - 0.05

    def test_name_reflects_inner(self, request_, encoder):
        composed = CacheGenOnCompressionBaseline(LLMLinguaBaseline(), encoder)
        assert composed.name == "cachegen+llmlingua"


class TestIntrusiveBaselines:
    def test_gisting_tiny_but_lossy(self, request_):
        result = GistingBaseline(compression_ratio=16).evaluate(request_)
        assert result.transmitted_bytes < 0.1 * request_.reference_kv.full_nbytes
        assert result.quality.relative_quality < 0.95

    def test_gisting_more_compression_less_quality(self, request_):
        q = [
            GistingBaseline(compression_ratio=r).evaluate(request_).quality.value
            for r in (2, 8, 32)
        ]
        assert q == sorted(q, reverse=True)

    def test_gisting_invalid_ratio(self):
        with pytest.raises(ValueError):
            GistingBaseline(compression_ratio=0.5)

    def test_smaller_model_smaller_cache_lower_quality(self, request_):
        from repro.llm import LLAMA_3B, LLAMA_7B

        result = SmallerModelBaseline(num_bits=8).evaluate(request_)
        big = UniformQuantizationBaseline(8).evaluate(request_)
        # Size equals the smaller model's own 8-bit cache (which is smaller
        # than the Llama-7B-class model Figure 18a compares against).
        expected = LLAMA_3B.kv_cache_bytes(request_.num_tokens, 8)
        assert result.transmitted_bytes == pytest.approx(expected, rel=0.01)
        assert LLAMA_3B.kv_cache_bytes(1000, 8) < LLAMA_7B.kv_cache_bytes(1000, 8)
        assert result.quality.value < big.quality.value

    def test_smaller_model_explicit_base_quality(self, request_):
        result = SmallerModelBaseline(num_bits=8, base_quality=0.5).evaluate(request_)
        assert result.quality.value <= 0.5 + 1e-6


class TestConcurrencyAndSharing:
    def test_concurrency_slows_every_method(self, record, llm, kv, compute_model, quality_model, encoder):
        def build(concurrency, gpu_share):
            return LoadRequest(
                record=record,
                llm=llm,
                reference_kv=kv,
                link=NetworkLink(ConstantTrace(gbps(3))),
                compute_model=compute_model,
                quality_model=quality_model,
                gpu_share=gpu_share,
                concurrency=concurrency,
            )

        for method in (TextContextBaseline(), UniformQuantizationBaseline(8), CacheGenMethod(encoder)):
            single = method.evaluate(build(1, 1.0)).ttft_s
            loaded = method.evaluate(build(4, 0.25)).ttft_s
            assert loaded > single

"""Tests for vectorwise and bin quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantization import (
    SYMBOL_CLIP,
    bin_dequantize,
    bin_quantize,
    layer_bin_sizes,
    vectorwise_dequantize,
    vectorwise_quantize,
)


class TestVectorwise:
    @pytest.mark.parametrize("bits", [2, 3, 4, 8, 16])
    def test_symbols_within_range(self, rng, bits):
        tensor = rng.normal(size=(3, 50, 6)).astype(np.float32)
        quantized = vectorwise_quantize(tensor, bits)
        limit = 2 ** (bits - 1) - 1
        assert quantized.symbols.max() <= limit
        assert quantized.symbols.min() >= -limit

    @pytest.mark.parametrize("bits", [4, 8, 12])
    def test_error_bounded_by_half_step(self, rng, bits):
        tensor = rng.normal(size=(2, 80, 5)).astype(np.float32)
        quantized = vectorwise_quantize(tensor, bits)
        recovered = vectorwise_dequantize(quantized)
        step = quantized.scale[:, None, :]
        assert np.all(np.abs(recovered - tensor) <= step / 2 + 1e-6)

    def test_more_bits_less_error(self, rng):
        tensor = rng.normal(size=(2, 100, 8)).astype(np.float32)
        errors = []
        for bits in (3, 4, 8):
            recovered = vectorwise_quantize(tensor, bits).dequantize()
            errors.append(float(np.mean((recovered - tensor) ** 2)))
        assert errors[0] > errors[1] > errors[2]

    def test_8bit_nearly_lossless(self, kv):
        quantized = vectorwise_quantize(kv.k, 8)
        relative_mse = np.mean((quantized.dequantize() - kv.k) ** 2) / np.var(kv.k)
        assert relative_mse < 5e-4

    def test_zero_channel_handled(self):
        tensor = np.zeros((1, 10, 3), dtype=np.float32)
        quantized = vectorwise_quantize(tensor, 8)
        np.testing.assert_array_equal(quantized.symbols, 0)
        np.testing.assert_array_equal(quantized.dequantize(), 0.0)

    @pytest.mark.parametrize("bits", [0, 1, 17])
    def test_invalid_bits(self, bits):
        with pytest.raises(ValueError):
            vectorwise_quantize(np.zeros((1, 2, 3)), bits)

    def test_metadata_bytes(self, rng):
        tensor = rng.normal(size=(4, 10, 6)).astype(np.float32)
        quantized = vectorwise_quantize(tensor, 8)
        assert quantized.metadata_bytes() == 2 * 4 * 6


class TestLayerBins:
    def test_three_equal_groups(self):
        bins = layer_bin_sizes(6, (0.5, 1.0, 1.5))
        np.testing.assert_allclose(bins, [0.5, 0.5, 1.0, 1.0, 1.5, 1.5])

    def test_uneven_split(self):
        bins = layer_bin_sizes(4, (0.5, 1.0, 1.5))
        assert bins[0] == 0.5 and bins[-1] == 1.5
        assert len(bins) == 4

    def test_single_group(self):
        np.testing.assert_allclose(layer_bin_sizes(5, (2.0,)), 2.0)

    def test_monotone_with_depth(self):
        bins = layer_bin_sizes(32, (0.5, 1.0, 1.5))
        assert np.all(np.diff(bins) >= 0)

    @pytest.mark.parametrize("layers,bins", [(0, (1.0,)), (4, ()), (4, (0.0, 1.0))])
    def test_invalid(self, layers, bins):
        with pytest.raises(ValueError):
            layer_bin_sizes(layers, bins)


class TestBinQuantize:
    def test_error_bounded_by_half_bin(self, rng):
        tensor = rng.normal(size=(3, 60, 5)).astype(np.float32)
        bins = layer_bin_sizes(3, (0.5, 1.0, 1.5))
        quantized = bin_quantize(tensor, bins)
        recovered = bin_dequantize(quantized)
        per_layer_step = quantized.scale[:, 0]
        for layer in range(3):
            assert np.max(np.abs(recovered[layer] - tensor[layer])) <= per_layer_step[layer] / 2 + 1e-6

    def test_larger_bins_more_error(self, rng):
        tensor = rng.normal(size=(2, 80, 6)).astype(np.float32)
        small = bin_quantize(tensor, np.full(2, 0.5)).dequantize()
        large = bin_quantize(tensor, np.full(2, 2.0)).dequantize()
        assert np.mean((large - tensor) ** 2) > np.mean((small - tensor) ** 2)

    def test_scale_is_per_layer(self, rng):
        tensor = rng.normal(size=(3, 40, 6)).astype(np.float32)
        quantized = bin_quantize(tensor, np.full(3, 1.0))
        assert quantized.scale.shape == (3, 1)

    def test_symbols_clipped(self, rng):
        tensor = (rng.normal(size=(1, 50, 4)) * 1e6).astype(np.float32)
        tensor[0, 0, 0] = 1e9
        quantized = bin_quantize(tensor, np.full(1, 0.001))
        assert quantized.symbols.max() <= SYMBOL_CLIP

    def test_reference_tensor_sets_scale(self, rng):
        tensor = rng.normal(size=(2, 30, 4)).astype(np.float32)
        reference = tensor * 3
        with_ref = bin_quantize(tensor, np.full(2, 1.0), reference=reference)
        without_ref = bin_quantize(tensor, np.full(2, 1.0))
        assert np.all(with_ref.scale > without_ref.scale)

    def test_wrong_bin_shape_rejected(self, rng):
        tensor = rng.normal(size=(3, 10, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            bin_quantize(tensor, np.full(2, 1.0))

    def test_scalar_bin_accepted(self, rng):
        tensor = rng.normal(size=(3, 10, 4)).astype(np.float32)
        quantized = bin_quantize(tensor, 1.0)
        assert quantized.symbols.shape == tensor.shape


@settings(max_examples=25, deadline=None)
@given(bits=st.integers(3, 10), seed=st.integers(0, 1000))
def test_vectorwise_error_bound_property(bits, seed):
    """Quantization error never exceeds half the per-channel step size."""
    rng = np.random.default_rng(seed)
    tensor = (rng.normal(size=(2, 30, 4)) * rng.uniform(0.1, 10)).astype(np.float32)
    quantized = vectorwise_quantize(tensor, bits)
    recovered = quantized.dequantize()
    assert np.all(np.abs(recovered - tensor) <= quantized.scale[:, None, :] / 2 + 1e-5)

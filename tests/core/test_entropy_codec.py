"""Tests for the entropy-codec backends (exact AC vs size estimate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entropy_codec import EntropyCodec
from repro.core.probability_model import SymbolProbabilityModel


@pytest.fixture(scope="module")
def small_symbols():
    rng = np.random.default_rng(7)
    return rng.integers(-4, 5, size=(2, 60, 3))


@pytest.fixture(scope="module")
def model(small_symbols):
    return SymbolProbabilityModel.fit(small_symbols)


class TestEstimatedBackend:
    def test_roundtrip_lossless(self, small_symbols, model):
        codec = EntropyCodec(model, exact=False)
        payload = codec.encode(small_symbols)
        np.testing.assert_array_equal(codec.decode(payload), small_symbols)

    def test_bits_match_cross_entropy(self, small_symbols, model):
        codec = EntropyCodec(model, exact=False)
        payload = codec.encode(small_symbols)
        assert payload.bits == pytest.approx(model.cross_entropy_bits(small_symbols))

    def test_symbols_stored_as_int16(self, small_symbols, model):
        payload = EntropyCodec(model, exact=False).encode(small_symbols)
        assert payload.symbols is not None
        assert payload.symbols.dtype == np.int16

    def test_rejects_non_3d(self, model):
        with pytest.raises(ValueError):
            EntropyCodec(model).encode(np.zeros((3, 4), dtype=int))


class TestExactBackend:
    def test_roundtrip_lossless(self, small_symbols, model):
        codec = EntropyCodec(model, exact=True)
        payload = codec.encode(small_symbols)
        assert payload.exact and payload.data is not None
        np.testing.assert_array_equal(codec.decode(payload), small_symbols)

    def test_exact_size_close_to_estimate(self, small_symbols, model):
        """The real AC bitstream should be within a few bytes of the estimate."""
        estimated = EntropyCodec(model, exact=False).encode(small_symbols)
        exact = EntropyCodec(model, exact=True).encode(small_symbols)
        assert abs(exact.bits - estimated.bits) < 64 + 0.02 * estimated.bits

    def test_missing_bitstream_rejected(self, small_symbols, model):
        codec = EntropyCodec(model, exact=True)
        payload = codec.encode(small_symbols)
        payload.data = None
        with pytest.raises(ValueError):
            codec.decode(payload)

    def test_missing_symbols_rejected(self, small_symbols, model):
        codec = EntropyCodec(model, exact=False)
        payload = codec.encode(small_symbols)
        payload.symbols = None
        with pytest.raises(ValueError):
            codec.decode(payload)


def test_num_bytes_property(small_symbols, model):
    payload = EntropyCodec(model).encode(small_symbols)
    assert payload.num_bytes == pytest.approx(payload.bits / 8.0)

"""Tests for change-based (anchor/delta) encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import (
    anchor_positions,
    compute_deltas,
    consecutive_delta_variance_ratio,
    delta_variance_ratio,
    reconstruct_from_deltas,
)


class TestAnchorPositions:
    @pytest.mark.parametrize(
        "tokens,group,expected",
        [(10, 10, [0]), (11, 10, [0, 10]), (25, 10, [0, 10, 20]), (5, 2, [0, 2, 4])],
    )
    def test_positions(self, tokens, group, expected):
        np.testing.assert_array_equal(anchor_positions(tokens, group), expected)

    @pytest.mark.parametrize("tokens,group", [(0, 10), (10, 0), (-1, 5)])
    def test_invalid(self, tokens, group):
        with pytest.raises(ValueError):
            anchor_positions(tokens, group)


class TestComputeDeltas:
    def test_anchor_values_extracted(self, rng):
        tensor = rng.normal(size=(3, 25, 4))
        decomposition = compute_deltas(tensor, group_size=10)
        np.testing.assert_array_equal(decomposition.anchors, tensor[:, [0, 10, 20], :])

    def test_delta_is_difference_to_anchor(self, rng):
        tensor = rng.normal(size=(2, 23, 5))
        decomposition = compute_deltas(tensor, group_size=10)
        np.testing.assert_allclose(
            decomposition.deltas[:, 13, :], tensor[:, 13, :] - tensor[:, 10, :], rtol=1e-6
        )

    def test_delta_zero_at_anchor_positions(self, rng):
        tensor = rng.normal(size=(2, 30, 4))
        decomposition = compute_deltas(tensor, group_size=10)
        np.testing.assert_allclose(decomposition.deltas[:, [0, 10, 20], :], 0.0)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            compute_deltas(np.zeros((5, 5)))

    def test_roundtrip_exact(self, rng):
        tensor = rng.normal(size=(3, 37, 6)).astype(np.float32)
        decomposition = compute_deltas(tensor, group_size=10)
        np.testing.assert_allclose(reconstruct_from_deltas(decomposition), tensor, atol=1e-6)

    def test_reconstruct_with_lossy_deltas_keeps_anchor_exact(self, rng):
        tensor = rng.normal(size=(2, 21, 4)).astype(np.float32)
        decomposition = compute_deltas(tensor, group_size=10)
        decomposition.deltas[:] += 0.5
        rebuilt = reconstruct_from_deltas(decomposition)
        np.testing.assert_allclose(rebuilt[:, [0, 10, 20], :], tensor[:, [0, 10, 20], :], atol=1e-6)


class TestVarianceRatios:
    def test_consecutive_ratio_matches_paper_range(self, kv):
        """Insight 1: consecutive-delta variance is 2.4-2.9x lower."""
        for tensor in (kv.k, kv.v):
            ratio = consecutive_delta_variance_ratio(tensor)
            assert 2.2 < ratio < 3.2

    def test_anchor_group_ratio_above_one(self, kv):
        """Anchor-group deltas must still be meaningfully smaller than originals."""
        assert delta_variance_ratio(kv.k) > 1.5
        assert delta_variance_ratio(kv.v) > 1.5

    def test_consecutive_requires_two_tokens(self):
        with pytest.raises(ValueError):
            consecutive_delta_variance_ratio(np.zeros((2, 1, 3)))

    def test_white_noise_has_ratio_below_one(self, rng):
        """Independent tokens: deltas have twice the variance of the values."""
        tensor = rng.normal(size=(2, 500, 8))
        assert consecutive_delta_variance_ratio(tensor) < 0.7


@settings(max_examples=25, deadline=None)
@given(
    layers=st.integers(1, 4),
    tokens=st.integers(1, 60),
    channels=st.integers(1, 6),
    group=st.integers(1, 16),
)
def test_delta_roundtrip_property(layers, tokens, channels, group):
    """compute_deltas followed by reconstruct_from_deltas is the identity."""
    rng = np.random.default_rng(layers * 7919 + tokens * 31 + channels)
    tensor = rng.normal(size=(layers, tokens, channels)).astype(np.float32)
    decomposition = compute_deltas(tensor, group_size=group)
    np.testing.assert_allclose(reconstruct_from_deltas(decomposition), tensor, atol=1e-5)

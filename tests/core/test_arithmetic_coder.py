"""Tests for the integer arithmetic coder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arithmetic_coder import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    decode_symbols,
    encode_symbols,
)


def uniform_cum(alphabet: int) -> np.ndarray:
    return np.arange(alphabet + 1, dtype=np.int64)


class TestRoundTrip:
    def test_simple_roundtrip(self):
        cum = np.array([0, 5, 9, 10])
        symbols = [0, 1, 2, 0, 0, 1]
        data = encode_symbols(symbols, cum)
        np.testing.assert_array_equal(decode_symbols(data, len(symbols), cum), symbols)

    def test_empty_sequence(self):
        cum = uniform_cum(4)
        data = encode_symbols([], cum)
        assert decode_symbols(data, 0, cum).size == 0

    def test_single_symbol(self):
        cum = np.array([0, 1, 100])
        data = encode_symbols([1], cum)
        np.testing.assert_array_equal(decode_symbols(data, 1, cum), [1])

    def test_long_skewed_sequence(self, rng):
        cum = np.array([0, 900, 950, 990, 1000])
        symbols = rng.choice(4, size=5000, p=[0.9, 0.05, 0.04, 0.01])
        data = encode_symbols(symbols, cum)
        np.testing.assert_array_equal(decode_symbols(data, len(symbols), cum), symbols)

    def test_per_context_tables(self, rng):
        cum = np.stack([np.array([0, 90, 95, 100]), np.array([0, 5, 10, 100])])
        contexts = rng.integers(0, 2, size=2000)
        symbols = np.where(contexts == 0, rng.choice(3, 2000, p=[0.9, 0.05, 0.05]),
                           rng.choice(3, 2000, p=[0.05, 0.05, 0.9]))
        data = encode_symbols(symbols, cum, contexts)
        np.testing.assert_array_equal(decode_symbols(data, len(symbols), cum, contexts), symbols)


class TestCompressionEfficiency:
    def test_skewed_data_compresses_below_fixed_width(self, rng):
        """Highly skewed symbols should take far fewer than 2 bits each."""
        cum = np.array([0, 960, 980, 990, 1000])
        symbols = rng.choice(4, size=8000, p=[0.96, 0.02, 0.01, 0.01])
        data = encode_symbols(symbols, cum)
        bits_per_symbol = len(data) * 8 / len(symbols)
        assert bits_per_symbol < 0.5

    def test_close_to_entropy(self, rng):
        probs = np.array([0.5, 0.25, 0.125, 0.125])
        entropy = -np.sum(probs * np.log2(probs))
        cum = np.concatenate([[0], np.cumsum((probs * 1000).astype(np.int64))])
        symbols = rng.choice(4, size=10_000, p=probs)
        data = encode_symbols(symbols, cum)
        bits_per_symbol = len(data) * 8 / len(symbols)
        assert bits_per_symbol < entropy * 1.05 + 0.01

    def test_uniform_data_near_log2(self, rng):
        cum = uniform_cum(16)
        symbols = rng.integers(0, 16, size=4000)
        data = encode_symbols(symbols, cum)
        assert len(data) * 8 / len(symbols) == pytest.approx(4.0, abs=0.1)


class TestValidation:
    def test_symbol_out_of_range(self):
        with pytest.raises(ValueError):
            encode_symbols([5], uniform_cum(4))

    def test_context_out_of_range(self):
        cum = np.stack([uniform_cum(4), uniform_cum(4)])
        with pytest.raises(ValueError):
            encode_symbols([0], cum, [3])

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            ArithmeticEncoder(np.array([0, 0, 5]))

    def test_nonzero_start_rejected(self):
        with pytest.raises(ValueError):
            ArithmeticEncoder(np.array([1, 2, 5]))

    def test_mismatched_context_length(self):
        with pytest.raises(ValueError):
            encode_symbols([0, 1], uniform_cum(4), [0])

    def test_decoder_context_length_mismatch(self):
        cum = uniform_cum(4)
        data = encode_symbols([0, 1], cum)
        with pytest.raises(ValueError):
            ArithmeticDecoder(cum).decode(data, 2, [0])


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    alphabet=st.integers(2, 12),
    length=st.integers(1, 400),
)
def test_roundtrip_property(seed, alphabet, length):
    """Encoding then decoding recovers any symbol sequence exactly."""
    rng = np.random.default_rng(seed)
    freqs = rng.integers(1, 50, size=alphabet)
    cum = np.concatenate([[0], np.cumsum(freqs)])
    symbols = rng.integers(0, alphabet, size=length)
    data = encode_symbols(symbols, cum)
    np.testing.assert_array_equal(decode_symbols(data, length, cum), symbols)

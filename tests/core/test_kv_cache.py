"""Tests for the KVCache data model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KVCache


def make_cache(layers=4, tokens=30, channels=8, full_layers=0, full_channels=0, seed=0):
    rng = np.random.default_rng(seed)
    return KVCache(
        k=rng.normal(size=(layers, tokens, channels)),
        v=rng.normal(size=(layers, tokens, channels)),
        model_name="test",
        full_layers=full_layers,
        full_channels=full_channels,
    )


class TestConstruction:
    def test_shape_properties(self):
        cache = make_cache(4, 30, 8)
        assert cache.num_layers == 4
        assert cache.num_tokens == 30
        assert cache.num_channels == 8
        assert cache.shape == (4, 30, 8)

    def test_dtype_is_float32(self):
        cache = make_cache()
        assert cache.k.dtype == np.float32
        assert cache.v.dtype == np.float32

    def test_mismatched_shapes_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="identical shapes"):
            KVCache(k=rng.normal(size=(2, 10, 4)), v=rng.normal(size=(2, 11, 4)))

    def test_non_3d_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="3-D"):
            KVCache(k=rng.normal(size=(10, 4)), v=rng.normal(size=(10, 4)))

    def test_full_dims_default_to_sim_dims(self):
        cache = make_cache(4, 30, 8)
        assert cache.full_layers == 4
        assert cache.full_channels == 8

    def test_full_dims_respected(self):
        cache = make_cache(4, 30, 8, full_layers=32, full_channels=1024)
        assert cache.full_layers == 32
        assert cache.full_channels == 1024


class TestSizes:
    def test_num_elements_counts_k_and_v(self):
        cache = make_cache(4, 30, 8)
        assert cache.num_elements == 2 * 4 * 30 * 8

    def test_nbytes_is_fp16(self):
        cache = make_cache(4, 30, 8)
        assert cache.nbytes == cache.num_elements * 2

    def test_full_nbytes_scales_with_full_dims(self):
        cache = make_cache(4, 30, 8, full_layers=8, full_channels=16)
        assert cache.full_num_elements == 2 * 8 * 30 * 16
        assert cache.full_nbytes == cache.full_num_elements * 2

    def test_scale_factor(self):
        cache = make_cache(4, 30, 8, full_layers=8, full_channels=16)
        assert cache.scale_factor == pytest.approx(4.0)

    def test_mistral_size_matches_paper(self, llm):
        """Mistral-7B at ~9.4K tokens should be ~1.2 GB fp16 (8-bit ~622 MB)."""
        from repro.llm import MISTRAL_7B

        bytes_fp16 = MISTRAL_7B.kv_cache_bytes(9_400, 16)
        assert 1.1e9 < bytes_fp16 < 1.35e9


class TestSlicing:
    def test_slice_tokens_shape(self):
        cache = make_cache(4, 30, 8)
        part = cache.slice_tokens(5, 15)
        assert part.num_tokens == 10
        np.testing.assert_array_equal(part.k, cache.k[:, 5:15, :])

    def test_slice_preserves_metadata(self):
        cache = make_cache(4, 30, 8, full_layers=8, full_channels=16)
        part = cache.slice_tokens(0, 10)
        assert part.full_layers == 8
        assert part.full_channels == 16
        assert part.model_name == "test"

    def test_slice_out_of_range(self):
        cache = make_cache(4, 30, 8)
        with pytest.raises(IndexError):
            cache.slice_tokens(0, 31)
        with pytest.raises(IndexError):
            cache.slice_tokens(-1, 10)

    @pytest.mark.parametrize("chunk_tokens,expected_chunks", [(10, 3), (7, 5), (30, 1), (100, 1)])
    def test_split_tokens_chunk_counts(self, chunk_tokens, expected_chunks):
        cache = make_cache(4, 30, 8)
        chunks = cache.split_tokens(chunk_tokens)
        assert len(chunks) == expected_chunks
        assert sum(c.num_tokens for c in chunks) == 30

    def test_split_tokens_invalid(self):
        with pytest.raises(ValueError):
            make_cache().split_tokens(0)

    def test_split_then_concat_roundtrip(self):
        cache = make_cache(4, 30, 8)
        rebuilt = KVCache.concat(cache.split_tokens(7))
        np.testing.assert_array_equal(rebuilt.k, cache.k)
        np.testing.assert_array_equal(rebuilt.v, cache.v)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            KVCache.concat([])

    def test_concat_incompatible_rejected(self):
        with pytest.raises(ValueError):
            KVCache.concat([make_cache(4, 10, 8), make_cache(3, 10, 8)])

    def test_copy_is_independent(self):
        cache = make_cache()
        dup = cache.copy()
        dup.k[0, 0, 0] += 100
        assert cache.k[0, 0, 0] != dup.k[0, 0, 0]


class TestErrors:
    def test_mse_zero_for_identical(self):
        cache = make_cache()
        np.testing.assert_allclose(cache.mse_per_layer(cache), 0.0)

    def test_mse_positive_for_noise(self):
        cache = make_cache()
        noisy = cache.copy()
        noisy.k += 0.1
        assert np.all(cache.mse_per_layer(noisy) > 0)

    def test_normalized_distortion_scale_invariant(self):
        cache = make_cache()
        noisy = cache.copy()
        noisy.k += 0.05 * cache.k.std()
        d1 = cache.normalized_distortion_per_layer(noisy)

        scaled = KVCache(cache.k * 10, cache.v * 10)
        noisy_scaled = KVCache(noisy.k * 10, noisy.v * 10)
        d2 = scaled.normalized_distortion_per_layer(noisy_scaled)
        np.testing.assert_allclose(d1, d2, rtol=1e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_cache(4, 30, 8).mse_per_layer(make_cache(4, 20, 8))


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(1, 6),
    tokens=st.integers(2, 40),
    channels=st.integers(1, 12),
    chunk=st.integers(1, 45),
)
def test_split_concat_property(layers, tokens, channels, chunk):
    """Splitting and concatenating along tokens is always the identity."""
    cache = make_cache(layers, tokens, channels, seed=layers * 1000 + tokens)
    rebuilt = KVCache.concat(cache.split_tokens(chunk))
    assert rebuilt.shape == cache.shape
    np.testing.assert_array_equal(rebuilt.k, cache.k)

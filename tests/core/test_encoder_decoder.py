"""Tests for the CacheGen encoder/decoder pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CacheGenConfig, CacheGenDecoder, CacheGenEncoder, KVCache


class TestFitAndValidation:
    def test_requires_fit_before_encode(self, kv, small_config):
        encoder = CacheGenEncoder(small_config)
        with pytest.raises(RuntimeError):
            encoder.encode(kv)

    def test_fit_requires_samples(self, small_config):
        with pytest.raises(ValueError):
            CacheGenEncoder(small_config).fit([])

    def test_fit_creates_models_per_level(self, encoder):
        assert set(encoder.level_models) == {level.name for level in encoder.config.levels}

    def test_is_fitted(self, encoder, small_config):
        assert encoder.is_fitted
        assert not CacheGenEncoder(small_config).is_fitted


class TestEncode:
    def test_encoded_metadata(self, encoder, kv):
        encoded = encoder.encode(kv)
        assert encoded.model_name == kv.model_name
        assert encoded.num_tokens == kv.num_tokens
        assert encoded.sim_shape == kv.shape
        assert encoded.level.name == encoder.config.default_level.name

    def test_compressed_smaller_than_8bit(self, encoder, kv):
        """CacheGen's default level beats 8-bit quantization by a wide margin."""
        encoded = encoder.encode(kv)
        eight_bit_bytes = kv.full_num_elements * 1.0
        assert encoded.compressed_bytes < eight_bit_bytes / 2

    def test_bits_per_element_reasonable(self, encoder, kv):
        encoded = encoder.encode(kv)
        assert 0.5 < encoded.bits_per_element < 6.0

    @pytest.mark.parametrize("level", ["high", "medium", "low", "lowest"])
    def test_encode_named_levels(self, encoder, kv, level):
        encoded = encoder.encode(kv, level)
        assert encoded.level.name == level

    def test_levels_ordered_by_size(self, encoder, kv):
        sizes = [encoder.encode(kv, level.name).compressed_bytes for level in encoder.config.levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_encode_all_levels(self, encoder, kv):
        encodings = encoder.encode_all_levels(kv)
        assert set(encodings) == {level.name for level in encoder.config.levels}

    def test_scale_factor_extrapolation(self, encoder, kv):
        encoded = encoder.encode(kv)
        assert encoded.compressed_bytes == pytest.approx(
            encoded.sim_compressed_bytes * kv.scale_factor
        )


class TestDecode:
    def test_decoded_shape_and_metadata(self, encoder, decoder, kv):
        decoded = decoder.decode(encoder.encode(kv))
        assert decoded.shape == kv.shape
        assert decoded.model_name == kv.model_name
        assert decoded.full_layers == kv.full_layers

    def test_decode_error_small_at_default_level(self, encoder, decoder, kv):
        decoded = decoder.decode(encoder.encode(kv))
        distortion = kv.normalized_distortion_per_layer(decoded)
        assert float(distortion.mean()) < 0.1

    def test_higher_level_less_distortion(self, encoder, decoder, kv):
        distortions = []
        for level in ("high", "medium", "low", "lowest"):
            decoded = decoder.decode(encoder.encode(kv, level))
            distortions.append(float(kv.normalized_distortion_per_layer(decoded).mean()))
        assert distortions == sorted(distortions)

    def test_anchor_tokens_high_precision(self, encoder, decoder, kv):
        """Anchor tokens are kept at 8-bit precision, so their error is tiny."""
        decoded = decoder.decode(encoder.encode(kv, "lowest"))
        positions = np.arange(0, kv.num_tokens, encoder.config.group_size)
        anchor_err = np.abs(decoded.k[:, positions, :] - kv.k[:, positions, :]).mean()
        other = np.ones(kv.num_tokens, dtype=bool)
        other[positions] = False
        other_err = np.abs(decoded.k[:, other, :] - kv.k[:, other, :]).mean()
        assert anchor_err < other_err

    def test_decode_many_concatenates(self, encoder, decoder, kv):
        chunks = kv.split_tokens(200)
        encoded = [encoder.encode(chunk) for chunk in chunks]
        decoded = decoder.decode_many(encoded)
        assert decoded.num_tokens == kv.num_tokens

    def test_decode_many_empty_rejected(self, decoder):
        with pytest.raises(ValueError):
            decoder.decode_many([])


class TestAblationSwitches:
    @pytest.fixture(scope="class")
    def variants(self, sample_caches, kv):
        def build(**kwargs):
            config = CacheGenConfig(chunk_tokens=256, **kwargs)
            encoder = CacheGenEncoder(config).fit(sample_caches)
            encoded = encoder.encode(kv)
            decoded = CacheGenDecoder(encoder).decode(encoded)
            return encoded, float(kv.normalized_distortion_per_layer(decoded).mean())

        return {
            "full": build(),
            "no_ac": build(use_arithmetic_coding=False),
            "no_delta": build(use_delta=False),
            "global_probs": build(probability_grouping="global"),
            "no_layerwise": build(use_layerwise_quant=False),
        }

    def test_arithmetic_coding_reduces_size(self, variants):
        assert variants["full"][0].compressed_bytes < variants["no_ac"][0].compressed_bytes

    def test_grouped_probabilities_reduce_size(self, variants):
        assert variants["full"][0].compressed_bytes < variants["global_probs"][0].compressed_bytes

    def test_delta_improves_quality(self, variants):
        """At the same level, change-based encoding yields lower distortion."""
        assert variants["full"][1] < variants["no_delta"][1]

    def test_layerwise_quant_shifts_loss_to_deep_layers(self, sample_caches, kv):
        config = CacheGenConfig(chunk_tokens=256)
        encoder = CacheGenEncoder(config).fit(sample_caches)
        decoded = CacheGenDecoder(encoder).decode(encoder.encode(kv))
        distortion = kv.normalized_distortion_per_layer(decoded)
        first_third = distortion[: kv.num_layers // 3].mean()
        last_third = distortion[-kv.num_layers // 3 :].mean()
        assert first_third < last_third


class TestExactBitstreams:
    def test_exact_roundtrip_small_cache(self, sample_caches):
        """With exact entropy coding the decoded cache matches the estimated path."""
        config = CacheGenConfig(chunk_tokens=64, exact_entropy_coding=True)
        encoder = CacheGenEncoder(config).fit([c.slice_tokens(0, 80) for c in sample_caches])
        decoder = CacheGenDecoder(encoder)
        small = sample_caches[0].slice_tokens(0, 60)
        encoded = encoder.encode(small)
        assert encoded.k_stream.delta_payload.exact
        decoded = decoder.decode(encoded)
        distortion = small.normalized_distortion_per_layer(decoded)
        assert float(distortion.mean()) < 0.1

"""Tests for the symbol probability models used by the entropy coder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.probability_model import ALPHABET_SIZE, SymbolProbabilityModel
from repro.core.quantization import SYMBOL_CLIP


def symbol_tensor(rng, layers=3, tokens=50, channels=4, spread=3):
    return rng.integers(-spread, spread + 1, size=(layers, tokens, channels))


class TestFit:
    @pytest.mark.parametrize(
        "grouping,expected_contexts",
        [("channel_layer", 12), ("layer", 3), ("channel", 4), ("token", 50), ("global", 1)],
    )
    def test_context_counts(self, rng, grouping, expected_contexts):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng), grouping=grouping)
        assert model.num_contexts == expected_contexts

    def test_probabilities_sum_to_one(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng))
        np.testing.assert_allclose(model.probabilities().sum(axis=1), 1.0)

    def test_fit_multiple_tensors(self, rng):
        tensors = [symbol_tensor(rng), symbol_tensor(rng)]
        model = SymbolProbabilityModel.fit(tensors)
        assert model.num_contexts == 12

    def test_out_of_range_symbols_rejected(self, rng):
        bad = np.full((1, 5, 2), SYMBOL_CLIP + 1)
        with pytest.raises(ValueError):
            SymbolProbabilityModel.fit(bad)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            SymbolProbabilityModel.fit([])

    def test_unknown_grouping_rejected(self, rng):
        with pytest.raises(ValueError):
            SymbolProbabilityModel.fit(symbol_tensor(rng), grouping="banana")


class TestScoring:
    def test_cross_entropy_positive(self, rng):
        data = symbol_tensor(rng)
        model = SymbolProbabilityModel.fit(data)
        assert model.cross_entropy_bits(data) > 0

    def test_bits_per_element_close_to_entropy(self, rng):
        data = symbol_tensor(rng, tokens=400)
        model = SymbolProbabilityModel.fit(data)
        bpe = model.bits_per_element(data)
        assert 0 < bpe < np.log2(ALPHABET_SIZE)

    def test_matched_model_beats_mismatched(self, rng):
        """Data drawn from concentrated distributions codes better under its own model."""
        concentrated = rng.integers(-1, 2, size=(2, 300, 4))
        spread = rng.integers(-40, 41, size=(2, 300, 4))
        model_concentrated = SymbolProbabilityModel.fit(concentrated)
        model_spread = SymbolProbabilityModel.fit(spread)
        assert model_concentrated.cross_entropy_bits(concentrated) < model_spread.cross_entropy_bits(
            spread
        )

    def test_channel_grouping_beats_global_on_heterogeneous_channels(self, rng):
        """Insight 3: per-channel models code heterogeneous channels better."""
        narrow = rng.integers(-1, 2, size=(1, 500, 2))
        wide = rng.integers(-30, 31, size=(1, 500, 2))
        data = np.concatenate([narrow, wide], axis=2)
        per_channel = SymbolProbabilityModel.fit(data, grouping="channel")
        global_model = SymbolProbabilityModel.fit(data, grouping="global")
        assert per_channel.cross_entropy_bits(data) < global_model.cross_entropy_bits(data)

    def test_context_count_mismatch_rejected(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng, channels=4))
        with pytest.raises(ValueError):
            model.cross_entropy_bits(symbol_tensor(rng, channels=5))

    def test_entropy_bits_per_symbol_nonnegative(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng))
        assert model.entropy_bits_per_symbol() >= 0


class TestCumulativeCounts:
    def test_shape_and_monotonicity(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng))
        cum = model.cumulative_counts()
        assert cum.shape == (model.num_contexts, ALPHABET_SIZE + 1)
        assert np.all(cum[:, 0] == 0)
        assert np.all(np.diff(cum, axis=1) >= 1)

    def test_total_bounded(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng))
        cum = model.cumulative_counts(quantize_total=1 << 16)
        assert cum[:, -1].max() <= (1 << 16) + ALPHABET_SIZE

    def test_too_small_total_rejected(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng))
        with pytest.raises(ValueError):
            model.cumulative_counts(quantize_total=10)

    def test_context_ids_shape_check(self, rng):
        model = SymbolProbabilityModel.fit(symbol_tensor(rng))
        ids = model.context_ids_for((3, 7, 4))
        assert ids.shape == (3, 7, 4)
        with pytest.raises(ValueError):
            model.context_ids_for((3, 7, 5))

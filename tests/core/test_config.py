"""Tests for codec configuration objects."""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_LEVELS, CacheGenConfig, EncodingLevel


class TestEncodingLevel:
    def test_defaults(self):
        level = EncodingLevel(name="x", delta_bins=(0.5, 1.0, 1.5))
        assert level.anchor_bits == 8

    @pytest.mark.parametrize("bins", [(), (0.0, 1.0), (-1.0,)])
    def test_invalid_bins(self, bins):
        with pytest.raises(ValueError):
            EncodingLevel(name="x", delta_bins=bins)

    @pytest.mark.parametrize("bits", [1, 17])
    def test_invalid_anchor_bits(self, bits):
        with pytest.raises(ValueError):
            EncodingLevel(name="x", delta_bins=(1.0,), anchor_bits=bits)

    def test_scaled(self):
        level = EncodingLevel(name="x", delta_bins=(0.5, 1.0))
        scaled = level.scaled(2.0)
        assert scaled.delta_bins == (1.0, 2.0)
        assert scaled.anchor_bits == level.anchor_bits

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            EncodingLevel(name="x", delta_bins=(1.0,)).scaled(0.0)

    def test_default_levels_ordered_high_to_low(self):
        sizes = [sum(level.delta_bins) for level in DEFAULT_LEVELS]
        assert sizes == sorted(sizes)


class TestCacheGenConfig:
    def test_paper_defaults(self):
        config = CacheGenConfig()
        assert config.group_size == 10
        assert config.chunk_tokens == 1500
        assert config.default_level.delta_bins == (0.5, 1.0, 1.5)
        assert config.use_delta and config.use_layerwise_quant and config.use_arithmetic_coding
        assert config.probability_grouping == "channel_layer"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_size": 0},
            {"chunk_tokens": 0},
            {"levels": ()},
            {"default_level_index": 10},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises((ValueError, IndexError)):
            CacheGenConfig(**kwargs)

    def test_duplicate_level_names_rejected(self):
        level = EncodingLevel(name="dup", delta_bins=(1.0,))
        with pytest.raises(ValueError):
            CacheGenConfig(levels=(level, level))

    def test_level_by_name(self):
        config = CacheGenConfig()
        assert config.level_by_name("medium").name == "medium"
        with pytest.raises(KeyError):
            config.level_by_name("nope")

    @pytest.mark.parametrize("ref,expected", [(0, 0), ("medium", 1), ("lowest", 3)])
    def test_level_index(self, ref, expected):
        assert CacheGenConfig().level_index(ref) == expected

    def test_level_index_object(self):
        config = CacheGenConfig()
        assert config.level_index(config.levels[2]) == 2

    def test_level_index_out_of_range(self):
        with pytest.raises(IndexError):
            CacheGenConfig().level_index(9)

    def test_replace(self):
        config = CacheGenConfig().replace(chunk_tokens=512, use_delta=False)
        assert config.chunk_tokens == 512
        assert not config.use_delta
        assert CacheGenConfig().chunk_tokens == 1500

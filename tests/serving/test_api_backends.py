"""The unified backends: one spec, three engines, one response schema."""

from __future__ import annotations

import warnings
from dataclasses import fields

import pytest

from repro.core import CacheGenConfig
from repro.serving import ContextLoadingEngine, ServeRequest, ServeResponse, ServingSpec
from repro.serving.api import build_backend, serve
from repro.serving.concurrent import ConcurrentEngine

BASE = ServingSpec(model="mistral-7b", chunk_tokens=256)
REQUESTS = [
    ServeRequest("api-doc", f"Question {i}?", arrival_s=0.05 * i, num_tokens=640)
    for i in range(3)
]


@pytest.fixture(scope="module")
def reports():
    """The same workload served through all three backends."""
    return {
        "single": serve(BASE, REQUESTS),
        "concurrent": serve(BASE.with_(concurrency=3), REQUESTS),
        "cluster": serve(
            BASE.with_(topology="cluster", num_nodes=2, replication=2, concurrency=3),
            REQUESTS,
        ),
    }


class TestEndToEnd:
    def test_every_backend_serves_every_request(self, reports):
        for report in reports.values():
            assert report.num_requests == len(REQUESTS)
            assert report.kv_served == len(REQUESTS)
            assert report.hard_failures == 0
            assert report.shed == 0

    def test_unified_response_schema(self, reports):
        """All three backends populate the exact same field set."""
        field_sets = {}
        for kind, report in reports.items():
            assert len(report.responses) == len(REQUESTS)
            for response in report.responses:
                assert isinstance(response, ServeResponse)
            field_sets[kind] = {
                f.name for f in fields(report.responses[0])
            }
        assert field_sets["single"] == field_sets["concurrent"] == field_sets["cluster"]
        # And the unified fields are really there, not just defaulted away.
        for report in reports.values():
            response = report.responses[0]
            assert response.used_kv_cache
            assert response.served_tier == "hot"
            assert response.ttft_s > 0
            assert response.finish_s >= response.arrival_s
            assert response.queueing_s >= 0.0

    def test_cluster_fields_populated_only_where_meaningful(self, reports):
        assert all(r.served_by is None for r in reports["single"].responses)
        assert all(r.served_by is not None for r in reports["cluster"].responses)

    def test_reports_share_one_shape(self, reports):
        for report in reports.values():
            assert report.ttft.count == len(REQUESTS)
            assert report.queueing is not None
            assert report.ingests == 1  # one context, ingested on first touch
            assert report.query_bytes > 0
            assert report.duration_s > 0
            assert report.throughput_rps > 0

    def test_report_formats_as_table(self, reports):
        for kind, report in reports.items():
            table = report.format_table()
            assert "requests" in table
            assert "TTFT" in table
            assert "arrivals" in table
        assert "node-0" in reports["cluster"].format_table()

    def test_report_ratio_properties(self, reports):
        report = reports["cluster"]
        assert report.hit_ratio == 1.0
        assert report.hot_hit_ratio == 1.0
        assert report.cold_hit_ratio == 0.0
        assert report.shed_ratio == 0.0
        assert report.bytes_moved == report.replication_bytes + report.query_bytes

    def test_upgrade_carries_legacy_fields(self, reports):
        from repro.serving.api import ServeResponse

        original = reports["cluster"].responses[0]
        upgraded = ServeResponse.upgrade(original, failed_over=True)
        assert upgraded.served_by == original.served_by
        assert upgraded.served_tier == original.served_tier
        # Exact == on purpose: upgrade() must copy the field bit-for-bit.
        assert upgraded.arrival_s == original.arrival_s  # simcheck: ignore[SIM004]
        assert upgraded.failed_over  # override wins

    def test_serve_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            serve(BASE)
        with pytest.raises(ValueError, match="exactly one"):
            serve(BASE, REQUESTS, workload=object())


class TestBackendKinds:
    def test_kind_override_checks_topology(self):
        with pytest.raises(ValueError, match="single topology"):
            build_backend(BASE.with_(topology="cluster", num_nodes=2), kind="single")
        with pytest.raises(ValueError, match="cluster backend"):
            build_backend(BASE, kind="cluster")
        with pytest.raises(ValueError, match="unknown backend kind"):
            build_backend(BASE, kind="serverless")


class TestDeprecationShims:
    """The legacy entry points warn — and build the same stack as the spec."""

    def test_api_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_backend(BASE)
            build_backend(BASE.with_(concurrency=2))
            build_backend(BASE.with_(topology="cluster", num_nodes=2, replication=2))

    def test_engine_shim_matches_single_backend(self):
        spec = BASE.with_(max_bytes_per_node=5e8, eviction_policy="lfu")
        backend = build_backend(spec)
        with pytest.warns(DeprecationWarning, match="ContextLoadingEngine"):
            legacy = ContextLoadingEngine(
                "mistral-7b",
                config=CacheGenConfig(chunk_tokens=256),
                store_max_bytes=5e8,
                store_eviction_policy="lfu",
            )
        assert backend.engine.config == legacy.config
        assert backend.engine.store.max_bytes == legacy.store.max_bytes
        assert type(backend.engine.store.eviction_policy) is type(
            legacy.store.eviction_policy
        )
        assert backend.engine.model.name == legacy.model.name

    def test_concurrent_shim_matches_concurrent_backend(self):
        spec = BASE.with_(concurrency=4, max_decode_batch=8, admission_limit=2)
        backend = build_backend(spec)
        with pytest.warns(DeprecationWarning, match="ConcurrentEngine"):
            legacy = ConcurrentEngine(
                backend.engine, max_decode_batch=8, admission_limit=2
            )
        built = backend._concurrent
        assert built.max_decode_batch == legacy.max_decode_batch
        assert built.batch_overhead == legacy.batch_overhead
        assert built.admission_limit == legacy.admission_limit
        assert built.engine is legacy.engine

    def test_cluster_shim_matches_cluster_backend(self):
        from repro.cluster import ClusterFrontend

        spec = BASE.with_(
            topology="tiered",
            num_nodes=3,
            replication=2,
            max_bytes_per_node=2e8,
            cold_bytes_per_node=8e8,
            eviction_policy="lfu",
        )
        backend = build_backend(spec)
        with pytest.warns(DeprecationWarning, match="ClusterFrontend"):
            legacy = ClusterFrontend(
                "mistral-7b",
                node_links=3,
                replication_factor=2,
                max_bytes_per_node=2e8,
                cold_bytes_per_node=8e8,
                eviction_policy="lfu",
                config=CacheGenConfig(chunk_tokens=256),
            )
        built = backend.frontend
        assert set(built.nodes) == set(legacy.nodes)
        assert (
            built.cluster.replication_factor == legacy.cluster.replication_factor == 2
        )
        for node_id in built.nodes:
            ours, theirs = built.nodes[node_id].store, legacy.nodes[node_id].store
            assert type(ours) is type(theirs)
            assert ours.hot.max_bytes == theirs.hot.max_bytes == 2e8
            assert ours.cold.max_bytes == theirs.cold.max_bytes == 8e8
        assert built.config == legacy.config

    def test_legacy_subclasses_are_serve_responses(self):
        from repro.cluster.frontend import ClusterQueryResponse
        from repro.serving.concurrent import ConcurrentQueryResponse

        assert issubclass(ClusterQueryResponse, ServeResponse)
        assert issubclass(ConcurrentQueryResponse, ServeResponse)
        assert {f.name for f in fields(ClusterQueryResponse)} == {
            f.name for f in fields(ConcurrentQueryResponse)
        } == {f.name for f in fields(ServeResponse)}

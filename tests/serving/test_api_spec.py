"""ServingSpec: construction-time validation and backend derivation."""

from __future__ import annotations

import pytest

from repro.core import CacheGenConfig
from repro.serving.api import ServingSpec


class TestValidation:
    def test_defaults_construct(self):
        spec = ServingSpec()
        assert spec.topology == "single"
        assert spec.backend_kind == "single"

    def test_replication_above_node_count_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            ServingSpec(topology="cluster", num_nodes=2, replication=3)

    def test_cold_tier_without_bounded_hot_tier_rejected(self):
        with pytest.raises(ValueError, match="bounded hot tier"):
            ServingSpec(
                topology="tiered", num_nodes=2, replication=2,
                cold_bytes_per_node=1e9,
            )

    def test_tiered_topology_requires_cold_tier(self):
        with pytest.raises(ValueError, match="cold tier"):
            ServingSpec(
                topology="tiered", num_nodes=2, replication=2,
                max_bytes_per_node=1e8,
            )

    def test_admission_limit_must_be_positive(self):
        for bad in (0, -4):
            with pytest.raises(ValueError, match="admission_limit"):
                ServingSpec(admission_limit=bad)

    def test_unknown_eviction_policy_rejected(self):
        with pytest.raises(ValueError, match="eviction policy"):
            ServingSpec(eviction_policy="mru")

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            ServingSpec(placement="random")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            ServingSpec(topology="mesh")

    def test_single_topology_is_one_node_one_replica(self):
        with pytest.raises(ValueError, match="single topology"):
            ServingSpec(topology="single", num_nodes=3, replication=3)

    def test_single_topology_has_no_tier(self):
        with pytest.raises(ValueError, match="tier"):
            ServingSpec(
                topology="single", max_bytes_per_node=1e8, cold_bytes_per_node=1e9
            )

    def test_concurrency_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="concurrency"):
            ServingSpec(concurrency=0)

    def test_node_bandwidths_must_match_node_count(self):
        with pytest.raises(ValueError, match="one speed per node"):
            ServingSpec(
                topology="cluster", num_nodes=3, replication=2,
                node_bandwidths_gbps=(3.0, 1.0),
            )

    def test_slo_must_be_positive(self):
        with pytest.raises(ValueError, match="slo_s"):
            ServingSpec(slo_s=0.0)

    def test_unknown_encoding_level_rejected(self):
        with pytest.raises(ValueError, match="encoding level"):
            ServingSpec(levels=("medium", "ultra"))

    def test_unknown_default_level_rejected(self):
        with pytest.raises(ValueError, match="default level"):
            ServingSpec(default_level="ultra")


class TestCodecResolution:
    def test_chunk_tokens_applied(self):
        assert ServingSpec(chunk_tokens=256).resolved_config().chunk_tokens == 256

    def test_level_subset_preserved_in_order(self):
        config = ServingSpec(levels=("high", "low")).resolved_config()
        assert [level.name for level in config.levels] == ["high", "low"]
        # The paper default ("medium") is gone; the subset's first level rules.
        assert config.default_level.name == "high"

    def test_default_level_applied(self):
        config = ServingSpec(default_level="low").resolved_config()
        assert config.default_level.name == "low"

    def test_full_config_passthrough(self):
        base = CacheGenConfig(chunk_tokens=512, group_size=5)
        config = ServingSpec(config=base, chunk_tokens=256).resolved_config()
        assert config.chunk_tokens == 256
        assert config.group_size == 5


class TestBackendKind:
    def test_single_sequential(self):
        assert ServingSpec(concurrency=1).backend_kind == "single"

    def test_single_concurrent(self):
        assert ServingSpec(concurrency=4).backend_kind == "concurrent"

    def test_cluster_topologies(self):
        cluster = ServingSpec(topology="cluster", num_nodes=2, replication=2)
        tiered = ServingSpec(
            topology="tiered", num_nodes=2, replication=2,
            max_bytes_per_node=1e8, cold_bytes_per_node=1e9,
        )
        assert cluster.backend_kind == "cluster"
        assert tiered.backend_kind == "cluster"

    def test_with_derives_modified_copy(self):
        spec = ServingSpec()
        other = spec.with_(concurrency=8)
        assert spec.concurrency == 1
        assert other.concurrency == 8
        assert other.backend_kind == "concurrent"

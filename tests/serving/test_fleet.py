"""Tests for multi-GPU fleet serving: dispatch policies, the worker pool,
the autoscaler, and the fleet-level Figure 12 sweep.

The load-bearing guarantees pinned here:

* dispatch is deterministic — equal loads tie-break to the lowest worker
  index, and a replayed task stream routes identically;
* locality dispatch co-batches same-key decodes on one worker, beating a
  spread that splits the batching domain;
* sticky sessions survive a scale-down: the binding is forgotten with the
  retired worker and transparently re-pinned on the session's next task;
* a pool of one worker is event-for-event identical to the bare scheduler,
  and ``gpu_workers=1`` reproduces the historical Figure 12 curve exactly;
* more workers strictly reduce queueing delay at high load;
* a flash crowd triggers a scale-up that restores SLO attainment, and the
  whole episode is visible in telemetry (pool-size track, dashboard lane).
"""

from __future__ import annotations

import pytest

from repro.network import ConstantTrace, NetworkLink, gbps
from repro.serving import (
    AutoscaleSpec,
    LeastLoadedDispatch,
    LocalityDispatch,
    StickyDispatch,
    make_dispatch,
)
from repro.serving.api import ServeRequest, ServingSpec, build_backend
from repro.serving.concurrent import (
    ConcurrentLoadSimulator,
    DECODE,
    GpuScheduler,
    GpuTask,
    LoadStage,
    PREFILL,
    SimClock,
    StaticLoad,
)
from repro.serving.fleet import GpuWorkerPool
from repro.serving.fleet.pool import POOL_TRACK
from repro.telemetry import TimeSeriesRecorder, Tracer, render_dashboard


def _task(request_id: int, **kwargs) -> GpuTask:
    kwargs.setdefault("kind", DECODE)
    kwargs.setdefault("duration_s", 0.05)
    kwargs.setdefault("on_complete", lambda *a: None)
    return GpuTask(request_id=request_id, **kwargs)


def _link(gbps_rate: float = 10.0) -> NetworkLink:
    return NetworkLink(ConstantTrace(gbps(gbps_rate)))


# ------------------------------------------------------------------ dispatch
class TestDispatchPolicies:
    def test_least_loaded_tie_breaks_to_lowest_index(self):
        clock = SimClock()
        workers = [GpuScheduler(clock) for _ in range(3)]
        policy = LeastLoadedDispatch()
        # All idle: deterministic tie-break to index 0.
        assert policy.pick(_task(0), workers) == 0
        # Load worker 0; the shallower queues win, lowest index first.
        workers[0].submit(_task(1, kind=PREFILL))
        assert policy.pick(_task(2), workers) == 1
        workers[1].submit(_task(3, kind=PREFILL))
        assert policy.pick(_task(4), workers) == 2

    def test_replayed_stream_routes_identically(self):
        def route(n: int) -> list[str]:
            clock = SimClock()
            pool = GpuWorkerPool(clock, num_workers=3)
            return [pool.submit(_task(i, batch_key=f"node-{i % 2}")).track for i in range(n)]

        assert route(12) == route(12)

    def test_locality_pins_batch_key_to_one_worker(self):
        clock = SimClock()
        workers = [GpuScheduler(clock) for _ in range(3)]
        policy = LocalityDispatch()
        first = policy.pick(_task(0, batch_key="node-0"), workers)
        # Load every other worker heavily: the binding still wins.
        for worker in workers:
            worker.submit(_task(9, kind=PREFILL))
        assert policy.pick(_task(1, batch_key="node-0"), workers) == first

    def test_keyless_tasks_fall_back_to_least_loaded(self):
        clock = SimClock()
        workers = [GpuScheduler(clock) for _ in range(2)]
        policy = LocalityDispatch()
        workers[0].submit(_task(0, kind=PREFILL))
        assert policy.pick(_task(1, batch_key=None), workers) == 1

    def test_sticky_routes_by_session_over_batch_key(self):
        clock = SimClock()
        workers = [GpuScheduler(clock) for _ in range(2)]
        policy = StickyDispatch()
        bound = policy.pick(_task(0, session_key="chat-1", batch_key="node-0"), workers)
        # Same session, different batch key: still the bound worker.
        assert (
            policy.pick(_task(1, session_key="chat-1", batch_key="node-1"), workers)
            == bound
        )

    def test_sticky_sessions_survive_forget_worker(self):
        clock = SimClock()
        workers = [GpuScheduler(clock) for _ in range(2)]
        policy = StickyDispatch()
        # Pin the session on worker 1 by loading worker 0 first.
        workers[0].submit(_task(0, kind=PREFILL))
        assert policy.pick(_task(1, session_key="chat-1"), workers) == 1
        # Worker 1 is retired: the binding is forgotten, the session re-pins
        # on its next task to a live worker and sticks there.
        retired = workers.pop(1)
        policy.forget_worker(retired)
        repinned = policy.pick(_task(2, session_key="chat-1"), workers)
        assert repinned == 0
        assert policy.pick(_task(3, session_key="chat-1"), workers) == repinned

    def test_make_dispatch(self):
        assert isinstance(make_dispatch("least-loaded"), LeastLoadedDispatch)
        assert isinstance(make_dispatch("locality"), LocalityDispatch)
        assert isinstance(make_dispatch("sticky"), StickyDispatch)
        policy = StickyDispatch()
        assert make_dispatch(policy) is policy
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            make_dispatch("round-robin")


# ----------------------------------------------------------- locality batching
class TestLocalityCoBatching:
    @staticmethod
    def _run(dispatch) -> tuple[float, int]:
        """8 decodes of key A then 8 of key B on a two-worker pool."""
        clock = SimClock()
        pool = GpuWorkerPool(clock, num_workers=2, dispatch=dispatch)
        finish: dict[int, float] = {}
        for i in range(16):
            key = "ctx-a" if i < 8 else "ctx-b"
            pool.submit(
                _task(
                    i,
                    batch_key=key,
                    on_complete=lambda f, b, w, i=i: finish.__setitem__(i, f),
                )
            )
        clock.run()
        return max(finish.values()), pool.batches_run

    def test_batched_beats_spread(self):
        # Locality keeps each batching domain whole on one worker: one launch
        # of 8 per worker.  Least-loaded spreads each domain over both
        # workers, so every worker pays two half-size launches back to back.
        local_makespan, local_batches = self._run("locality")
        spread_makespan, spread_batches = self._run("least-loaded")
        assert local_makespan < spread_makespan
        assert local_batches < spread_batches
        # Exact schedules: 0.05 + 0.2 * 7*0.05 batched-8 vs two batched-4.
        assert local_makespan == pytest.approx(0.12)
        assert spread_makespan == pytest.approx(0.16)
        assert (local_batches, spread_batches) == (2, 4)


# ----------------------------------------------------------------------- pool
class TestGpuWorkerPool:
    def test_num_workers_validated(self):
        with pytest.raises(ValueError):
            GpuWorkerPool(SimClock(), num_workers=0)

    def test_queue_depth_aggregates_over_workers(self):
        clock = SimClock()
        pool = GpuWorkerPool(clock, num_workers=2)
        for i in range(3):
            pool.submit(_task(i, kind=PREFILL))
        assert pool.queue_depth == 3
        clock.run()
        assert pool.queue_depth == 0
        assert pool.tasks_run == 3

    @staticmethod
    def _stage_requests(sim: ConcurrentLoadSimulator) -> None:
        link = _link(1.0)
        for i in range(6):
            sim.add_request(
                0.1 * i,
                link,
                StaticLoad(
                    [
                        LoadStage(
                            config="quant",
                            num_bytes=5e6,
                            gpu_kind=DECODE,
                            gpu_s=0.05,
                            batch_key="node-0",
                        ),
                        LoadStage(config="prompt", gpu_kind=PREFILL, gpu_s=0.02),
                    ]
                ),
            )

    def test_pool_of_one_is_bit_compatible_with_bare_scheduler(self):
        bare = ConcurrentLoadSimulator()
        self._stage_requests(bare)
        bare_timelines = bare.run()
        assert bare.pool is None  # defaults take the single-scheduler path

        # A policy *instance* forces the pool even for one worker.
        pooled = ConcurrentLoadSimulator(dispatch_policy=LeastLoadedDispatch())
        self._stage_requests(pooled)
        pooled_timelines = pooled.run()
        assert pooled.pool is not None

        # Exact == on purpose: pool-of-1 must be *bit-identical* to the bare
        # scheduler path, not merely close.
        for a, b in zip(bare_timelines, pooled_timelines):
            assert a.finish_s == b.finish_s  # simcheck: ignore[SIM004]
            assert a.total_s == b.total_s  # simcheck: ignore[SIM004]
            assert a.queueing_s == b.queueing_s  # simcheck: ignore[SIM004]
            assert a.transfer_s == b.transfer_s  # simcheck: ignore[SIM004]
            assert a.compute_s == b.compute_s  # simcheck: ignore[SIM004]
        # The aggregate counters mirror the bare scheduler's exactly.
        assert pooled.gpu.total_busy_s == bare.gpu.total_busy_s  # simcheck: ignore[SIM004]
        assert pooled.gpu.total_wait_s == bare.gpu.total_wait_s  # simcheck: ignore[SIM004]
        assert pooled.gpu.tasks_run == bare.gpu.tasks_run
        assert pooled.gpu.batches_run == bare.gpu.batches_run

    def test_more_workers_strictly_reduce_queueing_at_high_load(self):
        def mean_queueing(gpu_workers: int) -> float:
            sim = ConcurrentLoadSimulator(gpu_workers=gpu_workers)
            link = _link(10.0)
            for i in range(12):
                sim.add_request(
                    0.0,
                    link,
                    StaticLoad(
                        [LoadStage(config="prompt", gpu_kind=PREFILL, gpu_s=0.1)]
                    ),
                )
            timelines = sim.run()
            return sum(t.queueing_s for t in timelines) / len(timelines)

        assert mean_queueing(4) < mean_queueing(1)


# ----------------------------------------------------------------- autoscaler
class TestAutoscaleSpec:
    def test_defaults_valid_and_clamp(self):
        spec = AutoscaleSpec(min_workers=2, max_workers=4)
        assert spec.clamp(1) == 2
        assert spec.clamp(3) == 3
        assert spec.clamp(9) == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_workers": 0},
            {"min_workers": 4, "max_workers": 2},
            {"high_queue_depth": 0.0},
            {"idle_s": 0.0},
            {"warmup_s": -0.1},
            {"window_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleSpec(**kwargs)


class TestAutoscaler:
    SPEC = AutoscaleSpec(
        min_workers=1, max_workers=4, high_queue_depth=3.0, warmup_s=0.1, idle_s=0.5
    )

    def _burst_pool(self) -> tuple[SimClock, GpuWorkerPool]:
        clock = SimClock()
        pool = GpuWorkerPool(clock, num_workers=1, autoscale=self.SPEC)
        for i in range(10):
            pool.submit(_task(i, kind=PREFILL, duration_s=0.2))
        return clock, pool

    def test_scale_up_on_queue_buildup_after_warmup(self):
        clock, pool = self._burst_pool()
        assert pool.size == 1  # decision made, worker not online yet
        kinds = [kind for _, kind, _ in pool.scale_events]
        assert "scale-up" in kinds
        clock.run()
        kinds = [kind for _, kind, _ in pool.scale_events]
        assert "worker online" in kinds
        online_at = min(at for at, kind, _ in pool.scale_events if kind == "worker online")
        assert online_at == pytest.approx(self.SPEC.warmup_s)

    def test_scale_down_after_sustained_idle(self):
        clock, pool = self._burst_pool()
        clock.run()
        # The burst drained long ago; sustained idle retired the extras.
        assert pool.size == self.SPEC.min_workers
        downs = [at for at, kind, _ in pool.scale_events if kind == "scale-down"]
        assert downs
        # Retirement waits out the idle horizon after the last completion.
        last_up = max(at for at, kind, _ in pool.scale_events if kind == "worker online")
        assert min(downs) >= last_up + 0.0
        assert pool.tasks_run == 10  # retired workers keep their stats counted

    def test_sticky_sessions_survive_scale_down(self):
        spec = AutoscaleSpec(min_workers=1, max_workers=2, idle_s=0.2, warmup_s=0.0)
        clock = SimClock()
        pool = GpuWorkerPool(clock, num_workers=2, dispatch="sticky", autoscale=spec)
        # Pin the session on worker 1 (worker 0 is made busier first).
        pool.submit(_task(0, kind=PREFILL, duration_s=0.3))
        bound = pool.submit(_task(1, kind=PREFILL, duration_s=0.1, session_key="chat-1"))
        assert bound.track == "gpu:worker-1"

        routed: list[str] = []

        def late_submit() -> None:
            # Long after the idle scale-down retired worker 1: the session
            # must transparently re-pin to a live worker and stick to it.
            assert pool.size == 1
            for i in (2, 3):
                routed.append(
                    pool.submit(_task(i, duration_s=0.01, session_key="chat-1")).track
                )

        clock.schedule(5.0, late_submit)
        clock.run()
        assert ("scale-down" in [kind for _, kind, _ in pool.scale_events])
        assert routed == ["gpu:worker-0", "gpu:worker-0"]


# ------------------------------------------------------------ flash crowd SLO
class TestFlashCrowd:
    SLO_S = 0.5

    @staticmethod
    def _run(autoscale: AutoscaleSpec | None, tracer: Tracer | None = None):
        sim = ConcurrentLoadSimulator(
            gpu_workers=1, autoscale=autoscale, tracer=tracer
        )
        link = _link(10.0)
        for i in range(20):
            sim.add_request(
                0.01 * i,
                link,
                StaticLoad([LoadStage(config="prompt", gpu_kind=PREFILL, gpu_s=0.1)]),
            )
        return sim, sim.run()

    def test_scale_up_restores_slo_attainment(self):
        autoscale = AutoscaleSpec(
            min_workers=1, max_workers=4, high_queue_depth=2.0, warmup_s=0.05, idle_s=1.0
        )
        tracer = Tracer()
        scaled_sim, scaled = self._run(autoscale, tracer)
        _, fixed = self._run(None)

        def attainment(timelines) -> float:
            return sum(t.total_s <= self.SLO_S for t in timelines) / len(timelines)

        assert any(kind == "scale-up" for _, kind, _ in scaled_sim.pool.scale_events)
        assert attainment(scaled) > attainment(fixed)
        assert sum(t.queueing_s for t in scaled) < sum(t.queueing_s for t in fixed)

        # The episode is visible end to end in telemetry: pool-size samples,
        # scale instants, and a pool lane on the rendered dashboard.
        assert any(
            s.name == "pool_size" and s.track == POOL_TRACK for s in tracer.samples
        )
        assert any(i.name == "scale-up" for i in tracer.instants)
        recorder = TimeSeriesRecorder.from_tracer(tracer, window_s=0.1)
        sizes = [w.pool_size for w in recorder.windows() if w.pool_size is not None]
        assert sizes and max(sizes) > 1
        # Pool-size samples are their own series, not a queue-depth lane.
        assert all(
            POOL_TRACK not in window.max_queue_depth for window in recorder.windows()
        )
        html = render_dashboard(recorder)
        assert "GPU pool size" in html
        assert "data-pool-peak" in html


# -------------------------------------------------------------- spec plumbing
class TestFleetSpec:
    def test_gpu_workers_validated(self):
        with pytest.raises(ValueError, match="gpu_workers"):
            ServingSpec(concurrency=4, gpu_workers=0)

    def test_dispatch_policy_validated(self):
        with pytest.raises(ValueError, match="dispatch policy"):
            ServingSpec(concurrency=4, dispatch_policy="round-robin")

    def test_fleet_requires_concurrency(self):
        with pytest.raises(ValueError, match="concurrency > 1"):
            ServingSpec(concurrency=1, gpu_workers=2)

    def test_autoscale_bounds_must_contain_gpu_workers(self):
        with pytest.raises(ValueError, match="autoscale bounds"):
            ServingSpec(
                concurrency=4,
                gpu_workers=8,
                autoscale=AutoscaleSpec(min_workers=1, max_workers=4),
            )

    def test_backend_runs_a_fleet_with_sticky_sessions(self):
        spec = ServingSpec(concurrency=4, gpu_workers=2, dispatch_policy="sticky")
        backend = build_backend(spec, kind="concurrent")
        backend.ingest("ctx", 1_200)
        for i in range(4):
            backend.submit(
                ServeRequest(
                    "ctx",
                    "question?",
                    arrival_s=0.0,
                    num_tokens=1_200,
                    session_id=f"chat-{i % 2}",
                )
            )
        responses = backend.run()
        assert len(responses) == 4
        assert all(r.ttft_s > 0 for r in responses)
        sim = backend._concurrent.last_sim
        assert sim is not None and sim.pool is not None
        assert sim.pool.size == 2


# ------------------------------------------------------------------- figure 12
class TestFigure12Fleet:
    LEVELS = (1, 6)
    TOKENS = 1_600

    @classmethod
    def _run(cls, **kwargs):
        from repro.experiments.figure12 import run_figure12_concurrency

        return run_figure12_concurrency(
            concurrency_levels=cls.LEVELS, num_tokens=cls.TOKENS, **kwargs
        )

    def test_one_worker_reproduces_single_scheduler_curve(self):
        assert self._run().rows == self._run(gpu_workers=1).rows

    def test_fleet_strictly_reduces_queueing_at_high_load(self):
        single = self._run()
        fleet = self._run(gpu_workers=4)
        assert fleet.metadata["gpu_workers"] == 4
        n = max(self.LEVELS)
        queue_1 = single.filter(concurrent_requests=n, method="text")[0]["queueing_s"]
        queue_4 = fleet.filter(concurrent_requests=n, method="text")[0]["queueing_s"]
        assert queue_4 < queue_1

    def test_cli_rejects_gpu_workers_on_unsupported_experiment(self):
        from repro.experiments.common import experiment_cli

        with pytest.raises(SystemExit):
            experiment_cli(["figure12-context-length", "--gpu-workers", "2"])

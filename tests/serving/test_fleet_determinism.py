"""Fleet-dispatch determinism regression: a replayed run is byte-identical.

The fleet layer routes GPU work through dispatch policies whose state
(session bindings, locality pins, autoscaler history) could easily leak
iteration-order or wall-clock nondeterminism into the simulation.  This
pins the strongest observable guarantee: serving the same spec and the same
request stream twice produces byte-for-byte identical Chrome-trace exports —
every span, timestamp, and counter sample, not just the headline metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import AutoscaleSpec
from repro.serving.api import ServeRequest, ServingSpec, serve
from repro.telemetry import Tracer, to_chrome_trace


def fleet_requests() -> list[ServeRequest]:
    """Two chat sessions and a drive-by, contending for two contexts."""
    requests = []
    for i in range(8):
        requests.append(
            ServeRequest(
                f"fleet-doc-{i % 2}",
                f"Q{i}?",
                arrival_s=0.02 * i,
                num_tokens=640,
                session_id=f"chat-{i % 3}" if i % 3 else None,
            )
        )
    return requests


def run_traced(spec: ServingSpec) -> dict:
    tracer = Tracer()
    report = serve(spec, fleet_requests(), tracer=tracer)
    assert report.hard_failures == 0
    return to_chrome_trace(tracer)


@pytest.mark.parametrize(
    "spec",
    [
        ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            concurrency=4,
            gpu_workers=2,
            dispatch_policy="sticky",
        ),
        ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            concurrency=4,
            gpu_workers=2,
            dispatch_policy="locality",
        ),
        ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            concurrency=6,
            gpu_workers=2,
            dispatch_policy="least-loaded",
            autoscale=AutoscaleSpec(min_workers=1, max_workers=4),
        ),
    ],
    ids=["sticky", "locality", "autoscaled"],
)
def test_replayed_fleet_run_exports_byte_identical_trace(spec):
    first = json.dumps(run_traced(spec), sort_keys=True)
    second = json.dumps(run_traced(spec), sort_keys=True)
    assert first == second


def test_distinct_seeds_still_converge_when_spec_is_deterministic():
    """The fleet path has no RNG of its own: runs differ only through the
    request stream, so replaying a *permuted but equivalent* stream yields
    the same aggregate digest even though trace layout may differ."""
    from repro.simcheck.race import run_report_digest

    spec = ServingSpec(
        model="mistral-7b",
        chunk_tokens=256,
        concurrency=4,
        gpu_workers=2,
        dispatch_policy="sticky",
    )
    baseline = run_report_digest(serve(spec, fleet_requests()))
    replay = run_report_digest(serve(spec, fleet_requests()))
    assert baseline == replay

"""``report.timeseries`` / ``report.alerts``: consistency and the failure story."""

from __future__ import annotations

import pytest

from repro.serving.api import (
    Driver,
    ServeRequest,
    ServingSpec,
    TokenBucketAdmission,
    build_backend,
    serve,
)
from repro.telemetry import SLOObjective, render_dashboard

SPEC = ServingSpec(model="mistral-7b", chunk_tokens=256)


def make_requests(n=16, rate=5.0, context="ctx"):
    return [
        ServeRequest(context, f"q{i}", arrival_s=i / rate, num_tokens=800)
        for i in range(n)
    ]


class TestRunReportConsistency:
    """The windowed series must recombine to exactly the RunReport numbers."""

    @pytest.fixture(scope="class")
    def report(self):
        return serve(SPEC, make_requests(), window_s=1e6)

    def test_single_window_counts_match_the_report(self, report):
        (window,) = report.timeseries.windows()
        assert window.served == len(report.responses)
        assert window.kv_served == report.kv_served
        assert window.text_served == report.text_served
        assert window.shed == report.shed
        assert window.arrivals == report.num_requests
        assert window.hit_ratio == report.hit_ratio

    def test_single_window_percentiles_are_bit_exact(self, report):
        totals = report.timeseries.totals()
        assert totals["ttft_p50_s"] == report.ttft.p50_s
        assert totals["ttft_p95_s"] == report.ttft.p95_s
        assert totals["ttft_p99_s"] == report.ttft.p99_s
        assert totals["ttft_mean_s"] == report.ttft.mean_s
        assert totals["ttft_max_s"] == report.ttft.max_s
        assert totals["hit_ratio"] == report.hit_ratio

    def test_multi_window_sums_match_the_report(self, report):
        split = serve(SPEC, make_requests(), window_s=0.5)
        windows = split.timeseries.windows()
        assert len(windows) > 1
        assert sum(w.served for w in windows) == len(split.responses)
        assert sum(w.kv_served for w in windows) == split.kv_served
        assert sum(w.shed for w in windows) == split.shed
        assert sum(w.arrivals for w in windows) == split.num_requests
        # Same run, different windowing: identical recombined totals.
        assert split.timeseries.totals() == report.timeseries.totals()

    def test_shed_arrivals_are_windowed_too(self):
        report = serve(
            SPEC,
            make_requests(n=12, rate=20.0),
            admission=TokenBucketAdmission(rate_per_s=4.0, burst=1),
            window_s=0.25,
        )
        assert report.shed > 0
        windows = report.timeseries.windows()
        assert sum(w.shed for w in windows) == report.shed
        assert sum(w.arrivals for w in windows) == report.num_requests

    def test_untraced_default_still_builds_a_timeseries(self, report):
        assert report.timeseries is not None
        assert "timeseries" in report.format_table()


class TestNodeFailureObservability:
    """The acceptance scenario: a node failure is visible end to end —
    windowed TTFT spike, burn-rate alert bracketing it, dashboard carrying
    both."""

    NUM = 60
    RATE = 10.0  # arrivals per second
    WINDOW = 0.5
    FAIL = NUM // 3  # request index 20 -> t=2.0s
    RECOVER = 2 * NUM // 3  # request index 40 -> t=4.0s
    CONTEXT = "ops-context"

    def spec(self):
        return ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            topology="cluster",
            num_nodes=2,
            replication=1,
            concurrency=2,
        )

    @pytest.fixture(scope="class")
    def runs(self):
        reqs = make_requests(self.NUM, self.RATE, self.CONTEXT)
        healthy = Driver(
            build_backend(self.spec()), list(reqs), window_s=self.WINDOW
        ).run()
        slo = SLOObjective("ttft", ttft_s=2.0 * healthy.ttft.p99_s, target=0.9)
        # Placement is deterministic: a scratch backend reveals which node
        # holds the context's only replica.
        scratch = build_backend(self.spec())
        scratch.ingest(self.CONTEXT, 640)
        primary = scratch.frontend.cluster.replicas_for(self.CONTEXT)[0]
        degraded = Driver(
            build_backend(self.spec()),
            list(reqs),
            node_failures={self.FAIL: primary},
            node_recoveries={self.RECOVER: primary},
            window_s=self.WINDOW,
            slos=[slo],
        ).run()
        return healthy, degraded, slo

    @property
    def fail_s(self):
        return self.FAIL / self.RATE

    @property
    def recover_s(self):
        return self.RECOVER / self.RATE

    def spike_window(self, degraded):
        return max(
            degraded.timeseries.windows(),
            key=lambda w: w.ttft_percentile(99.0) if w.ttft_samples else 0.0,
        )

    def test_ttft_p99_spikes_in_the_failure_window(self, runs):
        healthy, degraded, _ = runs
        spike = self.spike_window(degraded)
        assert spike.ttft_percentile(99.0) > 5.0 * healthy.ttft.p99_s
        # The worst window lies inside the outage, and the hit ratio is gone
        # there: every request degraded to text re-prefill.
        assert self.fail_s <= spike.start_s < self.recover_s
        assert spike.hit_ratio < healthy.hit_ratio

    def test_burn_rate_alert_brackets_the_outage(self, runs):
        _, degraded, _ = runs
        burns = [a for a in degraded.alerts if a.kind == "burn-rate"]
        assert burns, f"no burn-rate alert in {degraded.alerts}"
        for alert in burns:
            assert alert.severity in {"page", "ticket"}
            assert self.fail_s <= alert.fired_at_s <= self.recover_s + self.WINDOW
            assert alert.resolved_at_s is not None
            assert alert.resolved_at_s > alert.fired_at_s
            assert alert.resolved_at_s >= self.recover_s

    def test_report_table_narrates_the_alerts(self, runs):
        _, degraded, _ = runs
        table = degraded.format_table()
        assert "timeseries" in table
        assert "alert" in table and "fired" in table

    def test_dashboard_shows_the_spike_and_the_alert(self, runs):
        _, degraded, slo = runs
        html = render_dashboard(
            degraded.timeseries,
            alerts=degraded.alerts,
            objectives=[slo],
            title="Node failure",
        )
        spike = self.spike_window(degraded)
        p99_ms = spike.ttft_percentile(99.0) * 1000.0
        assert f'data-ttft-p99-ms="{p99_ms:.1f}"' in html
        burn = next(a for a in degraded.alerts if a.kind == "burn-rate")
        assert f'data-alert-name="{burn.name}"' in html
        assert f'data-fired-at-s="{burn.fired_at_s:g}"' in html
        assert f'data-resolved-at-s="{burn.resolved_at_s:g}"' in html

"""Tests for the end-to-end context-loading engine."""

from __future__ import annotations

import pytest

from repro.serving import ContextLoadingEngine


@pytest.fixture(scope="module")
def engine():
    return ContextLoadingEngine("mistral-7b")


@pytest.fixture(scope="module")
def ingested(engine):
    return engine.ingest("report-2023", 2_200)


class TestIngest:
    def test_report_contents(self, ingested):
        assert ingested.context_id == "report-2023"
        assert ingested.num_chunks == 2
        assert set(ingested.stored_bytes_per_level) == {"high", "medium", "low", "lowest"}
        assert ingested.total_stored_bytes > 0

    def test_context_is_stored(self, engine, ingested):
        assert "report-2023" in engine.store


class TestQuery:
    def test_query_uses_kv_cache(self, engine, ingested):
        response = engine.query("report-2023", "Summarise the revenue drivers.")
        assert response.used_kv_cache
        assert response.ttft_s > 0
        assert response.quality.relative_quality > 0.95
        assert response.transmitted_bytes > 0

    def test_query_not_ingested_falls_back_to_text(self, engine):
        response = engine.query("unknown-doc", "What is this?", num_tokens=1_500)
        assert not response.used_kv_cache
        assert response.chunk_configs == ["text"]

    def test_query_unknown_without_length_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.query("unknown-doc-2", "What is this?")

    def test_query_with_slo(self, engine, ingested):
        response = engine.query("report-2023", "Any risks mentioned?", slo_s=2.0)
        assert response.ttft_s > 0
        assert response.used_kv_cache

    def test_kv_path_faster_than_text_path(self, engine, ingested):
        kv_response = engine.query("report-2023", "Summarise.")
        text_response = engine.query("fresh-doc", "Summarise.", num_tokens=2_200)
        assert kv_response.ttft_s < text_response.ttft_s

    def test_accepts_model_config_instance(self):
        from repro.llm import MISTRAL_7B

        engine = ContextLoadingEngine(MISTRAL_7B)
        assert engine.model is MISTRAL_7B


class TestReferenceMemoization:
    def test_reference_kv_computed_once_per_context(self, monkeypatch):
        engine = ContextLoadingEngine("mistral-7b")
        calls: list[str] = []
        original = engine.llm.calculate_kv

        def counting(context_id: str, num_tokens: int):
            calls.append(context_id)
            return original(context_id, num_tokens)

        monkeypatch.setattr(engine.llm, "calculate_kv", counting)
        engine.ingest("memo-doc", 2_200)
        assert calls.count("memo-doc") == 1
        engine.query("memo-doc", "First question?")
        engine.query("memo-doc", "Second question?")
        # Repeated queries reuse the reference computed at ingest instead of
        # re-prefilling the whole context every time.
        assert calls.count("memo-doc") == 1

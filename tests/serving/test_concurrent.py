"""Tests for the event-driven concurrent serving subsystem.

The deterministic queueing tests pin the exact arithmetic of the simulation:
a two-request collision on a shared link and GPU must produce precisely the
queueing delay the resource model predicts, and a batched decode must beat
the same decodes run back to back.
"""

from __future__ import annotations

import pytest

from repro.network import ConstantTrace, NetworkLink, gbps
from repro.serving import ConcurrentEngine, ContextLoadingEngine
from repro.serving.concurrent import (
    ConcurrentLoadSimulator,
    DECODE,
    GpuScheduler,
    GpuTask,
    LoadStage,
    SimClock,
    StaticLoad,
)

TOKENS = 2_200


# --------------------------------------------------------------------- clock
class TestSimClock:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        seen: list[str] = []
        clock.schedule(2.0, lambda: seen.append("late"))
        clock.schedule(1.0, lambda: seen.append("early"))
        clock.schedule(1.0, lambda: seen.append("early-second"))
        end = clock.run()
        assert seen == ["early", "early-second", "late"]
        assert end == 2.0

    def test_callbacks_can_chain(self):
        clock = SimClock()
        seen: list[float] = []

        def first():
            seen.append(clock.now)
            clock.schedule_after(0.5, lambda: seen.append(clock.now))

        clock.schedule(1.0, first)
        clock.run()
        assert seen == [1.0, 1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule_after(-0.1, lambda: None)


# ----------------------------------------------------------------------- gpu
class TestGpuScheduler:
    @staticmethod
    def _run(max_batch_size: int, durations: list[float], batch_overhead: float = 0.2):
        """Block the GPU briefly so all decodes queue, then release them."""
        clock = SimClock()
        gpu = GpuScheduler(clock, max_batch_size=max_batch_size, batch_overhead=batch_overhead)
        finished: dict[int, float] = {}
        gpu.submit(
            GpuTask(request_id=99, kind="prefill", duration_s=0.1, on_complete=lambda *a: None)
        )
        for i, duration in enumerate(durations):
            gpu.submit(
                GpuTask(
                    request_id=i,
                    kind=DECODE,
                    duration_s=duration,
                    batch_key="node-0",
                    on_complete=lambda finish, busy, wait, i=i: finished.__setitem__(
                        i, finish
                    ),
                )
            )
        clock.run()
        return finished

    def test_batched_decode_beats_sequential(self):
        durations = [0.03, 0.04, 0.05]
        batched = self._run(max_batch_size=8, durations=durations)
        sequential = self._run(max_batch_size=1, durations=durations)
        assert max(batched.values()) < max(sequential.values())
        # The batch finishes together: longest member + overhead for the rest.
        expected = 0.1 + max(durations) + 0.2 * (sum(durations) - max(durations))
        assert max(batched.values()) == pytest.approx(expected)
        # Sequential decodes run back to back after the blocking prefill.
        assert max(sequential.values()) == pytest.approx(0.1 + sum(durations))

    def test_different_batch_keys_do_not_batch(self):
        clock = SimClock()
        gpu = GpuScheduler(clock, max_batch_size=8)
        finished: dict[int, float] = {}
        gpu.submit(
            GpuTask(request_id=9, kind="prefill", duration_s=0.1, on_complete=lambda *a: None)
        )
        for i, key in enumerate(("node-0", "node-1")):
            gpu.submit(
                GpuTask(
                    request_id=i,
                    kind=DECODE,
                    duration_s=0.05,
                    batch_key=key,
                    on_complete=lambda finish, busy, wait, i=i: finished.__setitem__(
                        i, finish
                    ),
                )
            )
        clock.run()
        assert gpu.batches_run == 3  # prefill + one launch per node
        assert finished[1] == pytest.approx(finished[0] + 0.05)


# ------------------------------------------------------------ exact queueing
class TestExactQueueing:
    def test_two_request_collision_yields_expected_delay(self, compute_model):
        """Two text loads arriving together: the model predicts the waits exactly.

        Request B waits the full transfer time of A on the link, then
        ``prefill - transfer`` more for the GPU (A is still prefilling when
        B's bytes land), so B's queueing delay is exactly one prefill time.
        """
        bandwidth = gbps(3.0)
        link = NetworkLink(ConstantTrace(bandwidth))
        text_bytes = 4.5 * TOKENS
        transfer_s = text_bytes * 8.0 / bandwidth
        prefill_s = compute_model.prefill_delay(TOKENS)
        assert prefill_s > transfer_s  # the premise of the expected arithmetic

        simulator = ConcurrentLoadSimulator()
        for _ in range(2):
            simulator.add_request(
                0.0, link, StaticLoad.text_load(TOKENS, text_bytes, compute_model)
            )
        first, second = simulator.run()

        assert first.queueing_s == pytest.approx(0.0, abs=1e-12)
        assert first.total_s == pytest.approx(transfer_s + prefill_s, rel=1e-9)
        # B: link wait = transfer_s, GPU wait = prefill_s - transfer_s.
        assert second.queueing_s == pytest.approx(prefill_s, rel=1e-9)
        assert second.total_s == pytest.approx(transfer_s + 2 * prefill_s, rel=1e-9)

    def test_decomposition_is_exact(self, compute_model):
        link = NetworkLink(ConstantTrace(gbps(1.0)))
        simulator = ConcurrentLoadSimulator()
        for _ in range(3):
            simulator.add_request(
                0.0, link, StaticLoad.text_load(TOKENS, 4.5 * TOKENS, compute_model)
            )
        for timeline in simulator.run():
            assert timeline.total_s == pytest.approx(
                timeline.queueing_s + timeline.transfer_s + timeline.compute_s,
                rel=1e-12,
            )

    def test_batched_decode_beats_sequential_end_to_end(self):
        """Same decode workload, batching on vs off: batching must win.

        Decode-heavy stages make the GPU the choke point; with batching off
        the four decodes serialize, with batching on they share one launch.
        """
        decode_s = 0.05

        def makespan(max_decode_batch: int) -> float:
            simulator = ConcurrentLoadSimulator(max_decode_batch=max_decode_batch)
            # Separate links so transfers overlap and the GPU is the choke.
            for _ in range(4):
                link = NetworkLink(ConstantTrace(gbps(3.0)))
                stage = LoadStage(
                    config="medium",
                    num_bytes=1e6,
                    gpu_kind=DECODE,
                    gpu_s=decode_s,
                    batch_key="node-0",
                )
                simulator.add_request(0.0, link, StaticLoad([stage]))
            return max(t.finish_s for t in simulator.run())

        transfer_s = 1e6 * 8.0 / gbps(3.0)
        # Batched: one launch of equal-length decodes; sequential: four.
        assert makespan(16) == pytest.approx(
            transfer_s + decode_s + 0.2 * 3 * decode_s, rel=1e-9
        )
        assert makespan(1) == pytest.approx(transfer_s + 4 * decode_s, rel=1e-9)
        assert makespan(16) < makespan(1)


# -------------------------------------------------------------------- engine
@pytest.fixture(scope="module")
def concurrent_engine():
    engine = ContextLoadingEngine("mistral-7b")
    engine.ingest("report-2023", TOKENS)
    return ConcurrentEngine(engine)


class TestConcurrentEngine:
    def test_single_query_mirrors_engine(self, concurrent_engine):
        response = concurrent_engine.query("report-2023", "Summarise the revenue drivers.")
        assert response.used_kv_cache
        assert response.quality.relative_quality > 0.95
        assert response.ttft_s > 0
        # Alone on the link and GPU there is nothing to queue behind.
        assert response.queueing_s == pytest.approx(0.0, abs=1e-12)

    def test_ttft_monotone_in_concurrency(self, concurrent_engine):
        def mean_ttft(n: int) -> float:
            for _ in range(n):
                concurrent_engine.submit("report-2023", "Any risks?")
            responses = concurrent_engine.run()
            return sum(r.ttft_s for r in responses) / n

        ttfts = [mean_ttft(n) for n in (1, 2, 4)]
        assert all(b >= a - 1e-9 for a, b in zip(ttfts, ttfts[1:]))
        assert ttfts[-1] > ttfts[0]

    def test_concurrent_queries_queue(self, concurrent_engine):
        for _ in range(4):
            concurrent_engine.submit("report-2023", "Any risks?")
        responses = concurrent_engine.run()
        assert len(responses) == 4
        assert all(r.used_kv_cache for r in responses)
        assert max(r.queueing_s for r in responses) > 0
        for response in responses:
            ttft = response.ttft
            assert response.ttft_s == pytest.approx(
                ttft.queueing_s + ttft.network_s + ttft.decode_s + ttft.compute_s
            )

    def test_unknown_context_falls_back_to_text(self, concurrent_engine):
        response = concurrent_engine.query("unknown-doc", "What?", num_tokens=1_500)
        assert not response.used_kv_cache
        assert response.chunk_configs == ["text"]

    def test_unknown_context_without_length_rejected(self, concurrent_engine):
        with pytest.raises(ValueError):
            concurrent_engine.query("unknown-doc-2", "What?")
        # A failed resolution must not leave the rejected query staged.
        response = concurrent_engine.query("report-2023", "Still serving?")
        assert response.used_kv_cache

    def test_staggered_arrivals_reduce_queueing(self, concurrent_engine):
        for _ in range(3):
            concurrent_engine.submit("report-2023", "Q?")
        together = concurrent_engine.run()
        for i in range(3):
            concurrent_engine.submit("report-2023", "Q?", arrival_s=10.0 * i)
        spread = concurrent_engine.run()
        assert sum(r.queueing_s for r in spread) < sum(r.queueing_s for r in together)


class TestClusterConcurrency:
    @pytest.fixture(scope="class")
    def cluster_engine(self):
        from repro.cluster import ClusterFrontend
        from repro.core import CacheGenConfig

        frontend = ClusterFrontend(
            "mistral-7b",
            node_links=[NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(3)],
            replication_factor=2,
            config=CacheGenConfig(chunk_tokens=1_024),
        )
        frontend.ingest("doc", TOKENS)
        return ConcurrentEngine(frontend)

    def test_co_arriving_requests_spread_over_replicas(self, cluster_engine):
        replicas = set(cluster_engine.engine.cluster.replicas_for("doc"))
        for _ in range(2):
            cluster_engine.submit("doc", "Q?")
        responses = cluster_engine.run()
        served = {r.served_by for r in responses}
        # Queue-depth-aware selection sends the co-arriving pair to the two
        # different replicas instead of piling onto the ring-preferred one.
        assert served == replicas
        assert all(r.used_kv_cache for r in responses)

    def test_queue_depths_drain_after_run(self, cluster_engine):
        for _ in range(2):
            cluster_engine.submit("doc", "Q?")
        cluster_engine.run()
        assert all(
            node.queue_depth == 0 for node in cluster_engine.engine.nodes.values()
        )


class TestColdTierConcurrency:
    TIER_GBPS = 1.0

    @pytest.fixture(scope="class")
    def tiered_engine(self):
        from repro.cluster import ClusterFrontend
        from repro.core import CacheGenConfig

        config = CacheGenConfig(chunk_tokens=1_024)
        probe = ClusterFrontend("mistral-7b", node_links=1, config=config)
        probe.ingest("probe", TOKENS)
        one = float(next(iter(probe.nodes.values())).store.storage_bytes())
        frontend = ClusterFrontend(
            "mistral-7b",
            node_links=[NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(2)],
            replication_factor=2,
            max_bytes_per_node=1.2 * one,
            cold_bytes_per_node=10 * one,
            tier_links=[
                NetworkLink(ConstantTrace(gbps(self.TIER_GBPS))) for _ in range(2)
            ],
            config=config,
        )
        return ConcurrentEngine(frontend)

    def _demote_everywhere(self, engine, context_id: str) -> None:
        for node in engine.engine.nodes.values():
            store = node.store
            if context_id in store.hot:
                stored = store.hot.peek_context(context_id)
                store.hot.evict(context_id)
                store.cold.store_prepared(stored)

    def test_cold_hit_pays_serialized_tier_transfer(self, tiered_engine):
        tiered_engine.ingest("cold-doc", TOKENS)
        self._demote_everywhere(tiered_engine, "cold-doc")
        response = tiered_engine.query("cold-doc", "Q?")
        assert response.used_kv_cache
        assert response.served_tier == "cold"
        assert response.tier_transfer_s > 0.0
        # The tier read is serialized inside the transfer component of the
        # queueing breakdown, never hidden under the serving-link stream.
        assert response.ttft.network_s >= response.tier_transfer_s
        # Promotion happened: the same context now serves hot and faster.
        again = tiered_engine.query("cold-doc", "Q?")
        assert again.served_tier == "hot"
        assert again.ttft_s < response.ttft_s
        assert again.tier_transfer_s == 0.0

    def test_cold_hit_beats_text_reprefill(self, tiered_engine):
        """Acceptance: a cold hit's TTFT beats losing the context outright."""
        tiered_engine.ingest("kept-doc", TOKENS)
        self._demote_everywhere(tiered_engine, "kept-doc")
        cold = tiered_engine.query("kept-doc", "Q?")
        assert cold.served_tier == "cold"
        text = tiered_engine.query("never-stored", "Q?", num_tokens=TOKENS)
        assert not text.used_kv_cache
        assert cold.ttft_s < text.ttft_s

    def test_repeat_submissions_promote_once(self, tiered_engine):
        tiered_engine.ingest("queue-doc", TOKENS)
        self._demote_everywhere(tiered_engine, "queue-doc")
        for _ in range(2):
            tiered_engine.submit("queue-doc", "Q?")
        pair = tiered_engine.run()
        cold_pair = [r for r in pair if r.served_tier == "cold"]
        # The first resolve promotes the context, so only the first submission
        # is a cold hit; the second rides the promoted hot copy.
        assert len(cold_pair) == 1
        assert cold_pair[0].tier_transfer_s > 0.0
        assert {r.served_tier for r in pair} == {"cold", "hot"}

    def test_concurrent_cold_hits_serialize_on_the_tier_channel(self, tiered_engine):
        """Two cold contexts on one node queue their tier reads FIFO."""
        engine = tiered_engine
        engine.ingest("tier-q-a", TOKENS)
        engine.ingest("tier-q-b", TOKENS)
        self._demote_everywhere(engine, "tier-q-a")
        self._demote_everywhere(engine, "tier-q-b")
        # Force both onto one node so they share its tier link.
        cluster = engine.engine.cluster
        only = cluster.ring.node_for("tier-q-a")
        for node_id in cluster.nodes:
            if node_id != only:
                cluster.mark_down(node_id)
        try:
            engine.submit("tier-q-a", "Q?")
            engine.submit("tier-q-b", "Q?")
            first, second = engine.run()
        finally:
            for node_id in cluster.nodes:
                cluster.mark_up(node_id)
        assert first.served_tier == second.served_tier == "cold"
        assert first.served_by == second.served_by == only
        # One of the pair waited for the other's tier read; that wait is
        # queueing, and it is at least as long as the winner's tier transfer.
        waits = sorted((first.queueing_s, second.queueing_s))
        tier_reads = sorted((first.tier_transfer_s, second.tier_transfer_s))
        assert tier_reads[0] > 0.0
        assert waits[1] >= tier_reads[0] * 0.99

"""The arrival-driven open-loop driver."""

from __future__ import annotations

import pytest

from repro.cluster import WorkloadGenerator
from repro.serving.api import (
    ConcurrencyLimitAdmission,
    Driver,
    ServeRequest,
    ServingSpec,
    TokenBucketAdmission,
    build_backend,
    serve,
)

SPEC = ServingSpec(model="mistral-7b", chunk_tokens=256, concurrency=4)


class TestAdmissionPolicies:
    def test_token_bucket_sheds_above_rate(self):
        policy = TokenBucketAdmission(rate_per_s=1.0, burst=1)
        decisions = [
            policy.admit(ServeRequest("c", "q", arrival_s=0.1 * i)) for i in range(10)
        ]
        assert decisions[0] is True  # the initial burst token
        assert sum(decisions) < 10  # 10 arrivals in 1s against a 1/s budget
        late = policy.admit(ServeRequest("c", "q", arrival_s=60.0))
        assert late is True  # the bucket refills over idle time

    def test_token_bucket_validates(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate_per_s=0.0)
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate_per_s=1.0, burst=0)

    def test_stateful_policies_reset_between_runs(self):
        """Each run's arrival clock restarts at zero; so must policy state."""
        workload = WorkloadGenerator(
            num_contexts=2, arrival_rate_per_s=8.0, token_choices=(320,), seed=2
        )
        driver = Driver(
            build_backend(SPEC),
            workload,
            admission=ConcurrencyLimitAdmission(max_inflight=2, est_service_s=3.0),
        )
        first = driver.run(8)
        second = driver.run(8)
        assert len(first.responses) > 0
        # Without reset, run 1's absolute-clock departures would pin every
        # slot busy forever and run 2 would shed 100% of its arrivals.
        assert len(second.responses) == len(first.responses)
        assert second.shed == first.shed

    def test_concurrency_limit_models_departures(self):
        policy = ConcurrencyLimitAdmission(max_inflight=2, est_service_s=1.0)
        assert policy.admit(ServeRequest("c", "q", arrival_s=0.0))
        assert policy.admit(ServeRequest("c", "q", arrival_s=0.1))
        assert not policy.admit(ServeRequest("c", "q", arrival_s=0.2))
        # After the modeled service time the slots free up again.
        assert policy.admit(ServeRequest("c", "q", arrival_s=1.5))


class TestDriver:
    def test_open_loop_run_exposes_steady_state_queueing(self):
        """A hot Poisson arrival stream queues *within* the run — no waves."""
        workload = WorkloadGenerator(
            num_contexts=2,
            zipf_alpha=1.0,
            arrival_rate_per_s=40.0,
            token_choices=(640,),
            seed=3,
        )
        report = serve(SPEC, workload=workload, num_requests=16)
        assert report.num_requests == 16
        assert report.hard_failures == 0
        assert report.queueing is not None
        assert report.queueing.max_s > 0.0
        assert report.duration_s > 0.0
        assert report.offered_rate_rps > 0.0
        # Responses keep their true (absolute) arrival times: the stream was
        # not re-based wave by wave.
        arrivals = sorted(r.arrival_s for r in report.responses)
        assert arrivals[-1] > arrivals[0]

    def test_driver_reproduces_figure12_concurrency_curve(self):
        """The open-loop driver and the figure-12 experiment agree."""
        from repro.experiments import run_figure12_concurrency

        levels = (1, 3)
        num_tokens = 1_600
        result = run_figure12_concurrency(
            concurrency_levels=levels, num_tokens=num_tokens
        )
        spec = ServingSpec(model="mistral-7b", concurrency=max(levels))
        for n in levels:
            backend = build_backend(spec, kind="concurrent")
            requests = [
                ServeRequest(
                    "figure12-context",
                    "What does the context say?",
                    arrival_s=0.0,
                    num_tokens=num_tokens,
                )
                for _ in range(n)
            ]
            report = Driver(backend, requests).run()
            row = result.filter(concurrent_requests=n, method="cachegen")[0]
            assert report.ttft.mean_s == pytest.approx(row["ttft_s"], rel=0.02)
            assert report.queueing.mean_s == pytest.approx(
                row["queueing_s"], rel=0.02, abs=1e-9
            )

    def test_shedding_reported_and_excluded_from_service(self):
        workload = WorkloadGenerator(
            num_contexts=2,
            arrival_rate_per_s=40.0,
            token_choices=(640,),
            seed=5,
        )
        report = serve(
            SPEC,
            workload=workload,
            num_requests=12,
            admission=TokenBucketAdmission(rate_per_s=5.0, burst=1),
        )
        assert report.shed > 0
        assert report.shed + len(report.responses) == report.num_requests == 12
        assert 0.0 < report.shed_ratio < 1.0

    def test_node_failure_splits_segments_and_degrades_gracefully(self):
        spec = ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            topology="cluster",
            num_nodes=2,
            replication=2,
            concurrency=2,
        )
        backend = build_backend(spec)
        workload = WorkloadGenerator(
            num_contexts=3, token_choices=(640,), arrival_rate_per_s=4.0, seed=9
        )
        driver = Driver(backend, workload, node_failures={4: "node-0"})
        report = driver.run(10)
        assert report.hard_failures == 0
        assert not backend.frontend.nodes["node-0"].up
        assert report.kv_served + report.text_served == 10
        # With 2x replication the surviving replica keeps serving from cache.
        assert report.kv_served > 0
    def test_concurrent_failover_names_attempted_nodes(self):
        """The concurrent path reports attempted_node_ids like the sequential one."""
        spec = ServingSpec(
            model="mistral-7b",
            chunk_tokens=256,
            topology="cluster",
            num_nodes=3,
            replication=2,
            concurrency=2,
        )
        backend = build_backend(spec)
        backend.ingest("failover-doc", 640)
        primary = backend.frontend.cluster.replicas_for("failover-doc")[0]
        backend.mark_down(primary)
        backend.submit(ServeRequest("failover-doc", "Q?", num_tokens=640))
        backend.submit(ServeRequest("failover-doc", "Q again?", num_tokens=640))
        responses = backend.run()
        assert all(r.failed_over for r in responses)
        assert all(primary in r.attempted_node_ids for r in responses)

    def test_topology_events_require_mark_down(self):
        class NoTopology:
            spec = SPEC

        with pytest.raises(ValueError, match="mark_down"):
            Driver(NoTopology(), None, node_failures={0: "node-0"})

    def test_topology_events_accepted_on_single_node_backends(self):
        # Single-node backends take the one store dark, so node events no
        # longer require a cluster.
        Driver(build_backend(SPEC), None, node_failures={0: "node-0"})

    def test_driver_requires_a_workload(self):
        with pytest.raises(ValueError, match="workload"):
            Driver(build_backend(SPEC), None).run()

    def test_num_requests_required_with_generator(self):
        workload = WorkloadGenerator(num_contexts=2, token_choices=(320,))
        with pytest.raises(ValueError, match="num_requests"):
            Driver(build_backend(SPEC), workload).run()

    def test_ingest_interleaves_under_capacity_pressure(self):
        """A bounded store serves arrivals against *their* store state.

        The store only holds one context at a time: ingesting B evicts A.  If
        all ingests ran before any serving, A's queries would degrade to the
        text path; the ingest barrier keeps them KV-served.
        """
        spec = SPEC.with_(max_bytes_per_node=30e6)
        requests = [
            ServeRequest("ctx-a", "Q0?", arrival_s=0.0, num_tokens=320),
            ServeRequest("ctx-a", "Q1?", arrival_s=0.1, num_tokens=320),
            ServeRequest("ctx-b", "Q2?", arrival_s=0.2, num_tokens=320),
            ServeRequest("ctx-b", "Q3?", arrival_s=0.3, num_tokens=320),
        ]
        report = serve(spec, requests, reingest_on_miss=False)
        assert report.total_evictions >= 1  # B's ingest displaced A
        assert report.kv_served == 4

    def test_one_bad_request_does_not_sink_its_segment(self):
        requests = [
            ServeRequest("good-doc", "Q?", arrival_s=0.0, num_tokens=640),
            # Never ingested and no length: the engine must reject it — but
            # only it, not its segment-mates.
            ServeRequest("never-ingested", "Q?", arrival_s=0.1),
        ]
        report = serve(SPEC, requests)
        assert report.hard_failures == 1
        assert len(report.responses) == 1
        assert report.responses[0].context_id == "good-doc"
        assert report.responses[0].used_kv_cache

    def test_max_batch_segments_cover_all_requests(self):
        requests = [
            ServeRequest("seg-doc", f"Q{i}?", arrival_s=0.2 * i, num_tokens=640)
            for i in range(5)
        ]
        report = serve(SPEC, requests, max_batch=2)
        assert len(report.responses) == 5
        assert [r.question for r in report.responses] == [r.question for r in requests]

"""Tests for the synthetic dataset generators (Table 2)."""

from __future__ import annotations

import pytest

from repro.datasets import (
    ALL_DATASETS,
    LongChatDataset,
    MAX_CONTEXT_TOKENS,
    MIN_CONTEXT_TOKENS,
    NarrativeQADataset,
    TriviaQADataset,
    WikiTextDataset,
    get_dataset,
)

EXPECTED_STATS = {
    "longchat": {"size": 200, "median": 9_400, "task": "qa_accuracy"},
    "triviaqa": {"size": 200, "median": 9_300, "task": "qa_f1"},
    "narrativeqa": {"size": 200, "median": 14_000, "task": "qa_f1"},
    "wikitext": {"size": 62, "median": 5_900, "task": "perplexity"},
}


class TestFactory:
    @pytest.mark.parametrize("name", sorted(ALL_DATASETS))
    def test_get_dataset(self, name):
        assert get_dataset(name).name == name

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")


@pytest.mark.parametrize("name", sorted(ALL_DATASETS))
class TestTable2Statistics:
    def test_size_matches(self, name):
        assert len(get_dataset(name)) == EXPECTED_STATS[name]["size"]

    def test_median_close_to_paper(self, name):
        stats = get_dataset(name).length_statistics()
        expected = EXPECTED_STATS[name]["median"]
        assert abs(stats["median"] - expected) / expected < 0.12

    def test_lengths_within_corpus_bounds(self, name):
        for record in get_dataset(name).records():
            assert MIN_CONTEXT_TOKENS <= record.num_tokens <= MAX_CONTEXT_TOKENS

    def test_task_assignment(self, name):
        dataset = get_dataset(name)
        assert dataset.task == EXPECTED_STATS[name]["task"]
        assert all(record.task == dataset.task for record in dataset.records(5))


class TestRecords:
    def test_deterministic_across_instances(self):
        a = [r.num_tokens for r in LongChatDataset().records(20)]
        b = [r.num_tokens for r in LongChatDataset().records(20)]
        assert a == b

    def test_limit_respected(self):
        assert len(TriviaQADataset().records(7)) == 7

    def test_context_ids_unique(self):
        ids = [r.context_id for r in NarrativeQADataset().records(50)]
        assert len(set(ids)) == 50

    def test_longchat_tightly_clustered(self):
        stats = LongChatDataset().length_statistics()
        assert stats["std"] < 400

    def test_triviaqa_wide_spread(self):
        stats = TriviaQADataset().length_statistics()
        assert stats["std"] > 2_000

    def test_base_quality_known_and_default_models(self):
        dataset = WikiTextDataset()
        assert dataset.base_quality_for("llama-70b") < dataset.base_quality_for("llama-3b")
        assert dataset.base_quality_for("unknown-model") == dataset.default_base_quality

    def test_iteration_protocol(self):
        dataset = LongChatDataset()
        assert len(list(iter(dataset))) == len(dataset)

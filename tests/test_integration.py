"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ContextLoadingEngine, NetworkLink, StepTrace, gbps
from repro.baselines import CacheGenMethod, TextContextBaseline, UniformQuantizationBaseline
from repro.datasets import LongChatDataset
from repro.experiments.common import Workbench, default_link


def test_version_exposed():
    assert repro.__version__


def test_public_api_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


class TestPaperHeadlineClaims:
    """The three headline claims of the abstract, at reproduction scale."""

    @pytest.fixture(scope="class")
    def workbench(self):
        return Workbench(num_contexts=1, context_token_cap=2_500)

    def test_size_reduction_vs_quantization(self, workbench):
        """CacheGen reduces the KV cache size by ~3-4x vs the 8-bit baseline."""
        link = default_link()
        cachegen = workbench.evaluate(workbench.cachegen_method(), link=link)[0]
        quant = workbench.evaluate(UniformQuantizationBaseline(8), link=link)[0]
        ratio = quant.kv_size_bytes / cachegen.kv_size_bytes
        assert 2.5 < ratio < 6.0

    def test_ttft_reduction(self, workbench):
        """CacheGen reduces TTFT vs both text loading and quantization."""
        link = default_link()
        cachegen = workbench.evaluate(workbench.cachegen_method(), link=link)[0]
        quant = workbench.evaluate(UniformQuantizationBaseline(8), link=link)[0]
        text = workbench.evaluate(TextContextBaseline(), link=link)[0]
        assert quant.ttft_s / cachegen.ttft_s > 1.5
        assert text.ttft_s / cachegen.ttft_s > 2.0

    def test_quality_loss_small(self, workbench):
        cachegen = workbench.evaluate(workbench.cachegen_method(), link=default_link())[0]
        assert cachegen.quality.relative_quality > 0.97


class TestEndToEndEngine:
    def test_rag_style_reuse(self):
        """Ingest once, query twice — the second query must not pay prefill."""
        engine = ContextLoadingEngine("mistral-7b")
        engine.ingest("earnings-q4", 3_000)
        first = engine.query("earnings-q4", "Summarise the earnings report.")
        second = engine.query("earnings-q4", "What were the top revenue sources?")
        assert first.used_kv_cache and second.used_kv_cache
        text_path = engine.query("fresh-earnings", "Summarise.", num_tokens=3_000)
        assert second.ttft_s < text_path.ttft_s

    def test_engine_under_bandwidth_drop_meets_slo(self):
        """With an SLO and a mid-transfer bandwidth drop, the engine adapts."""
        trace = StepTrace(gbps(2), gbps(0.1), gbps(1), drop_at_s=0.1, recover_at_s=1.0)
        engine = ContextLoadingEngine("mistral-7b", link=NetworkLink(trace))
        engine.ingest("doc", 3_000)
        response = engine.query("doc", "What is discussed?", slo_s=1.0)
        assert response.used_kv_cache
        assert len(set(response.chunk_configs)) >= 1


class TestCrossModelConsistency:
    @pytest.mark.parametrize("model_name", ["mistral-7b", "llama-34b"])
    def test_codec_works_across_models(self, model_name):
        from repro.core import CacheGenDecoder, CacheGenEncoder
        from repro.llm import SyntheticLLM

        llm = SyntheticLLM(model_name)
        samples = [llm.calculate_kv("profile", 300)]
        encoder = CacheGenEncoder().fit(samples)
        kv = llm.calculate_kv("ctx", 400)
        decoded = CacheGenDecoder(encoder).decode(encoder.encode(kv))
        distortion = kv.normalized_distortion_per_layer(decoded)
        assert float(np.mean(distortion)) < 0.1

    def test_dataset_records_drive_method_evaluation(self):
        workbench = Workbench(dataset=LongChatDataset(), num_contexts=2, context_token_cap=1_500)
        method = CacheGenMethod(workbench.encoder)
        results = workbench.evaluate(method, link=default_link())
        assert len(results) == 2
        assert all(r.quality.relative_quality > 0.9 for r in results)

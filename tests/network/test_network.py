"""Tests for bandwidth traces, links and the pipelined transfer simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    ConstantTrace,
    NetworkLink,
    PiecewiseTrace,
    PipelineSegment,
    PipelineSimulator,
    RandomTrace,
    StepTrace,
    gbps,
)


class TestTraces:
    def test_gbps_conversion(self):
        assert gbps(3) == 3e9

    def test_constant_trace(self):
        trace = ConstantTrace(gbps(2))
        assert trace.bandwidth_at(0) == trace.bandwidth_at(100) == 2e9

    def test_constant_trace_invalid(self):
        with pytest.raises(ValueError):
            ConstantTrace(0)

    def test_piecewise_segments(self):
        trace = PiecewiseTrace(times=(0.0, 2.0, 4.0), bandwidths_bps=(2e9, 0.2e9, 1e9))
        assert trace.bandwidth_at(1.0) == 2e9
        assert trace.bandwidth_at(2.5) == 0.2e9
        assert trace.bandwidth_at(100.0) == 1e9

    @pytest.mark.parametrize(
        "times,bws",
        [((1.0,), (1e9,)), ((0.0, 0.0), (1e9, 2e9)), ((0.0,), (0.0,)), ((), ())],
    )
    def test_piecewise_invalid(self, times, bws):
        with pytest.raises(ValueError):
            PiecewiseTrace(times=times, bandwidths_bps=bws)

    def test_step_trace_matches_figure7(self):
        trace = StepTrace(gbps(2), gbps(0.2), gbps(1), drop_at_s=2, recover_at_s=4)
        assert trace.bandwidth_at(0.5) == gbps(2)
        assert trace.bandwidth_at(3) == gbps(0.2)
        assert trace.bandwidth_at(5) == gbps(1)

    def test_random_trace_within_bounds_and_deterministic(self):
        trace_a = RandomTrace(seed=7)
        trace_b = RandomTrace(seed=7)
        for t in (0.0, 1.0, 5.0, 20.0):
            assert trace_a.min_bps <= trace_a.bandwidth_at(t) <= trace_a.max_bps
            assert trace_a.bandwidth_at(t) == trace_b.bandwidth_at(t)

    def test_random_trace_different_seeds_differ(self):
        samples_a = [RandomTrace(seed=1).bandwidth_at(t) for t in range(10)]
        samples_b = [RandomTrace(seed=2).bandwidth_at(t) for t in range(10)]
        assert samples_a != samples_b

    def test_average_bandwidth(self):
        trace = PiecewiseTrace(times=(0.0, 1.0), bandwidths_bps=(1e9, 3e9))
        assert trace.average_bandwidth(0.0, 2.0) == pytest.approx(2e9, rel=0.05)


class TestLink:
    def test_transfer_duration_constant_link(self):
        link = NetworkLink(ConstantTrace(gbps(1)))
        result = link.transfer(125e6)  # 1 Gb of data on a 1 Gbps link
        assert result.duration == pytest.approx(1.0, rel=0.02)

    def test_zero_bytes(self):
        link = NetworkLink(ConstantTrace(gbps(1)))
        assert link.transfer(0).duration == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkLink(ConstantTrace(gbps(1))).transfer(-1)

    def test_rtt_added(self):
        link = NetworkLink(ConstantTrace(gbps(1)), rtt_s=0.05)
        assert link.transfer(125e6).duration == pytest.approx(1.05, rel=0.02)

    def test_variable_trace_slows_transfer(self):
        fast = NetworkLink(ConstantTrace(gbps(2)))
        slow_mid = NetworkLink(StepTrace(gbps(2), gbps(0.2), gbps(2), 0.5, 5.0))
        payload = 250e6
        assert slow_mid.transfer(payload).duration > fast.transfer(payload).duration

    def test_achieved_throughput(self):
        link = NetworkLink(ConstantTrace(gbps(2)))
        result = link.transfer(250e6)
        assert result.achieved_throughput_bps == pytest.approx(2e9, rel=0.02)

    def test_estimate_matches_constant_link(self):
        link = NetworkLink(ConstantTrace(gbps(4)))
        assert link.estimate_transfer_time(500e6) == pytest.approx(1.0, rel=0.01)

    def test_start_time_offsets_trace(self):
        link = NetworkLink(StepTrace(gbps(2), gbps(0.2), gbps(2), 1.0, 50.0))
        early = link.transfer(125e6, start_time=0.0)
        late = link.transfer(125e6, start_time=2.0)
        assert late.duration > early.duration


class TestPipeline:
    def test_processing_overlaps_transfer(self):
        link = NetworkLink(ConstantTrace(gbps(1)))
        segments = [PipelineSegment(num_bytes=125e6, process_s=0.5) for _ in range(3)]
        result = PipelineSimulator(link).run(segments)
        # Three 1-second transfers with 0.5s processing each, pipelined:
        # total should be ~3.5s, far less than the 4.5s of a serial schedule.
        assert result.total_time == pytest.approx(3.5, rel=0.05)
        assert result.network_time == pytest.approx(3.0, rel=0.05)

    def test_empty_pipeline(self):
        result = PipelineSimulator(NetworkLink(ConstantTrace(gbps(1)))).run([])
        assert result.total_time == 0.0

    def test_processing_dominated_pipeline(self):
        link = NetworkLink(ConstantTrace(gbps(100)))
        segments = [PipelineSegment(num_bytes=1e6, process_s=1.0) for _ in range(3)]
        result = PipelineSimulator(link).run(segments)
        assert result.total_time == pytest.approx(3.0, rel=0.05)

    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            PipelineSegment(num_bytes=-1, process_s=0.0)


@settings(max_examples=20, deadline=None)
@given(payload_mb=st.floats(1, 500), bandwidth=st.floats(0.2, 50))
def test_transfer_time_property(payload_mb, bandwidth):
    """Transfer duration always matches bytes*8/bandwidth on constant links."""
    link = NetworkLink(ConstantTrace(gbps(bandwidth)))
    duration = link.transfer(payload_mb * 1e6).duration
    assert duration == pytest.approx(payload_mb * 8e6 / gbps(bandwidth), rel=0.05)

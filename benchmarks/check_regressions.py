#!/usr/bin/env python
"""Gate the benchmark suite on a committed baseline.

``benchmark-smoke`` in CI produces ``benchmark-results.json`` (pytest-benchmark's
JSON output).  This script compares every benchmark's mean wall-clock time
against ``benchmarks/baseline.json`` and fails when one regresses beyond the
tolerance, so a slow serving path cannot land silently.  Benchmarks that
disappear from the results also fail (a deleted benchmark must update the
baseline deliberately); new benchmarks that are not in the baseline yet only
warn.

Refresh the baseline from a trusted run with::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=benchmark-results.json
    python benchmarks/check_regressions.py benchmark-results.json --refresh

The committed baseline stores means from one reference machine, so the check
uses a generous relative tolerance (CI hardware varies run to run); it exists
to catch the 2x-and-worse regressions that indicate an accidental algorithmic
slowdown, not 5% noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"
#: Means below this are timer noise on any machine; never flagged.
MIN_SECONDS = 0.05


def load_means(results_path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file."""
    data = json.loads(results_path.read_text())
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in data.get("benchmarks", [])
    }


def refresh(results_path: Path, baseline_path: Path) -> int:
    means = load_means(results_path)
    if not means:
        print(f"error: no benchmarks found in {results_path}", file=sys.stderr)
        return 1
    baseline_path.write_text(
        json.dumps({"mean_seconds": dict(sorted(means.items()))}, indent=2) + "\n"
    )
    print(f"wrote {baseline_path} with {len(means)} benchmarks")
    return 0


def compare(results_path: Path, baseline_path: Path, tolerance: float) -> int:
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found; run with --refresh first",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())["mean_seconds"]
    means = load_means(results_path)

    failures: list[str] = []
    for name, reference in sorted(baseline.items()):
        mean = means.get(name)
        if mean is None:
            failures.append(f"MISSING   {name} (in baseline, absent from results)")
            continue
        limit = max(reference * tolerance, MIN_SECONDS)
        status = "REGRESSED" if mean > limit else "ok"
        print(f"{status:<9} {name}: {mean:.3f}s (baseline {reference:.3f}s, "
              f"limit {limit:.3f}s)")
        if mean > limit:
            failures.append(f"REGRESSED {name}: {mean:.3f}s > {limit:.3f}s")
    for name in sorted(set(means) - set(baseline)):
        print(f"NEW       {name}: {means[name]:.3f}s (not in baseline; "
              f"refresh to start tracking it)")

    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} tracked benchmarks within {tolerance:.1f}x of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when a mean exceeds baseline * tolerance (default 2.0)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the baseline from these results instead of comparing",
    )
    args = parser.parse_args(argv)
    if args.refresh:
        return refresh(args.results, args.baseline)
    return compare(args.results, args.baseline, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 8: TTFT and quality across models and datasets at 3 Gbps."""

from repro.experiments import run_figure8


def test_figure8_ttft(run_experiment):
    result = run_experiment(
        run_figure8,
        pairs=(
            ("mistral-7b", "longchat"),
            ("llama-34b", "longchat"),
            ("llama-70b", "triviaqa"),
            ("llama-70b", "wikitext"),
        ),
        num_contexts=1,
        quant_bits=(8,),
        context_token_cap=8_000,
    )
    for model, dataset in sorted({(r["model"], r["dataset"]) for r in result.rows}):
        rows = {r["method"]: r for r in result.filter(model=model, dataset=dataset)}
        assert rows["cachegen"]["ttft_s"] < rows["quant-8bit"]["ttft_s"]
        assert rows["cachegen"]["ttft_s"] < rows["text"]["ttft_s"]
        assert rows["cachegen"]["relative_quality"] > 0.95

"""Cluster scaling smoke benchmark: hit ratio and p95 TTFT vs node count.

A deliberately small, deterministic run (fixed workload seed, few contexts,
short documents) so it doubles as a CI smoke test for the cluster subsystem:
more nodes means more aggregate cache capacity, so the hit ratio must not
degrade while every request is still served.
"""

from __future__ import annotations

from repro.cluster import ClusterFrontend, ClusterSimulator, WorkloadGenerator
from repro.core import CacheGenConfig
from repro.network import ConstantTrace, NetworkLink, gbps

NODE_COUNTS = (2, 4)
NUM_REQUESTS = 60
#: Room for ~2 ingested contexts per node — small enough that the 2-node
#: cluster churns while the 4-node cluster holds most of the working set.
MAX_BYTES_PER_NODE = 100e6


def _run_scaling() -> dict[int, object]:
    reports = {}
    for num_nodes in NODE_COUNTS:
        frontend = ClusterFrontend(
            "mistral-7b",
            node_links=[NetworkLink(ConstantTrace(gbps(3.0))) for _ in range(num_nodes)],
            replication_factor=2,
            max_bytes_per_node=MAX_BYTES_PER_NODE,
            eviction_policy="lru",
            config=CacheGenConfig(chunk_tokens=256),
        )
        workload = WorkloadGenerator(
            num_contexts=10, zipf_alpha=1.0, token_choices=(320, 640), seed=11
        )
        simulator = ClusterSimulator(frontend, workload, slo_s=1.0, adaptive=False)
        reports[num_nodes] = simulator.run(NUM_REQUESTS)
    return reports


def test_cluster_scaling(benchmark):
    reports = benchmark.pedantic(_run_scaling, iterations=1, rounds=1)

    print()
    print(f"{'nodes':>5} {'hit_ratio':>9} {'p50_ttft':>9} {'p95_ttft':>9} {'evictions':>9}")
    for num_nodes, report in sorted(reports.items()):
        print(
            f"{num_nodes:>5} {report.hit_ratio:>9.3f} {report.ttft.p50_s:>8.3f}s "
            f"{report.ttft.p95_s:>8.3f}s {report.total_evictions:>9}"
        )

    for report in reports.values():
        assert report.hard_failures == 0
        assert report.ttft.count == NUM_REQUESTS
    small, large = reports[NODE_COUNTS[0]], reports[NODE_COUNTS[-1]]
    # More nodes -> more aggregate capacity -> at least as many cache hits
    # and no more capacity evictions.
    assert large.hit_ratio >= small.hit_ratio
    assert large.total_evictions <= small.total_evictions
    assert large.ttft.p95_s <= small.ttft.p95_s * 1.5

"""Figure 19: TTFT-improvement heatmap over bandwidth x GPU availability."""

from repro.experiments import run_figure19


def test_figure19_heatmap(run_experiment):
    result = run_experiment(
        run_figure19,
        bandwidths_gbps=(0.5, 3.0, 10.0, 40.0),
        concurrency_levels=(1, 4, 8),
        num_tokens=9_600,
    )
    assert all(row["improvement"] > 0.9 for row in result.rows)
    # The sweet spot (moderate bandwidth, scarce GPU) shows large gains.
    sweet = result.filter(bandwidth_gbps=3.0, concurrent_requests=8)[0]
    assert sweet["improvement"] > 2.0

"""Figure 4: layer-wise sensitivity of quality to KV data loss."""

from repro.experiments import run_figure4


def test_figure4_layer_sensitivity(run_experiment):
    result = run_experiment(run_figure4, num_contexts=1, context_token_cap=3_000)
    for model in sorted({row["model"] for row in result.rows}):
        series = [row["accuracy"] for row in result.filter(model=model)]
        assert series[0] < series[-1]

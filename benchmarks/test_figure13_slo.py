"""Figure 13: SLO violation rate vs quality under random bandwidth traces."""

from repro.experiments import run_figure13


def test_figure13_slo(run_experiment):
    result = run_experiment(
        run_figure13, slos_s=(0.5, 1.0), num_traces=3, num_contexts=1, context_token_cap=6_000
    )
    for slo in (0.5, 1.0):
        rows = {r["method"]: r for r in result.filter(slo_s=slo)}
        assert rows["cachegen"]["violation_rate"] <= rows["quantization"]["violation_rate"]
        assert rows["cachegen"]["violation_rate"] <= rows["cachegen-no-adapt"]["violation_rate"]

"""Figure 18: CacheGen vs smaller models, token selection and gisting."""

from repro.experiments import run_figure18


def test_figure18_intrusive_baselines(run_experiment):
    result = run_experiment(run_figure18, num_contexts=1, context_token_cap=4_000)
    gisting_rows = result.filter(panel="gisting")
    cachegen_quality = max(
        r["quality"] for r in gisting_rows if r["method"].startswith("cachegen")
    )
    gisting_quality = max(
        r["quality"] for r in gisting_rows if r["method"] == "gisting"
    )
    assert cachegen_quality >= gisting_quality
    smaller_rows = result.filter(panel="smaller_model")
    cachegen_ppl = min(
        r["quality"] for r in smaller_rows if r["method"].startswith("cachegen")
    )
    smaller_ppl = min(r["quality"] for r in smaller_rows if r["method"].startswith("smaller"))
    # Perplexity: lower is better — CacheGen on the big model beats the small model.
    assert cachegen_ppl < smaller_ppl

"""Figure 5: entropy of KV values under different grouping strategies."""

from repro.experiments import run_figure5


def test_figure5_grouping_entropy(run_experiment):
    result = run_experiment(run_figure5, num_contexts=1, context_token_cap=3_000)
    for row in result.rows:
        assert row["entropy_channel_layer"] < row["entropy_token"]
        assert row["entropy_layer"] < row["entropy_token"]

"""Figure 7: adaptation decisions under a bandwidth drop (step trace)."""

from repro.experiments import run_figure7


def test_figure7_adaptation(run_experiment):
    result = run_experiment(
        run_figure7,
        num_tokens=9_400,
        slo_s=4.0,
        initial_gbps=0.5,
        drop_gbps=0.05,
        recovered_gbps=0.3,
    )
    rows = {row["method"]: row for row in result.rows}
    # Adaptation keeps the loading delay far below the quantization baseline
    # when the bandwidth collapses mid-transfer.
    assert rows["cachegen"]["loading_delay_s"] < rows["quantization"]["loading_delay_s"]

"""Appendix E: storage vs recompute cost of cached contexts."""

from repro.experiments import run_appendix_e


def test_appendix_e_cost(run_experiment):
    result = run_experiment(run_appendix_e)
    assert result.metadata["breakeven_requests_per_month"] < 500
    assert result.filter(requests_per_month=1_000)[0]["caching_is_cheaper"]
    assert not result.filter(requests_per_month=10)[0]["caching_is_cheaper"]

"""Concurrent serving smoke benchmark: TTFT and queueing vs concurrency.

A deliberately small, deterministic sweep of the event-driven concurrent
engine so it doubles as a CI smoke test for the subsystem: simultaneous
requests to one engine must see monotonically non-decreasing TTFT, the
degradation must be attributable to queueing (the engine has no static GPU
share to hide behind), and the TTFT decomposition must stay exact.
"""

from __future__ import annotations

from repro.core import CacheGenConfig
from repro.serving import ConcurrentEngine, ContextLoadingEngine

CONCURRENCY_LEVELS = (1, 2, 4, 8)
NUM_TOKENS = 3_000


def _run_scaling() -> dict[int, list]:
    engine = ContextLoadingEngine(
        "mistral-7b", config=CacheGenConfig(chunk_tokens=512)
    )
    concurrent = ConcurrentEngine(engine, max_decode_batch=16)
    concurrent.ingest("ctx", NUM_TOKENS)
    responses = {}
    for n in CONCURRENCY_LEVELS:
        for _ in range(n):
            concurrent.submit("ctx", "How did revenue develop?")
        responses[n] = concurrent.run()
    return responses


def test_concurrent_scaling(benchmark):
    responses = benchmark.pedantic(_run_scaling, iterations=1, rounds=1)

    print()
    print(f"{'n':>3} {'mean_ttft':>10} {'mean_queue':>10} {'max_ttft':>10}")
    means = {}
    for n, batch in sorted(responses.items()):
        mean_ttft = sum(r.ttft_s for r in batch) / n
        mean_queue = sum(r.queueing_s for r in batch) / n
        means[n] = (mean_ttft, mean_queue)
        print(
            f"{n:>3} {mean_ttft:>9.3f}s {mean_queue:>9.3f}s "
            f"{max(r.ttft_s for r in batch):>9.3f}s"
        )

    for batch in responses.values():
        for response in batch:
            assert response.used_kv_cache
            ttft = response.ttft
            parts = (
                response.queueing_s + ttft.network_s + ttft.decode_s + ttft.compute_s
            )
            assert abs(response.ttft_s - parts) < 1e-9

    ttfts = [means[n][0] for n in CONCURRENCY_LEVELS]
    assert all(b >= a - 1e-9 for a, b in zip(ttfts, ttfts[1:]))
    # A lone request queues behind nothing; a full burst queues measurably.
    assert means[CONCURRENCY_LEVELS[0]][1] < 1e-9
    assert means[CONCURRENCY_LEVELS[-1]][1] > 1e-3

"""Figure 14: TTFT, FLOPs, offline-delay and storage breakdowns."""

from repro.experiments import run_figure14


def test_figure14_overheads(run_experiment):
    result = run_experiment(run_figure14, num_tokens=9_400)
    ttft = {r["method"]: r for r in result.filter(panel="ttft_breakdown")}
    # CacheGen's decode overhead is small relative to its network time and
    # negligible next to the text baseline's prefill compute.
    assert ttft["cachegen"]["decode_s"] < ttft["text"]["compute_s"] * 0.25
    flops = {r["method"]: r for r in result.filter(panel="flops")}
    assert flops["cachegen"]["decode_tflops"] < 0.1 * flops["text"]["prefill_tflops"]
    storage = {r["representation"]: r for r in result.filter(panel="storage")}
    # Storing all CacheGen versions costs no more than the 8-bit quantized cache.
    assert storage["cachegen-all-levels"]["size_gb"] < storage["quantized-8bit"]["size_gb"] * 1.2

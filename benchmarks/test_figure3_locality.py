"""Figure 3: original vs consecutive-delta value distributions (token locality)."""

from repro.experiments import run_figure3


def test_figure3_locality(run_experiment):
    result = run_experiment(run_figure3, num_contexts=2, context_token_cap=4_000)
    for row in result.rows:
        assert 2.0 < row["variance_ratio"] < 3.5

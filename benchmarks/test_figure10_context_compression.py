"""Figure 10: CacheGen composed with H2O and LLMLingua."""

from repro.experiments import run_figure10


def test_figure10_context_compression(run_experiment):
    result = run_experiment(
        run_figure10, models=("mistral-7b",), num_contexts=1, context_token_cap=6_000
    )
    rows = {row["method"]: row for row in result.rows}
    assert rows["cachegen+h2o"]["kv_size_mb"] < rows["h2o"]["kv_size_mb"] / 2.5
    assert rows["cachegen+llmlingua"]["kv_size_mb"] < rows["llmlingua"]["kv_size_mb"] / 2.5
    assert rows["cachegen+h2o"]["quality"] > rows["h2o"]["quality"] - 0.05

"""Table 2: dataset sizes and context length statistics."""

from repro.experiments import run_table2


def test_table2_datasets(run_experiment):
    result = run_experiment(run_table2)
    assert {row["dataset"] for row in result.rows} == {
        "longchat",
        "triviaqa",
        "narrativeqa",
        "wikitext",
    }

"""Figure 16: quality-of-experience (mean opinion score) comparison."""

from repro.experiments import run_figure16


def test_figure16_qoe(run_experiment):
    result = run_experiment(run_figure16, num_samples=3, bandwidth_gbps=3.0)
    for sample in sorted({row["sample"] for row in result.rows}):
        rows = {r["pipeline"]: r for r in result.filter(sample=sample)}
        assert rows["cachegen"]["mos"] >= rows["quantization"]["mos"]
        assert rows["cachegen"]["mos"] >= rows["original"]["mos"]

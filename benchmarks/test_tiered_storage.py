"""Tiered-storage smoke benchmark: hot:cold capacity ratio vs TTFT and cost.

A small, deterministic sweep of the per-node hot:cold split (fixed total
budget) through the event-driven concurrent engine.  Doubles as the CI check
for the storage hierarchy's headline behaviour: with a cold tier attached,
capacity pressure demotes instead of dropping, cold hits stay KV-served, and
shifting bytes to the cheap tier cuts the storage bill while TTFT degrades
gracefully rather than collapsing to re-prefill.
"""

from __future__ import annotations

from repro.experiments import run_tiered_storage

HOT_FRACTIONS = (1.0, 0.5, 0.25)
NUM_REQUESTS = 40


def test_tiered_storage_ratio_sweep(run_experiment):
    result = run_experiment(
        run_tiered_storage,
        hot_fractions=HOT_FRACTIONS,
        num_requests=NUM_REQUESTS,
        num_contexts=8,
        concurrency=4,
    )
    assert len(result.rows) == len(HOT_FRACTIONS)
    baseline = result.filter(hot_fraction=1.0)[0]
    for row in result.rows:
        # Every request is answered and the sweep reports the tier economics.
        assert row["hit_ratio"] + row["text_served"] / NUM_REQUESTS >= 0.99
        assert row["cost_usd_per_request"] > 0.0
    for row in result.rows:
        if row["hot_fraction"] == 1.0:
            continue
        # Demote-instead-of-drop: hot-tier pressure shows up as demotions and
        # cold hits; true drops only happen when the (bounded) cold tier
        # itself overflows, and must stay the exception, not the rule.
        assert row["demotions"] > 0
        assert row["demotions"] > row["evict_drops"]
        assert row["cold_hit_ratio"] > 0.0
        assert row["storage_usd_per_month"] < baseline["storage_usd_per_month"]

"""Table 1: KV cache size and accuracy of CacheGen vs baselines (Mistral-7B, LongChat)."""

from repro.experiments import run_table1


def test_table1_size_accuracy(run_experiment):
    result = run_experiment(run_table1, num_contexts=2, context_token_cap=6_000)
    rows = {row["technique"]: row for row in result.rows}
    assert rows["quant-8bit"]["kv_size_mb"] / rows["cachegen"]["kv_size_mb"] > 2.5
    assert rows["cachegen"]["accuracy"] > 0.95

"""Figure 9: KV cache size vs quality trade-off curves."""

from repro.experiments import run_figure9


def test_figure9_size_quality(run_experiment):
    result = run_experiment(
        run_figure9,
        pairs=(("mistral-7b", "longchat"),),
        num_contexts=1,
        context_token_cap=6_000,
    )
    rows = {row["method"]: row for row in result.rows}
    # CacheGen's default level is ~3-4x smaller than 8-bit quantization at
    # nearly the same quality.
    ratio = rows["quant-8bit"]["kv_size_mb"] / rows["cachegen-medium"]["kv_size_mb"]
    assert ratio > 2.5
    assert rows["cachegen-medium"]["relative_quality"] > 0.96
    # And it beats 4-bit quantization on both axes.
    assert rows["cachegen-medium"]["kv_size_mb"] < rows["quant-4bit"]["kv_size_mb"]

"""Figure 11: TTFT across a wide range of network bandwidths."""

from repro.experiments import run_figure11


def test_figure11_bandwidth_sweep(run_experiment):
    result = run_experiment(
        run_figure11, bandwidths_gbps=(0.4, 1.0, 3.0, 10.0, 100.0), num_tokens=9_600
    )
    for bandwidth in (0.4, 1.0, 3.0, 10.0):
        rows = {r["method"]: r for r in result.filter(bandwidth_gbps=bandwidth)}
        assert rows["cachegen"]["ttft_s"] < rows["quant-8bit"]["ttft_s"]
        assert rows["cachegen"]["ttft_s"] < rows["text"]["ttft_s"]

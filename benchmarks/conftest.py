"""Shared helper for the benchmark suite.

Every benchmark runs one experiment module (one table or figure of the paper)
through pytest-benchmark and prints the resulting rows, so the benchmark log
doubles as the reproduction of the paper's evaluation tables.

The settings used here are deliberately small (few contexts per point, some
context-length caps) so the whole suite runs in minutes on a laptop; increase
them for tighter estimates.
"""

from __future__ import annotations

from typing import Any, Callable

import pytest

from repro.experiments.common import ExperimentResult


@pytest.fixture()
def run_experiment(benchmark):
    """Run an experiment function under pytest-benchmark and print its rows."""

    def _run(func: Callable[..., ExperimentResult], **kwargs: Any) -> ExperimentResult:
        result = benchmark.pedantic(lambda: func(**kwargs), iterations=1, rounds=1)
        print()
        print(result.format_table())
        return result

    return _run

"""Figure 12: TTFT vs concurrent requests and vs context length."""

from repro.experiments import run_figure12_concurrency, run_figure12_context_length


def test_figure12_concurrency(run_experiment):
    levels = (1, 4, 8)
    result = run_experiment(
        run_figure12_concurrency, concurrency_levels=levels, num_tokens=9_600
    )
    rows_8 = {r["method"]: r for r in result.filter(concurrent_requests=8)}
    assert rows_8["cachegen"]["ttft_s"] < rows_8["text"]["ttft_s"]
    # Queueing is real at 8-way concurrency and part of the decomposition.
    assert rows_8["text"]["queueing_s"] > 0.0
    # The event-driven engine must yield monotonically non-decreasing TTFT
    # with concurrency for every method (no static gpu_share anywhere).
    for method in ("text", "quant-8bit", "cachegen"):
        ttfts = [
            result.filter(concurrent_requests=n, method=method)[0]["ttft_s"]
            for n in levels
        ]
        assert all(b >= a - 1e-9 for a, b in zip(ttfts, ttfts[1:]))


def test_figure12_context_length(run_experiment):
    result = run_experiment(
        run_figure12_context_length, context_lengths=(100, 1_000, 6_000, 15_000)
    )
    short = {r["method"]: r for r in result.filter(context_tokens=100)}
    long = {r["method"]: r for r in result.filter(context_tokens=15_000)}
    # Short contexts: CacheGen reverts to the text path, so it is never slower.
    assert short["cachegen"]["ttft_s"] <= short["text"]["ttft_s"] + 1e-9
    # Long contexts: the gain is large.
    assert long["text"]["ttft_s"] / long["cachegen"]["ttft_s"] > 2.0

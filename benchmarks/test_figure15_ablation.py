"""Figure 15: contribution of each idea in the KV encoder."""

from repro.experiments import run_figure15


def test_figure15_ablation(run_experiment):
    result = run_experiment(run_figure15, num_contexts=1, context_token_cap=6_000)
    rows = {row["variant"]: row for row in result.rows}
    assert rows["quant+ac"]["bits_per_element"] < rows["default-quant"]["bits_per_element"]
    assert rows["cachegen"]["quality"] >= rows["quant+ac"]["quality"]
    assert rows["cachegen"]["quality"] >= rows["quant+ac+change"]["quality"] - 1e-6

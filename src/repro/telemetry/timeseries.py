"""Windowed time series over a run's telemetry.

A whole-run :class:`~repro.serving.api.types.RunReport` answers "how did the
run go on average"; it cannot show the failure-instant TTFT spike, the
hit-ratio collapse after a node dies, or a shed storm building up.  The
:class:`TimeSeriesRecorder` makes degradation **time-local**: it aggregates
per-request samples and resource activity into tumbling simulated-time
windows (``[k·w, (k+1)·w)`` keyed by arrival time), each summarized as one
:class:`WindowStats` — arrival rate, shed count, TTFT count/mean/percentiles,
hot/cold/miss traffic, per-resource utilization and peak queue depth.

Exact-consistency guarantees (asserted by the tests):

* with a **single window** covering the whole run, the window's aggregates
  equal the ``RunReport`` summary exactly — same counts, same hit ratios, and
  bit-identical TTFT mean/percentiles, because samples are kept in recording
  order and summarized through the shared
  :func:`repro.metrics.stats.percentiles` helper;
* with **multiple windows**, the per-window counts sum to the whole-run
  totals, and concatenating the windows' samples reproduces the whole-run
  percentiles (percentiles are order-insensitive).

The recorder has two front doors: :meth:`TimeSeriesRecorder.from_run` builds
from served :class:`~repro.serving.api.types.ServeResponse` objects (plus
shed arrival times and, optionally, a tracer for resource lanes), which is
what the serving driver threads into ``RunReport.timeseries``;
:meth:`TimeSeriesRecorder.from_tracer` rebuilds the same series from a
:class:`~repro.telemetry.trace.Tracer` alone (root request spans, shed
instants, resource spans and queue-depth samples), which is what the
experiment CLI's ``--dashboard-out`` uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..metrics.stats import percentiles

__all__ = ["WindowStats", "TimeSeriesRecorder", "auto_window_s"]

#: Track prefixes that do not describe a contended resource: per-request
#: swimlanes and the driver's bookkeeping tracks.  Everything else (links,
#: GPU schedulers, storage nodes, tier channels) gets a utilization lane.
_NON_RESOURCE_PREFIXES = ("request:", "ingest", "admission", "cluster")

#: Percentile ranks every window summarizes (p95 rides along so a single
#: window recombines to the ``RunReport``'s p50/p95/p99 exactly).
DEFAULT_QS = (50.0, 90.0, 95.0, 99.0)


def auto_window_s(duration_s: float, target_windows: int = 60) -> float:
    """A 1/2/5-stepped window width giving roughly ``target_windows`` windows.

    Dashboards want enough windows to show dynamics but few enough that each
    holds a meaningful sample; snapping to 1/2/5 × 10^k keeps the time axis
    labels clean.
    """
    if target_windows <= 0:
        raise ValueError("target_windows must be positive")
    if duration_s <= 0:
        return 1.0
    raw = duration_s / target_windows
    exponent = math.floor(math.log10(raw))
    base = raw / 10**exponent
    for nice in (1.0, 2.0, 5.0, 10.0):
        if base <= nice:
            return nice * 10**exponent
    return 10.0 * 10**exponent  # pragma: no cover - base is always <= 10


@dataclass
class WindowStats:
    """Aggregates of one tumbling window ``[start_s, end_s)``."""

    index: int
    start_s: float
    end_s: float
    #: Offered arrivals in the window: served + shed.
    arrivals: int = 0
    served: int = 0
    kv_served: int = 0
    text_served: int = 0
    hot_served: int = 0
    cold_served: int = 0
    shed: int = 0
    #: Per-request TTFTs of the window, in recording order (kept raw so
    #: percentiles are exact, never re-aggregated approximations).
    ttft_samples: list[float] = field(default_factory=list, repr=False)
    #: Busy seconds per resource track within the window.
    busy_s: dict[str, float] = field(default_factory=dict)
    #: Peak sampled queue depth per resource track within the window.
    max_queue_depth: dict[str, float] = field(default_factory=dict)
    #: GPU fleet size at the end of the window (last ``pool_size`` sample;
    #: ``None`` when the run had no worker pool or the window saw no sample).
    pool_size: float | None = None

    # ------------------------------------------------------------------- rates
    @property
    def width_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def arrival_rate_rps(self) -> float:
        return self.arrivals / self.width_s if self.width_s > 0 else 0.0

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.kv_served / self.served if self.served else 0.0

    @property
    def hot_hit_ratio(self) -> float:
        return self.hot_served / self.served if self.served else 0.0

    @property
    def cold_hit_ratio(self) -> float:
        return self.cold_served / self.served if self.served else 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of served requests that degraded to the text path."""
        return self.text_served / self.served if self.served else 0.0

    # -------------------------------------------------------------------- TTFT
    @property
    def ttft_count(self) -> int:
        return len(self.ttft_samples)

    @property
    def ttft_mean_s(self) -> float:
        if not self.ttft_samples:
            return 0.0
        return float(np.asarray(self.ttft_samples, dtype=np.float64).mean())

    @property
    def ttft_max_s(self) -> float:
        return max(self.ttft_samples) if self.ttft_samples else 0.0

    def ttft_percentile(self, q: float) -> float:
        """One TTFT percentile of the window (0.0 when nothing was served)."""
        return percentiles(self.ttft_samples, (q,))[0]

    def violations(self, threshold_s: float) -> int:
        """Served requests whose TTFT exceeded ``threshold_s``."""
        return sum(1 for ttft in self.ttft_samples if ttft > threshold_s)

    # --------------------------------------------------------------- resources
    def utilization(self, track: str) -> float:
        """Busy fraction of one resource track over the window."""
        if self.width_s <= 0:
            return 0.0
        return self.busy_s.get(track, 0.0) / self.width_s

    def summary(self, qs: Sequence[float] = DEFAULT_QS) -> dict[str, Any]:
        """The window as one plain JSON-serializable dict."""
        out: dict[str, Any] = {
            "index": self.index,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "arrivals": self.arrivals,
            "served": self.served,
            "kv_served": self.kv_served,
            "text_served": self.text_served,
            "hot_served": self.hot_served,
            "cold_served": self.cold_served,
            "shed": self.shed,
            "arrival_rate_rps": self.arrival_rate_rps,
            "hit_ratio": self.hit_ratio,
            "ttft_count": self.ttft_count,
            "ttft_mean_s": self.ttft_mean_s,
            "ttft_max_s": self.ttft_max_s,
            "utilization": {
                track: self.utilization(track) for track in sorted(self.busy_s)
            },
            "max_queue_depth": dict(sorted(self.max_queue_depth.items())),
        }
        if self.pool_size is not None:
            out["pool_size"] = self.pool_size
        ranks = percentiles(self.ttft_samples, qs)
        for q, value in zip(qs, ranks):
            out[f"ttft_p{q:g}_s"] = value
        return out


class TimeSeriesRecorder:
    """Aggregates request/shed/resource events into tumbling windows.

    Feed it events (`record_response` / `record_shed` / `record_busy` /
    `record_queue_depth`) or build it whole from a finished run
    (:meth:`from_run`) or a tracer (:meth:`from_tracer`); then read
    :meth:`windows` (a contiguous series — quiet windows are materialized
    empty, not skipped) and :meth:`totals` (the whole-run recombination).

    Example
    -------
    >>> recorder = TimeSeriesRecorder.from_tracer(tracer, window_s=0.5)  # doctest: +SKIP
    >>> [window.ttft_p95_s for window in recorder.windows()]  # doctest: +SKIP
    """

    def __init__(self, window_s: float, *, qs: Sequence[float] = DEFAULT_QS) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self.qs = tuple(qs)
        self._windows: dict[int, WindowStats] = {}
        self._max_index = -1

    # ------------------------------------------------------------------ window
    def window_index(self, at_s: float) -> int:
        """The tumbling-window index of a timestamp (clamped at zero)."""
        if at_s <= 0:
            return 0
        return int(at_s // self.window_s)

    def _window(self, index: int) -> WindowStats:
        window = self._windows.get(index)
        if window is None:
            window = WindowStats(
                index=index,
                start_s=index * self.window_s,
                end_s=(index + 1) * self.window_s,
            )
            self._windows[index] = window
            if index > self._max_index:
                self._max_index = index
        return window

    def extend_to(self, at_s: float) -> None:
        """Ensure the series covers ``[0, at_s)`` (for trailing quiet time)."""
        if at_s <= 0:
            return
        self._window(max(int(math.ceil(at_s / self.window_s)) - 1, 0))

    # ------------------------------------------------------------------ record
    def record_request(
        self,
        arrival_s: float,
        ttft_s: float,
        *,
        used_kv_cache: bool,
        served_tier: str | None = None,
    ) -> None:
        """One served request, keyed to its arrival window."""
        window = self._window(self.window_index(arrival_s))
        window.arrivals += 1
        window.served += 1
        window.ttft_samples.append(float(ttft_s))
        if used_kv_cache:
            window.kv_served += 1
        else:
            window.text_served += 1
        if served_tier == "hot":
            window.hot_served += 1
        elif served_tier == "cold":
            window.cold_served += 1

    def record_response(self, response) -> None:
        """One :class:`~repro.serving.api.types.ServeResponse` (duck-typed)."""
        self.record_request(
            response.arrival_s,
            response.ttft_s,
            used_kv_cache=response.used_kv_cache,
            served_tier=getattr(response, "served_tier", None),
        )

    def record_shed(self, at_s: float) -> None:
        """One arrival the admission policy refused."""
        window = self._window(self.window_index(at_s))
        window.arrivals += 1
        window.shed += 1

    def record_busy(self, track: str, start_s: float, dur_s: float) -> None:
        """One busy interval of a resource, split across window boundaries."""
        if dur_s <= 0:
            return
        cursor = max(start_s, 0.0)
        end = max(start_s, 0.0) + dur_s
        while cursor < end:
            index = self.window_index(cursor)
            window = self._window(index)
            if window.end_s <= cursor:
                # float division floored the cursor into the window it ends:
                # the interval from here on belongs to the next window.
                window = self._window(index + 1)
            slice_end = min(end, window.end_s)
            window.busy_s[track] = window.busy_s.get(track, 0.0) + (slice_end - cursor)
            cursor = slice_end

    def record_queue_depth(self, track: str, at_s: float, value: float) -> None:
        """One queue-depth sample of a resource track."""
        window = self._window(self.window_index(at_s))
        current = window.max_queue_depth.get(track)
        if current is None or value > current:
            window.max_queue_depth[track] = float(value)

    def record_pool_size(self, at_s: float, value: float) -> None:
        """One GPU-fleet size sample (samples arrive in time order, so the
        last one of a window is the size the window ended at)."""
        window = self._window(self.window_index(at_s))
        window.pool_size = float(value)

    # ----------------------------------------------------------------- queries
    def windows(self) -> list[WindowStats]:
        """The contiguous window series from t=0 through the last event."""
        if self._max_index < 0:
            return []
        return [self._window(index) for index in range(self._max_index + 1)]

    def resource_tracks(self) -> list[str]:
        """Every resource track any window saw, sorted."""
        tracks: set[str] = set()
        for window in self._windows.values():
            tracks.update(window.busy_s)
            tracks.update(window.max_queue_depth)
        return sorted(tracks)

    @property
    def duration_s(self) -> float:
        """Extent of the covered series (end of the last window)."""
        return (self._max_index + 1) * self.window_s if self._max_index >= 0 else 0.0

    def totals(self) -> dict[str, Any]:
        """Recombine every window into whole-run aggregates.

        The TTFT summary concatenates the windows' raw samples (in window
        order, which for a single window is recording order) and summarizes
        them through the same shared percentile helper the ``RunReport``
        uses — so a single window covering the run matches the report
        exactly, and multi-window percentiles match because percentiles are
        order-insensitive.
        """
        windows = self.windows()
        ttfts: list[float] = []
        for window in windows:
            ttfts.extend(window.ttft_samples)
        served = sum(w.served for w in windows)
        shed = sum(w.shed for w in windows)
        kv = sum(w.kv_served for w in windows)
        arr = np.asarray(ttfts, dtype=np.float64)
        p50, p95, p99 = percentiles(ttfts, (50.0, 95.0, 99.0))
        return {
            "num_requests": served + shed,
            "served": served,
            "shed": shed,
            "kv_served": kv,
            "text_served": sum(w.text_served for w in windows),
            "hot_served": sum(w.hot_served for w in windows),
            "cold_served": sum(w.cold_served for w in windows),
            "hit_ratio": kv / served if served else 0.0,
            "hot_hit_ratio": (
                sum(w.hot_served for w in windows) / served if served else 0.0
            ),
            "cold_hit_ratio": (
                sum(w.cold_served for w in windows) / served if served else 0.0
            ),
            "ttft_count": len(ttfts),
            "ttft_mean_s": float(arr.mean()) if arr.size else 0.0,
            "ttft_max_s": float(arr.max()) if arr.size else 0.0,
            "ttft_p50_s": p50,
            "ttft_p95_s": p95,
            "ttft_p99_s": p99,
        }

    # ------------------------------------------------------------ construction
    @classmethod
    def from_run(
        cls,
        responses: Sequence,
        *,
        window_s: float,
        shed_times: Sequence[float] = (),
        tracer=None,
        duration_s: float | None = None,
        qs: Sequence[float] = DEFAULT_QS,
    ) -> "TimeSeriesRecorder":
        """Build the series a serving run produced.

        ``responses`` are recorded in the given order (the consistency
        guarantee relies on it); ``shed_times`` are the arrival instants of
        refused requests; ``tracer`` (optional) contributes the resource
        lanes; ``duration_s`` extends trailing quiet time.
        """
        recorder = cls(window_s, qs=qs)
        for response in responses:
            recorder.record_response(response)
        for at_s in shed_times:
            recorder.record_shed(at_s)
        if tracer is not None and getattr(tracer, "enabled", False):
            recorder._record_tracer_resources(tracer)
        if duration_s is not None:
            recorder.extend_to(duration_s)
        return recorder

    @classmethod
    def from_tracer(
        cls,
        tracer,
        *,
        window_s: float,
        qs: Sequence[float] = DEFAULT_QS,
    ) -> "TimeSeriesRecorder":
        """Rebuild the series from a tracer alone (no responses needed).

        Served requests come from the root ``request``-category spans (start
        is the arrival, duration the TTFT, hit/tier from the span
        annotations); sheds from the driver's ``shed`` instants; resource
        lanes from the resource-track spans and queue-depth samples.
        """
        recorder = cls(window_s, qs=qs)
        for span in tracer.spans:
            if span.parent is None and span.category == "request":
                tier = span.args.get("tier")
                if tier is None:
                    tier = span.args.get("served_tier")
                recorder.record_request(
                    span.start_s,
                    span.dur_s,
                    used_kv_cache=bool(span.args.get("used_kv_cache", True)),
                    served_tier=tier,
                )
        for instant in tracer.instants:
            if instant.name == "shed":
                recorder.record_shed(instant.at_s)
        recorder._record_tracer_resources(tracer)
        recorder.extend_to(getattr(tracer, "now", 0.0))
        return recorder

    def _record_tracer_resources(self, tracer) -> None:
        for span in tracer.spans:
            if span.dur_s > 0 and _is_resource_track(span.track):
                self.record_busy(span.track, span.start_s, span.dur_s)
        for sample in tracer.samples:
            if sample.name == "pool_size":
                # Fleet-size counter samples are a series of their own, not a
                # queue depth of the "gpu-pool" track.
                self.record_pool_size(sample.at_s, sample.value)
            elif _is_resource_track(sample.track):
                self.record_queue_depth(sample.track, sample.at_s, sample.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeSeriesRecorder(window_s={self.window_s}, "
            f"windows={self._max_index + 1})"
        )


def _is_resource_track(track: str) -> bool:
    return not any(track.startswith(prefix) for prefix in _NON_RESOURCE_PREFIXES)

"""Simulated-clock tracing: spans, instant events and counter samples.

A :class:`Tracer` records what happened *when* on the simulation clock:

* :class:`Span` — a named interval on a track (one request's transfer, one
  batched GPU launch).  Spans nest: a request's root span owns child spans
  for admission wait, link wait, transfer, GPU-queue wait, decode and
  compute.  Durations are stored explicitly (not derived from endpoints), so
  a span built from the simulator's recorded wait equals that wait exactly —
  the TTFT-consistency tests rely on this.
* instant events — point-in-time markers (an eviction, a demotion, a
  promotion, a failover, a shed arrival);
* counter samples — a time series of a level (link/GPU queue depth), which
  the Chrome-trace export renders as counter tracks.

Tracks are plain strings (``"gpu"``, ``"link:node-0"``, ``"request:3"``);
the exporter maps them to Perfetto process/thread rows.  The tracer also owns
a :class:`~repro.telemetry.registry.MetricsRegistry`, so one object carries a
run's full telemetry.

Untraced runs use :data:`NULL_TRACER` (a :class:`NullTracer`): every
instrumentation site guards on ``tracer is not None and tracer.enabled``
before building any event, so the untraced hot path pays a single attribute
test and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .registry import MetricsRegistry

__all__ = [
    "QUEUEING",
    "TRANSFER",
    "DECODE",
    "COMPUTE",
    "Span",
    "InstantEvent",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "emit_timeline_spans",
    "emit_breakdown_spans",
]

#: Span categories mirroring the TTFT decomposition; the consistency tests
#: sum span durations per category and compare against the breakdown fields.
QUEUEING = "queueing"
TRANSFER = "transfer"
DECODE = "decode"
COMPUTE = "compute"


@dataclass
class Span:
    """One named interval on one track, possibly with nested children."""

    name: str
    track: str
    start_s: float
    dur_s: float = 0.0
    category: str = ""
    request_id: int | None = None
    args: dict[str, Any] = field(default_factory=dict)
    parent: "Span | None" = None
    children: list["Span"] = field(default_factory=list)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s

    def end(self, at_s: float) -> "Span":
        """Close the span at ``at_s`` (clamped so durations stay non-negative)."""
        self.dur_s = max(at_s - self.start_s, 0.0)
        return self

    def annotate(self, **args: Any) -> "Span":
        self.args.update(args)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class InstantEvent:
    """A point-in-time marker on a track (eviction, failover, shed, ...)."""

    name: str
    track: str
    at_s: float
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a level (queue depth) on a track's counter series."""

    name: str
    track: str
    at_s: float
    value: float


class Tracer:
    """Collects spans, instants and counter samples on the simulated clock.

    The tracer holds a soft clock (:attr:`now`) that callers outside the
    event simulation (the driver, storage hooks) advance to the arrival time
    they are processing, so un-simulated events (ingests, evictions during an
    ingest) land at a meaningful point on the timeline.  Inside the event
    simulation, emitters pass explicit times read off the
    :class:`~repro.serving.concurrent.events.SimClock`.

    Example
    -------
    >>> tracer = Tracer()
    >>> report = serve(spec, requests=requests, tracer=tracer)  # doctest: +SKIP
    >>> tracer.spans_for_request(0)  # doctest: +SKIP
    """

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.samples: list[CounterSample] = []
        self.now = 0.0
        self._tracks: dict[str, None] = {}
        self._next_request_id = 0

    # ------------------------------------------------------------------- clock
    def advance_to(self, at_s: float) -> None:
        """Move the soft clock forward (never backward)."""
        if at_s > self.now:
            self.now = at_s

    def new_request_id(self) -> int:
        """Claim the next run-unique request id (stable across segments)."""
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    # ------------------------------------------------------------------ tracks
    def register_track(self, track: str) -> None:
        self._tracks.setdefault(track, None)

    @property
    def tracks(self) -> list[str]:
        """Every track ever written to, in first-use order."""
        return list(self._tracks)

    # ------------------------------------------------------------------- emits
    def span(
        self,
        name: str,
        *,
        track: str,
        start_s: float | None = None,
        dur_s: float | None = None,
        end_s: float | None = None,
        category: str = "",
        request_id: int | None = None,
        parent: Span | None = None,
        **args: Any,
    ) -> Span:
        """Record a span; pass ``dur_s`` (authoritative) or ``end_s``."""
        start = self.now if start_s is None else start_s
        if dur_s is None:
            dur_s = max(end_s - start, 0.0) if end_s is not None else 0.0
        if dur_s < 0:
            raise ValueError("span durations must be non-negative")
        span = Span(
            name=name,
            track=track,
            start_s=start,
            dur_s=dur_s,
            category=category,
            request_id=request_id if request_id is not None else (
                parent.request_id if parent is not None else None
            ),
            args=dict(args),
            parent=parent,
        )
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        self.register_track(track)
        return span

    def instant(
        self,
        name: str,
        *,
        track: str,
        at_s: float | None = None,
        category: str = "",
        **args: Any,
    ) -> InstantEvent:
        event = InstantEvent(
            name=name,
            track=track,
            at_s=self.now if at_s is None else at_s,
            category=category,
            args=dict(args),
        )
        self.instants.append(event)
        self.register_track(track)
        return event

    def sample(
        self, name: str, value: float, *, track: str, at_s: float | None = None
    ) -> None:
        self.samples.append(
            CounterSample(
                name=name,
                track=track,
                at_s=self.now if at_s is None else at_s,
                value=float(value),
            )
        )
        self.register_track(track)

    # ----------------------------------------------------------------- queries
    def spans_on(self, track: str) -> list[Span]:
        return [span for span in self.spans if span.track == track]

    def spans_for_request(self, request_id: int) -> list[Span]:
        return [span for span in self.spans if span.request_id == request_id]

    def root_spans(self) -> list[Span]:
        """Spans with no parent (one per traced request, plus resource spans)."""
        return [span for span in self.spans if span.parent is None]

    def find_spans(self, name: str | None = None, category: str | None = None) -> list[Span]:
        return [
            span
            for span in self.spans
            if (name is None or span.name == name)
            and (category is None or span.category == category)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self.spans)}, instants={len(self.instants)}, "
            f"samples={len(self.samples)}, tracks={len(self._tracks)})"
        )


class _NullSpan:
    """The do-nothing span handle the :class:`NullTracer` returns."""

    __slots__ = ()
    name = ""
    track = ""
    start_s = 0.0
    dur_s = 0.0
    end_s = 0.0
    category = ""
    request_id = None
    args: dict[str, Any] = {}
    parent = None
    children: tuple = ()

    def end(self, at_s: float) -> "_NullSpan":
        return self

    def annotate(self, **args: Any) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())


class _NullMetric:
    """Accepts every update and records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0


class _NullRegistry:
    """Registry facade whose metrics all discard their updates."""

    _METRIC = _NullMetric()

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return self._METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return self._METRIC

    def histogram(self, name: str, help: str = "") -> _NullMetric:
        return self._METRIC

    def snapshot(self) -> dict:
        return {}


class NullTracer:
    """The zero-overhead tracer: same surface, records nothing.

    ``enabled`` is False, so instrumentation sites that guard on it skip
    event construction entirely; calls that do land here are no-ops.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = _NullRegistry()
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.samples: list[CounterSample] = []
        self.now = 0.0

    def advance_to(self, at_s: float) -> None:
        pass

    def new_request_id(self) -> int:
        return 0

    def register_track(self, track: str) -> None:
        pass

    @property
    def tracks(self) -> list[str]:
        return []

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **kwargs: Any) -> None:
        return None

    def sample(self, name: str, value: float, **kwargs: Any) -> None:
        return None

    def spans_on(self, track: str) -> list[Span]:
        return []

    def spans_for_request(self, request_id: int) -> list[Span]:
        return []

    def root_spans(self) -> list[Span]:
        return []

    def find_spans(self, name: str | None = None, category: str | None = None) -> list[Span]:
        return []


_NULL_SPAN = _NullSpan()

#: Shared do-nothing tracer for untraced runs.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------- helpers
def emit_timeline_spans(
    tracer: Tracer,
    timeline,
    *,
    label: str,
    request_id: int | None = None,
    tier_config: str = "cold-tier",
) -> Span:
    """Build one request's span tree from an event-simulator timeline.

    ``timeline`` is duck-typed against
    :class:`~repro.serving.concurrent.simulator.RequestTimeline` (this module
    must not import the serving package).  Child span durations are copied
    from the recorded waits/durations, so summing them per category
    reproduces the request's ``QueueingTTFTBreakdown`` components exactly.
    """
    rid = tracer.new_request_id() if request_id is None else request_id
    track = f"request:{rid}"
    root = tracer.span(
        f"request {label}",
        track=track,
        start_s=timeline.arrival_s,
        dur_s=timeline.finish_s - timeline.arrival_s,
        category="request",
        request_id=rid,
        context_id=label,
    )
    if timeline.admission_wait_s > 0:
        tracer.span(
            "admission wait",
            track=track,
            start_s=timeline.arrival_s,
            dur_s=timeline.admission_wait_s,
            category=QUEUEING,
            parent=root,
        )
    for stage in timeline.stages:
        if stage.link_wait_s > 0:
            tracer.span(
                "link wait",
                track=track,
                start_s=stage.enqueued_s,
                dur_s=stage.link_wait_s,
                category=QUEUEING,
                parent=root,
                config=stage.config,
            )
        transfer_dur = stage.transfer_end_s - stage.transfer_start_s
        if stage.num_bytes > 0:
            name = "tier read" if stage.config == tier_config else f"transfer {stage.config}"
            tracer.span(
                name,
                track=track,
                start_s=stage.transfer_start_s,
                dur_s=transfer_dur,
                category=TRANSFER,
                parent=root,
                bytes=stage.num_bytes,
                config=stage.config,
            )
        if stage.gpu_kind is not None:
            if stage.gpu_wait_s > 0:
                tracer.span(
                    "gpu wait",
                    track=track,
                    start_s=stage.transfer_end_s,
                    dur_s=stage.gpu_wait_s,
                    category=QUEUEING,
                    parent=root,
                    config=stage.config,
                )
            category = DECODE if stage.gpu_kind == "decode" else COMPUTE
            tracer.span(
                stage.gpu_kind,
                track=track,
                start_s=stage.ready_at_s - stage.gpu_busy_s,
                dur_s=stage.gpu_busy_s,
                category=category,
                parent=root,
                config=stage.config,
            )
    return root


def emit_breakdown_spans(
    tracer: Tracer,
    *,
    label: str,
    arrival_s: float,
    ttft,
    request_id: int | None = None,
) -> Span:
    """Build a request's span tree from a sequential TTFT breakdown.

    Sequential backends have no event schedule — only the decomposition
    (network / decode / compute, optionally queueing).  The components are
    laid out back to back from the arrival, which is exactly the sequential
    serving order.
    """
    rid = tracer.new_request_id() if request_id is None else request_id
    track = f"request:{rid}"
    total_s = ttft.total_s
    root = tracer.span(
        f"request {label}",
        track=track,
        start_s=arrival_s,
        dur_s=total_s,
        category="request",
        request_id=rid,
        context_id=label,
    )
    cursor = arrival_s
    components = [
        ("queueing", getattr(ttft, "queueing_s", 0.0), QUEUEING),
        ("transfer", ttft.network_s, TRANSFER),
        ("decode", ttft.decode_s, DECODE),
        ("compute", ttft.compute_s, COMPUTE),
    ]
    for name, dur_s, category in components:
        if dur_s > 0:
            tracer.span(
                name,
                track=track,
                start_s=cursor,
                dur_s=dur_s,
                category=category,
                parent=root,
            )
            cursor += dur_s
    return root

"""Labeled metrics primitives and the per-run registry.

Three primitive kinds cover everything the serving stack counts:

* :class:`Counter` — a monotonically increasing total (bytes moved, GPU busy
  seconds, evictions);
* :class:`Gauge` — a sampled level (queue depth); the gauge keeps the last,
  minimum and maximum observed value per label set, because for contention
  analysis the *peak* backlog matters as much as the final one;
* :class:`Histogram` — a distribution (per-request queueing delay); its
  summary reuses the shared :func:`repro.metrics.stats.percentiles` helper so
  telemetry percentiles can never drift from the report percentiles.

All three are **labeled**: ``counter.inc(1, link="node-0")`` and
``counter.inc(1, link="node-1")`` accumulate independently, which is how one
metric name covers a whole fleet of links or GPU schedulers.

A :class:`MetricsRegistry` owns the metrics of one run (get-or-create by
name, kind-checked) and renders them as one plain-dict :meth:`snapshot` that
reports, tests and the JSONL export can serialize directly.
"""

from __future__ import annotations

import random
import re
from typing import Iterator, Mapping, Sequence

from ..metrics.stats import percentiles

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Canonical form of one label set: sorted ``(key, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _label_str(key: LabelKey) -> str:
    """Render a label set the way the snapshot keys it (``""`` when unlabeled)."""
    return ",".join(f"{name}={value}" for name, value in key)


class _Metric:
    """Shared name/help plumbing of the three primitives."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Metric):
    """A labeled, monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (non-negative) to the label set's total."""
        if amount < 0:
            raise ValueError("counters only go up; amount must be non-negative")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current total of one label set (0.0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        return {_label_str(key): value for key, value in sorted(self._values.items())}


class Gauge(_Metric):
    """A labeled sampled level, tracking last / min / max / sample count."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, dict[str, float]] = {}

    def set(self, value: float, **labels: object) -> None:
        """Record the current level of one label set."""
        key = _label_key(labels)
        entry = self._values.get(key)
        if entry is None:
            self._values[key] = {
                "last": float(value),
                "min": float(value),
                "max": float(value),
                "samples": 1,
            }
            return
        entry["last"] = float(value)
        entry["min"] = min(entry["min"], float(value))
        entry["max"] = max(entry["max"], float(value))
        entry["samples"] += 1

    def value(self, **labels: object) -> float:
        """Last sampled level (0.0 if never set)."""
        entry = self._values.get(_label_key(labels))
        return entry["last"] if entry is not None else 0.0

    def max(self, **labels: object) -> float:
        """Peak sampled level (0.0 if never set)."""
        entry = self._values.get(_label_key(labels))
        return entry["max"] if entry is not None else 0.0

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {_label_str(key): dict(entry) for key, entry in sorted(self._values.items())}


class Histogram(_Metric):
    """A labeled sample distribution summarized by the shared percentiles.

    By default every observation is kept (exact percentiles).  For
    million-request runs pass ``max_samples`` to bound memory: each label set
    keeps a uniform reservoir of that size (Vitter's Algorithm R), seeded
    from the metric name and label set so summaries are deterministic across
    runs.  Count / mean / max stay exact in reservoir mode — they come from
    running accumulators — only the percentiles are estimated from the
    reservoir.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        qs: Sequence[float] = (50.0, 95.0, 99.0),
        max_samples: int | None = None,
    ) -> None:
        super().__init__(name, help)
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive (or None for exact)")
        self.qs = tuple(qs)
        self.max_samples = max_samples
        self._samples: dict[LabelKey, list[float]] = {}
        self._observed: dict[LabelKey, int] = {}
        self._sum: dict[LabelKey, float] = {}
        self._max: dict[LabelKey, float] = {}
        self._rngs: dict[LabelKey, random.Random] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation for a label set."""
        key = _label_key(labels)
        value = float(value)
        seen = self._observed.get(key, 0) + 1
        self._observed[key] = seen
        self._sum[key] = self._sum.get(key, 0.0) + value
        current_max = self._max.get(key)
        if current_max is None or value > current_max:
            self._max[key] = value
        samples = self._samples.setdefault(key, [])
        if self.max_samples is None or len(samples) < self.max_samples:
            samples.append(value)
            return
        rng = self._rngs.get(key)
        if rng is None:
            # Seed by identity, not by time: same run -> same reservoir.
            rng = random.Random(f"{self.name}|{_label_str(key)}")
            self._rngs[key] = rng
        slot = rng.randrange(seen)
        if slot < self.max_samples:
            samples[slot] = value

    def count(self, **labels: object) -> int:
        """Observations recorded (exact even when the reservoir is bounded)."""
        return self._observed.get(_label_key(labels), 0)

    def values(self, **labels: object) -> list[float]:
        """The retained observations of one label set (a copy).

        In exact mode this is every observation; in reservoir mode it is the
        current (at most ``max_samples``-sized) uniform sample.
        """
        return list(self._samples.get(_label_key(labels), ()))

    def summary(self, **labels: object) -> dict[str, float]:
        """Count / mean / max plus the configured percentiles of a label set.

        Zero observations yield an all-zero summary (idle resources must
        snapshot cleanly), mirroring ``summarize_latencies`` on empty input.
        """
        key = _label_key(labels)
        samples = self._samples.get(key, [])
        seen = self._observed.get(key, 0)
        ranks = percentiles(samples, self.qs)
        summary = {
            "count": seen,
            "mean": self._sum.get(key, 0.0) / seen if seen else 0.0,
            "max": self._max.get(key, 0.0),
        }
        for q, value in zip(self.qs, ranks):
            summary[f"p{q:g}"] = value
        return summary

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {
            _label_str(key): self.summary(**dict(key))
            for key in sorted(self._samples)
        }


class MetricsRegistry:
    """The named metrics of one run: get-or-create, kind-checked, snapshotable."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls: type[_Metric], name: str, help: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", max_samples: int | None = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, max_samples=max_samples)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a histogram")
        return metric

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def snapshot(self) -> dict[str, dict]:
        """All metrics as one plain, JSON-serializable dict.

        Shape: ``{name: {"type": kind, "help": ..., "values": {...}}}`` where
        ``values`` maps rendered label sets (``"link=node-0"``) to totals
        (counters), level stats (gauges) or percentile summaries (histograms).
        """
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "values": metric.snapshot(),
            }
            for name, metric in sorted(self._metrics.items())
        }

    def to_prometheus_text(self) -> str:
        """The registry in the Prometheus text exposition format.

        Counters and gauges map directly; histograms render as summaries
        (``quantile``-labeled series plus ``_sum``/``_count``).  Metric and
        label order is deterministic (sorted), matching :meth:`snapshot`.
        """
        lines: list[str] = []
        type_map = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}
        for name, metric in sorted(self._metrics.items()):
            prom = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {prom} {_prom_escape_help(metric.help)}")
            lines.append(f"# TYPE {prom} {type_map[metric.kind]}")
            if isinstance(metric, Counter):
                for key, value in sorted(metric._values.items()):
                    lines.append(f"{prom}{_prom_labels(key)} {_prom_value(value)}")
            elif isinstance(metric, Gauge):
                for key, entry in sorted(metric._values.items()):
                    lines.append(
                        f"{prom}{_prom_labels(key)} {_prom_value(entry['last'])}"
                    )
            elif isinstance(metric, Histogram):
                for key in sorted(metric._samples):
                    summary = metric.summary(**dict(key))
                    for q in metric.qs:
                        quantile = ("quantile", f"{q / 100.0:g}")
                        lines.append(
                            f"{prom}{_prom_labels(key + (quantile,))}"
                            f" {_prom_value(summary[f'p{q:g}'])}"
                        )
                    lines.append(
                        f"{prom}_sum{_prom_labels(key)}"
                        f" {_prom_value(metric._sum.get(key, 0.0))}"
                    )
                    lines.append(
                        f"{prom}_count{_prom_labels(key)} {summary['count']}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    prom = _PROM_INVALID.sub("_", name)
    if prom and prom[0].isdigit():
        prom = "_" + prom
    return prom


def _prom_labels(key: LabelKey) -> str:
    if not key:
        return ""
    pairs = ",".join(
        f'{_PROM_LABEL_INVALID.sub("_", label)}="{_prom_escape_value(value)}"'
        for label, value in key
    )
    return "{" + pairs + "}"


def _prom_escape_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_value(value: float) -> str:
    return f"{value:g}"

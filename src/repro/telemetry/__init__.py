"""Full-stack simulation telemetry: metrics, spans and timeline export.

The package has three layers:

* :mod:`~repro.telemetry.registry` — labeled Counter / Gauge / Histogram
  primitives and the per-run :class:`MetricsRegistry`;
* :mod:`~repro.telemetry.trace` — the simulated-clock :class:`Tracer`
  recording nested per-request :class:`Span` trees, instant events and
  counter samples, plus the zero-overhead :class:`NullTracer`;
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON (load the file at
  ui.perfetto.dev) and a structured JSONL event log;
* :mod:`~repro.telemetry.timeseries` — tumbling simulated-time windows
  (:class:`TimeSeriesRecorder` / :class:`WindowStats`) that make degradation
  time-local while recombining exactly to the whole-run report;
* :mod:`~repro.telemetry.slo` — declarative :class:`SLOObjective` SLOs, the
  multi-window burn-rate :class:`AlertEngine` and structural detectors;
* :mod:`~repro.telemetry.dashboard` — a dependency-free self-contained HTML
  dashboard (:func:`render_dashboard` / :func:`write_dashboard`) plus a
  two-run diff view.

Typical use::

    from repro.serving.api import ServingSpec, serve
    from repro.telemetry import SLOObjective, Tracer, write_dashboard

    tracer = Tracer()
    report = serve(spec, workload, tracer=tracer,
                   slos=[SLOObjective("ttft", ttft_s=0.5)])
    write_dashboard("out/dashboard.html", report.timeseries,
                    alerts=report.alerts)
"""

from .dashboard import render_dashboard, render_diff_dashboard, write_dashboard
from .export import (
    chrome_trace_events,
    iter_jsonl_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .slo import (
    Alert,
    AlertEngine,
    BurnRateRule,
    HitRatioCollapse,
    QueueDepthBuildup,
    ShedStorm,
    SLOObjective,
    default_burn_rules,
    default_detectors,
)
from .timeseries import TimeSeriesRecorder, WindowStats, auto_window_s
from .trace import (
    COMPUTE,
    DECODE,
    NULL_TRACER,
    QUEUEING,
    TRANSFER,
    CounterSample,
    InstantEvent,
    NullTracer,
    Span,
    Tracer,
    emit_breakdown_spans,
    emit_timeline_spans,
)

__all__ = [
    "COMPUTE",
    "DECODE",
    "NULL_TRACER",
    "QUEUEING",
    "TRANSFER",
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "HitRatioCollapse",
    "InstantEvent",
    "MetricsRegistry",
    "NullTracer",
    "QueueDepthBuildup",
    "SLOObjective",
    "ShedStorm",
    "Span",
    "TimeSeriesRecorder",
    "Tracer",
    "WindowStats",
    "auto_window_s",
    "chrome_trace_events",
    "default_burn_rules",
    "default_detectors",
    "emit_breakdown_spans",
    "emit_timeline_spans",
    "iter_jsonl_events",
    "render_dashboard",
    "render_diff_dashboard",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
]

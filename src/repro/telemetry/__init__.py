"""Full-stack simulation telemetry: metrics, spans and timeline export.

The package has three layers:

* :mod:`~repro.telemetry.registry` — labeled Counter / Gauge / Histogram
  primitives and the per-run :class:`MetricsRegistry`;
* :mod:`~repro.telemetry.trace` — the simulated-clock :class:`Tracer`
  recording nested per-request :class:`Span` trees, instant events and
  counter samples, plus the zero-overhead :class:`NullTracer`;
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON (load the file at
  ui.perfetto.dev) and a structured JSONL event log.

Typical use::

    from repro.serving.api import ServingSpec, serve
    from repro.telemetry import Tracer, write_chrome_trace

    tracer = Tracer()
    report = serve(spec, workload, tracer=tracer)
    write_chrome_trace(tracer, "out/trace.json")
"""

from .export import (
    chrome_trace_events,
    iter_jsonl_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    COMPUTE,
    DECODE,
    NULL_TRACER,
    QUEUEING,
    TRANSFER,
    CounterSample,
    InstantEvent,
    NullTracer,
    Span,
    Tracer,
    emit_breakdown_spans,
    emit_timeline_spans,
)

__all__ = [
    "COMPUTE",
    "DECODE",
    "NULL_TRACER",
    "QUEUEING",
    "TRANSFER",
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "emit_breakdown_spans",
    "emit_timeline_spans",
    "iter_jsonl_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

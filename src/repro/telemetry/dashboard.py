"""Self-contained HTML dashboard for a windowed run series.

:func:`render_dashboard` turns a :class:`~repro.telemetry.timeseries.
TimeSeriesRecorder` (or a plain window list) plus the
:class:`~repro.telemetry.slo.Alert` list into one dependency-free HTML page:
every chart is inline SVG, every style an inline ``<style>`` block — no
scripts, no fonts, no external ``src=``/``href=`` references, so the file can
be attached to a CI run or mailed around and still render.  Panels:

* headline stat tiles (requests, shed, hit ratio, TTFT p50/p99, alerts);
* traffic — offered arrival rate with the shed band;
* TTFT percentile ribbons (p50/p90/p99 on an ordinal blue ramp) with the SLO
  threshold as a reference line;
* per-resource utilization lanes (small multiples);
* GPU pool size — a step lane of active fleet workers (worker-pool runs only);
* tier hit-ratio stack (hot / cold / miss fractions per window);
* fault timeline — one lane per injected fault, injection-to-recovery bands
  (chaos runs only), aligned with the alert timeline;
* alert timeline — one row per fired alert with explicit fire/resolve span.

Hovering any window column shows that window's numbers via native SVG
``<title>`` tooltips, and a full per-window data table rides along in a
``<details>`` block so nothing is gated behind color or hover.  Machine
readers get ``data-*`` attributes (per-window ``data-ttft-p99-ms``, per-alert
``data-fired-at-s``/``data-resolved-at-s``) so tests can assert on content
without parsing SVG geometry.

:func:`render_diff_dashboard` overlays two runs (traffic, TTFT p99, hit
ratio) and tabulates the totals side by side for before/after comparisons.
"""

from __future__ import annotations

import math
from html import escape
from pathlib import Path
from typing import Any, Sequence

from ..metrics.stats import percentiles
from .slo import Alert, SLOObjective
from .timeseries import TimeSeriesRecorder, WindowStats

__all__ = ["render_dashboard", "render_diff_dashboard", "write_dashboard"]

# ----------------------------------------------------------------- geometry
_W = 880  # panel width
_ML, _MR, _MT, _MB = 56, 14, 10, 24  # plot margins
_RIBBON_QS = (50.0, 90.0, 99.0)

# The palette (reference instance of the dataviz method): categorical slots
# 1-3, an ordinal blue ramp for the percentile ribbons, fixed status colors,
# and ink/chrome tokens — light values here, dark steps in the stylesheet.
_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.dash {
  --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e;
  --muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
  --ring: rgba(11, 11, 11, 0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --ramp-lo: #86b6ef; --ramp-mid: #2a78d6; --ramp-hi: #104281;
  --status-warn: #fab219; --status-crit: #d03b3b; --status-good: #0ca30c;
  max-width: 960px; margin: 0 auto;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .dash {
    --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --axis: #383835;
    --ring: rgba(255, 255, 255, 0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --ramp-lo: #86b6ef; --ramp-mid: #3987e5; --ramp-hi: #184f95;
  }
}
:root[data-theme="dark"] .dash {
  --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7;
  --muted: #898781; --grid: #2c2c2a; --axis: #383835;
  --ring: rgba(255, 255, 255, 0.10);
  --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  --ramp-lo: #86b6ef; --ramp-mid: #3987e5; --ramp-hi: #184f95;
}
h1 { font-size: 20px; margin: 0 0 2px; }
.subtitle { color: var(--ink2); margin: 0 0 18px; }
.panel {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 14px 16px 10px; margin: 0 0 16px;
}
.panel h2 { font-size: 14px; font-weight: 600; margin: 0 0 2px; }
.panel .note { color: var(--muted); font-size: 12px; margin: 0 0 6px; }
.tiles { display: flex; flex-wrap: wrap; gap: 16px; margin: 0 0 16px; }
.tile {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 16px; min-width: 96px;
}
.tile .label { color: var(--ink2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 4px 0 6px;
  color: var(--ink2); font-size: 12px; align-items: center; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 12px; height: 12px; border-radius: 3px; display: inline-block; }
.swatch.line { height: 3px; border-radius: 2px; }
svg { display: block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--muted); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
.hov { fill: transparent; }
.hov:hover { fill: var(--ring); }
details { margin: 4px 0 12px; }
summary { cursor: pointer; color: var(--ink2); font-size: 13px; }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px;
  font-variant-numeric: tabular-nums; }
th, td { padding: 3px 10px; text-align: right; border-bottom: 1px solid var(--grid); }
th { color: var(--ink2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.alert-row { font-size: 13px; }
.alert-row .sev { font-weight: 600; }
.footer { color: var(--muted); font-size: 12px; margin-top: 8px; }
"""


# ------------------------------------------------------------------ helpers
def _as_windows(source: Any) -> list[WindowStats]:
    if isinstance(source, TimeSeriesRecorder):
        return source.windows()
    return list(source)


def _series_totals(windows: Sequence[WindowStats]) -> dict[str, Any]:
    ttfts: list[float] = []
    for window in windows:
        ttfts.extend(window.ttft_samples)
    served = sum(w.served for w in windows)
    shed = sum(w.shed for w in windows)
    kv = sum(w.kv_served for w in windows)
    p50, p99 = percentiles(ttfts, (50.0, 99.0))
    return {
        "num_requests": served + shed,
        "served": served,
        "shed": shed,
        "kv_served": kv,
        "hit_ratio": kv / served if served else 0.0,
        "ttft_p50_s": p50,
        "ttft_p99_s": p99,
    }


def _fmt_n(value: float) -> str:
    """Compact count: 1,284 / 12.9K / 4.2M."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.1f}K"
    return f"{value:,.0f}"


def _fmt_s(seconds: float) -> str:
    """Compact duration: 340ms below one second, 1.24s above."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 10.0:
        return f"{seconds:.2f}s"
    return f"{seconds:.1f}s"


def _nice_max(value: float) -> float:
    """A clean axis maximum (1/2/5 stepped) at or above ``value``."""
    if value <= 0:
        return 1.0
    exponent = math.floor(math.log10(value))
    base = value / 10**exponent
    for nice in (1.0, 2.0, 2.5, 5.0, 10.0):
        if base <= nice:
            return nice * 10**exponent
    return 10.0 * 10**exponent  # pragma: no cover - base is always <= 10


class _Plot:
    """Shared scales + chrome of one SVG panel."""

    def __init__(
        self,
        duration_s: float,
        y_max: float,
        height: int,
        *,
        y_fmt=None,
    ) -> None:
        self.duration_s = max(duration_s, 1e-9)
        self.y_max = y_max if y_max > 0 else 1.0
        self.height = height
        self.y_fmt = y_fmt or (lambda v: f"{v:g}")
        self.parts: list[str] = []

    def x(self, t: float) -> float:
        return _ML + (t / self.duration_s) * (_W - _ML - _MR)

    def y(self, v: float) -> float:
        frac = min(max(v / self.y_max, 0.0), 1.0)
        return _MT + (1.0 - frac) * (self.height - _MT - _MB)

    def add(self, fragment: str) -> None:
        self.parts.append(fragment)

    def chrome(self, *, y_ticks: int = 4) -> None:
        """Hairline gridlines, axis baseline, tick labels."""
        y0 = self.y(0.0)
        for i in range(1, y_ticks + 1):
            value = self.y_max * i / y_ticks
            yy = self.y(value)
            self.add(
                f'<line class="grid" x1="{_ML}" y1="{yy:.1f}"'
                f' x2="{_W - _MR}" y2="{yy:.1f}"/>'
            )
            self.add(
                f'<text x="{_ML - 6}" y="{yy + 3.5:.1f}" text-anchor="end">'
                f"{escape(self.y_fmt(value))}</text>"
            )
        self.add(
            f'<line class="axis" x1="{_ML}" y1="{y0:.1f}"'
            f' x2="{_W - _MR}" y2="{y0:.1f}"/>'
        )
        step = _nice_max(self.duration_s / 6.0)
        t = step
        while t <= self.duration_s * 1.0001:
            self.add(
                f'<text x="{self.x(t):.1f}" y="{self.height - 8}"'
                f' text-anchor="middle">{t:g}s</text>'
            )
            t += step

    def line(self, points: Sequence[tuple[float, float]], css_var: str) -> None:
        if not points:
            return
        path = " ".join(f"{self.x(t):.1f},{self.y(v):.1f}" for t, v in points)
        self.add(
            f'<polyline points="{path}" fill="none"'
            f' style="stroke:var({css_var});stroke-width:2;'
            f'stroke-linejoin:round;stroke-linecap:round"/>'
        )

    def area(
        self,
        points: Sequence[tuple[float, float]],
        css_var: str,
        *,
        opacity: float = 0.1,
        base: Sequence[tuple[float, float]] | None = None,
    ) -> None:
        """A wash under a line (or between two lines when ``base`` is given)."""
        if not points:
            return
        top = " ".join(f"L{self.x(t):.1f},{self.y(v):.1f}" for t, v in points)
        if base is None:
            y0 = self.y(0.0)
            start = f"M{self.x(points[0][0]):.1f},{y0:.1f}"
            close = f"L{self.x(points[-1][0]):.1f},{y0:.1f}Z"
        else:
            back = " ".join(
                f"L{self.x(t):.1f},{self.y(v):.1f}" for t, v in reversed(base)
            )
            start = f"M{self.x(base[0][0]):.1f},{self.y(base[0][1]):.1f}"
            close = back + "Z"
        self.add(
            f'<path d="{start} {top} {close}"'
            f' style="fill:var({css_var});opacity:{opacity};stroke:none"/>'
        )

    def ref_line(self, value: float, css_var: str, label: str) -> None:
        """A horizontal reference line (e.g. the SLO threshold)."""
        yy = self.y(value)
        self.add(
            f'<line x1="{_ML}" y1="{yy:.1f}" x2="{_W - _MR}" y2="{yy:.1f}"'
            f' style="stroke:var({css_var});stroke-width:1"/>'
        )
        self.add(
            f'<text x="{_W - _MR}" y="{yy - 4:.1f}" text-anchor="end">'
            f"{escape(label)}</text>"
        )

    def hover_columns(
        self, windows: Sequence[WindowStats], titles: Sequence[str]
    ) -> None:
        """Transparent per-window rects carrying native tooltip titles."""
        for window, title in zip(windows, titles):
            x0, x1 = self.x(window.start_s), self.x(window.end_s)
            self.add(
                f'<rect class="hov" x="{x0:.1f}" y="{_MT}"'
                f' width="{x1 - x0:.1f}" height="{self.height - _MT - _MB}"'
                f' data-window="{window.index}"'
                f' data-ttft-p99-ms="{window.ttft_percentile(99.0) * 1000:.1f}"'
                f' data-shed="{window.shed}" data-hit-ratio="{window.hit_ratio:.3f}">'
                f"<title>{escape(title)}</title></rect>"
            )

    def svg(self) -> str:
        body = "".join(self.parts)
        return (
            f'<svg viewBox="0 0 {_W} {self.height}" width="100%"'
            f' role="img">{body}</svg>'
        )


def _window_title(window: WindowStats) -> str:
    lines = [
        f"window {window.index}: {window.start_s:g}-{window.end_s:g}s",
        f"arrivals {window.arrivals} ({window.arrival_rate_rps:.2f}/s),"
        f" served {window.served}, shed {window.shed}",
        f"hit {window.hit_ratio:.0%} (hot {window.hot_served},"
        f" cold {window.cold_served}, miss {window.text_served})",
    ]
    if window.ttft_samples:
        lines.append(
            "TTFT p50 "
            + _fmt_s(window.ttft_percentile(50.0))
            + " / p90 "
            + _fmt_s(window.ttft_percentile(90.0))
            + " / p99 "
            + _fmt_s(window.ttft_percentile(99.0))
        )
    return "\n".join(lines)


def _legend(*keys: tuple[str, str, str]) -> str:
    """``(css_var, shape, label)`` keys → one legend row."""
    parts = ['<div class="legend">']
    for css_var, shape, label in keys:
        cls = "swatch line" if shape == "line" else "swatch"
        parts.append(
            f'<span class="key"><span class="{cls}"'
            f' style="background:var({css_var})"></span>{escape(label)}</span>'
        )
    parts.append("</div>")
    return "".join(parts)


def _panel(title: str, note: str, *body: str) -> str:
    note_html = f'<p class="note">{escape(note)}</p>' if note else ""
    return (
        f'<section class="panel"><h2>{escape(title)}</h2>{note_html}'
        + "".join(body)
        + "</section>"
    )


def _centers(windows: Sequence[WindowStats]) -> list[float]:
    return [(w.start_s + w.end_s) / 2.0 for w in windows]


# ------------------------------------------------------------------- panels
def _traffic_panel(windows: Sequence[WindowStats], duration_s: float) -> str:
    xs = _centers(windows)
    offered = [w.arrival_rate_rps for w in windows]
    shed = [w.shed / w.width_s if w.width_s > 0 else 0.0 for w in windows]
    plot = _Plot(duration_s, _nice_max(max(offered, default=0.0)), 190)
    plot.chrome()
    plot.area(list(zip(xs, shed)), "--s2", opacity=0.25)
    plot.line(list(zip(xs, shed)), "--s2")
    plot.area(list(zip(xs, offered)), "--s1")
    plot.line(list(zip(xs, offered)), "--s1")
    plot.hover_columns(windows, [_window_title(w) for w in windows])
    return _panel(
        "Traffic",
        "offered arrival rate per window; the shed band is the refused share",
        _legend(("--s1", "line", "offered req/s"), ("--s2", "line", "shed req/s")),
        plot.svg(),
    )


def _ttft_panel(
    windows: Sequence[WindowStats],
    duration_s: float,
    objectives: Sequence[SLOObjective],
) -> str:
    xs = _centers(windows)
    series = {
        q: [w.ttft_percentile(q) if w.ttft_samples else 0.0 for w in windows]
        for q in _RIBBON_QS
    }
    peak = max((max(vals, default=0.0) for vals in series.values()), default=0.0)
    for objective in objectives:
        peak = max(peak, objective.ttft_s * 1.15)
    plot = _Plot(duration_s, _nice_max(peak), 210, y_fmt=_fmt_s)
    plot.chrome()
    plot.area(
        list(zip(xs, series[99.0])),
        "--ramp-mid",
        base=list(zip(xs, series[50.0])),
    )
    for q, css_var in zip(_RIBBON_QS, ("--ramp-lo", "--ramp-mid", "--ramp-hi")):
        plot.line(list(zip(xs, series[q])), css_var)
    for objective in objectives:
        plot.ref_line(
            objective.ttft_s,
            "--status-crit",
            f"SLO {objective.name}: {_fmt_s(objective.ttft_s)}",
        )
    plot.hover_columns(windows, [_window_title(w) for w in windows])
    keys = [
        ("--ramp-lo", "line", "TTFT p50"),
        ("--ramp-mid", "line", "TTFT p90"),
        ("--ramp-hi", "line", "TTFT p99"),
    ]
    if objectives:
        keys.append(("--status-crit", "line", "SLO threshold"))
    return _panel(
        "TTFT percentiles",
        "per-window time to first token; the ribbon spans p50 to p99",
        _legend(*keys),
        plot.svg(),
    )


def _utilization_panel(
    windows: Sequence[WindowStats], duration_s: float, tracks: Sequence[str]
) -> str:
    if not tracks:
        return ""
    shown = list(tracks)[:8]
    lanes: list[str] = []
    xs = _centers(windows)
    for track in shown:
        utils = [w.utilization(track) for w in windows]
        peak = max(utils, default=0.0)
        plot = _Plot(duration_s, 1.0, 64, y_fmt=lambda v: f"{v:.0%}")
        plot.chrome(y_ticks=1)
        plot.area(list(zip(xs, utils)), "--s3")
        plot.line(list(zip(xs, utils)), "--s3")
        plot.hover_columns(
            windows,
            [
                f"{track}: {w.utilization(track):.0%} busy,"
                f" peak queue {w.max_queue_depth.get(track, 0):g}"
                for w in windows
            ],
        )
        lanes.append(
            f'<p class="note">{escape(track)} &middot; peak {peak:.0%}</p>'
            + plot.svg()
        )
    note = "busy fraction per window, one lane per resource"
    if len(tracks) > len(shown):
        note += f" (showing {len(shown)} of {len(tracks)} tracks)"
    return _panel("Utilization", note, *lanes)


def _pool_panel(windows: Sequence[WindowStats], duration_s: float) -> str:
    """GPU fleet size over the run (rendered only for worker-pool runs)."""
    if all(w.pool_size is None for w in windows):
        return ""
    # Forward-fill: between pool-size samples the fleet size is unchanged, so
    # quiet windows inherit the last known size (and leading windows the first).
    first = next(w.pool_size for w in windows if w.pool_size is not None)
    filled: list[float] = []
    current = first
    for window in windows:
        if window.pool_size is not None:
            current = window.pool_size
        filled.append(current)
    peak = max(filled)
    plot = _Plot(duration_s, _nice_max(peak), 140)
    plot.chrome(y_ticks=2)
    steps: list[tuple[float, float]] = []
    for window, size in zip(windows, filled):
        steps.append((window.start_s, size))
        steps.append((window.end_s, size))
    plot.area(steps, "--s3", opacity=0.15)
    plot.line(steps, "--s3")
    plot.hover_columns(
        windows,
        [
            f"window {w.index}: pool size {size:g}"
            for w, size in zip(windows, filled)
        ],
    )
    return _panel(
        "GPU pool size",
        "active GPU workers per window; steps are autoscaler decisions",
        f'<div data-pool-peak="{peak:g}">'
        + _legend(("--s3", "line", "active workers"))
        + plot.svg()
        + "</div>",
    )


def _tier_panel(windows: Sequence[WindowStats], duration_s: float) -> str:
    plot = _Plot(duration_s, 1.0, 190, y_fmt=lambda v: f"{v:.0%}")
    plot.chrome(y_ticks=2)
    y0, y1 = plot.y(0.0), plot.y(1.0)
    span = y0 - y1
    for window in windows:
        if not window.served:
            continue
        x0, x1 = plot.x(window.start_s), plot.x(window.end_s)
        width = min(x1 - x0 - 2.0, 24.0)
        x = (x0 + x1 - width) / 2.0
        fractions = (
            (window.hot_served / window.served, "--s1"),
            (window.cold_served / window.served, "--s2"),
            (window.text_served / window.served, "--muted"),
        )
        # Unified backends report only kv vs text: fold plain kv into "hot".
        untracked = (
            window.kv_served - window.hot_served - window.cold_served
        ) / window.served
        if untracked > 0:
            fractions = (
                (fractions[0][0] + untracked, "--s1"),
                fractions[1],
                fractions[2],
            )
        base = y0
        for fraction, css_var in fractions:
            height = fraction * span
            if height <= 0:
                continue
            gap = 1.0 if height > 2.0 else 0.0
            plot.add(
                f'<rect x="{x:.1f}" y="{base - height + gap:.1f}"'
                f' width="{width:.1f}" height="{max(height - 2 * gap, 0.5):.1f}"'
                f' style="fill:var({css_var})"/>'
            )
            base -= height
    plot.hover_columns(windows, [_window_title(w) for w in windows])
    return _panel(
        "Tier hit ratio",
        "where served requests got their KV cache from, per window",
        _legend(
            ("--s1", "box", "hot (memory)"),
            ("--s2", "box", "cold (disk)"),
            ("--muted", "box", "miss (text re-prefill)"),
        ),
        plot.svg(),
    )


_SEVERITY_ICON = {"page": "✖", "ticket": "▲"}
_SEVERITY_VAR = {"page": "--status-crit", "ticket": "--status-warn"}

#: Band color per fault kind (crash hard-red, degradations amber/orange).
_FAULT_VAR = {
    "crash": "--status-crit",
    "corruption": "--status-warn",
    "link": "--s2",
    "gpu": "--s1",
}


def _fault_panel(faults: Sequence[Any], duration_s: float) -> str:
    """Fault timeline: one lane per injected fault, injection to recovery.

    ``faults`` carries :class:`~repro.faults.resilience.FaultOutcome`-shaped
    objects (``fault_id`` / ``kind`` / ``target`` / ``injected_at_s`` /
    ``cleared_at_s``), i.e. ``report.resilience.faults``.  Bands share the
    alert timeline's clock so fault windows line up with the alerts they
    caused; an uncleared fault runs to the edge of the plot.
    """
    if not faults:
        return ""
    row_h = 30
    height = _MT + row_h * len(faults) + _MB
    plot = _Plot(duration_s, 1.0, height)
    step = _nice_max(plot.duration_s / 6.0)
    t = step
    while t <= plot.duration_s * 1.0001:
        plot.add(
            f'<line class="grid" x1="{plot.x(t):.1f}" y1="{_MT}"'
            f' x2="{plot.x(t):.1f}" y2="{height - _MB}"/>'
        )
        plot.add(
            f'<text x="{plot.x(t):.1f}" y="{height - 8}" text-anchor="middle">'
            f"{t:g}s</text>"
        )
        t += step
    rows: list[str] = []
    for i, fault in enumerate(faults):
        y = _MT + row_h * i + row_h / 2.0
        css_var = _FAULT_VAR.get(fault.kind, "--muted")
        x0 = plot.x(fault.injected_at_s)
        cleared = fault.cleared_at_s
        x1 = plot.x(cleared if cleared is not None else duration_s)
        cleared_attr = f"{cleared:g}" if cleared is not None else ""
        span = (
            f"injected {fault.injected_at_s:g}s, recovered {cleared:g}s"
            if cleared is not None
            else f"injected {fault.injected_at_s:g}s, not recovered in-run"
        )
        title = f"{fault.fault_id} {fault.kind} {fault.target}: {span}"
        plot.add(
            f'<g data-fault-id="{escape(fault.fault_id, quote=True)}"'
            f' data-kind="{escape(fault.kind, quote=True)}"'
            f' data-injected-at-s="{fault.injected_at_s:g}"'
            f' data-cleared-at-s="{cleared_attr}">'
            f'<rect x="{x0:.1f}" y="{y - 5:.1f}" width="{max(x1 - x0, 3):.1f}"'
            f' height="10" rx="4" style="fill:var({css_var})'
            f'{";opacity:0.55" if cleared is None else ""}">'
            f"<title>{escape(title)}</title></rect>"
            f"</g>"
        )
        rows.append(
            f'<p class="alert-row"><span class="sev" style="color:var(--ink)">'
            f"{escape(fault.kind)}</span>"
            f" &middot; {escape(fault.fault_id)} &middot; {escape(fault.target)}"
            f" &middot; {span}</p>"
        )
    return _panel(
        "Fault timeline",
        f"{len(faults)} injected fault(s); bar spans injection to recovery "
        "on the run clock (faded bars never recovered in-run)",
        f'<div data-fault-count="{len(faults)}">{plot.svg()}</div>',
        *rows,
    )


def _alert_panel(alerts: Sequence[Alert], duration_s: float) -> str:
    if not alerts:
        return _panel(
            "Alerts",
            "",
            '<p class="alert-row" data-alert-count="0">'
            "✓ No alerts fired during the run.</p>",
        )
    row_h = 30
    height = _MT + row_h * len(alerts) + _MB
    plot = _Plot(duration_s, 1.0, height)
    step = _nice_max(plot.duration_s / 6.0)
    t = step
    while t <= plot.duration_s * 1.0001:
        plot.add(
            f'<line class="grid" x1="{plot.x(t):.1f}" y1="{_MT}"'
            f' x2="{plot.x(t):.1f}" y2="{height - _MB}"/>'
        )
        plot.add(
            f'<text x="{plot.x(t):.1f}" y="{height - 8}" text-anchor="middle">'
            f"{t:g}s</text>"
        )
        t += step
    rows: list[str] = []
    for i, alert in enumerate(alerts):
        y = _MT + row_h * i + row_h / 2.0
        css_var = _SEVERITY_VAR.get(alert.severity, "--status-warn")
        icon = _SEVERITY_ICON.get(alert.severity, "●")
        x0 = plot.x(alert.fired_at_s)
        x1 = plot.x(
            alert.resolved_at_s if alert.resolved_at_s is not None else duration_s
        )
        resolved = (
            f"{alert.resolved_at_s:g}" if alert.resolved_at_s is not None else ""
        )
        plot.add(
            f'<g data-alert-name="{escape(alert.name, quote=True)}"'
            f' data-severity="{escape(alert.severity, quote=True)}"'
            f' data-fired-at-s="{alert.fired_at_s:g}"'
            f' data-resolved-at-s="{resolved}">'
            f'<rect x="{x0:.1f}" y="{y - 5:.1f}" width="{max(x1 - x0, 3):.1f}"'
            f' height="10" rx="4" style="fill:var({css_var})">'
            f"<title>{escape(alert.details or alert.name)}</title></rect>"
            f"</g>"
        )
        span = (
            f"fired {alert.fired_at_s:g}s, resolved {alert.resolved_at_s:g}s"
            if alert.resolved_at_s is not None
            else f"fired {alert.fired_at_s:g}s, still active"
        )
        rows.append(
            f'<p class="alert-row"><span class="sev"'
            f' style="color:var(--ink)">{icon} {escape(alert.severity)}</span>'
            f" &middot; {escape(alert.name)} &middot; {span}"
            f" &middot; {escape(alert.details)}</p>"
        )
    return _panel(
        "Alerts",
        f"{len(alerts)} alert(s); bar spans fire to resolve on the run clock",
        f'<div data-alert-count="{len(alerts)}">{plot.svg()}</div>',
        *rows,
    )


def _table_panel(windows: Sequence[WindowStats]) -> str:
    head = (
        "<tr><th>window</th><th>t (s)</th><th>arrivals</th><th>served</th>"
        "<th>shed</th><th>hit</th><th>TTFT p50</th><th>TTFT p90</th>"
        "<th>TTFT p99</th></tr>"
    )
    rows = []
    for w in windows:
        p50, p90, p99 = (
            (w.ttft_percentile(q) for q in (50.0, 90.0, 99.0))
            if w.ttft_samples
            else (0.0, 0.0, 0.0)
        )
        rows.append(
            f"<tr><td>{w.index}</td><td>{w.start_s:g}-{w.end_s:g}</td>"
            f"<td>{w.arrivals}</td><td>{w.served}</td><td>{w.shed}</td>"
            f"<td>{w.hit_ratio:.0%}</td><td>{_fmt_s(p50)}</td>"
            f"<td>{_fmt_s(p90)}</td><td>{_fmt_s(p99)}</td></tr>"
        )
    return (
        "<details><summary>Per-window data table</summary>"
        f"<table>{head}{''.join(rows)}</table></details>"
    )


def _tiles(totals: dict[str, Any], alerts: Sequence[Alert]) -> str:
    tiles = [
        ("requests", _fmt_n(totals["num_requests"])),
        ("served", _fmt_n(totals["served"])),
        ("shed", _fmt_n(totals["shed"])),
        ("hit ratio", f"{totals['hit_ratio']:.0%}"),
        ("TTFT p50", _fmt_s(totals["ttft_p50_s"])),
        ("TTFT p99", _fmt_s(totals["ttft_p99_s"])),
        ("alerts", str(len(alerts))),
    ]
    parts = ['<div class="tiles">']
    for label, value in tiles:
        parts.append(
            f'<div class="tile"><div class="label">{escape(label)}</div>'
            f'<div class="value">{escape(value)}</div></div>'
        )
    parts.append("</div>")
    return "".join(parts)


def _document(title: str, subtitle: str, *body: str) -> str:
    sub = f'<p class="subtitle">{escape(subtitle)}</p>' if subtitle else ""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body><div class="dash"><h1>{escape(title)}</h1>{sub}'
        + "".join(body)
        + '<p class="footer">Self-contained dashboard &middot; simulated'
        " clock &middot; hover any window for its numbers.</p>"
        "</div></body></html>\n"
    )


# ----------------------------------------------------------------- frontend
def render_dashboard(
    source: TimeSeriesRecorder | Sequence[WindowStats],
    *,
    alerts: Sequence[Alert] = (),
    objectives: Sequence[SLOObjective] = (),
    faults: Sequence[Any] = (),
    title: str = "Run dashboard",
    subtitle: str = "",
) -> str:
    """Render one run's window series (+ alerts) as a self-contained page.

    ``faults`` takes a chaos run's injected-fault outcomes
    (``report.resilience.faults``); they render as a timeline of
    crash/degrade/corruption bands aligned with the alert timeline.

    Example
    -------
    >>> recorder = TimeSeriesRecorder.from_tracer(tracer, window_s=0.5)  # doctest: +SKIP
    >>> html = render_dashboard(recorder, title="my run")  # doctest: +SKIP
    """
    windows = _as_windows(source)
    if not windows:
        return _document(
            title,
            subtitle or "empty run — no windows recorded",
            _alert_panel((), 1.0),
        )
    duration_s = windows[-1].end_s
    totals = _series_totals(windows)
    tracks: list[str] = sorted(
        {track for window in windows for track in window.busy_s}
    )
    if not subtitle:
        subtitle = (
            f"{len(windows)} windows of {windows[0].width_s:g}s over"
            f" {duration_s:g}s simulated"
        )
    return _document(
        title,
        subtitle,
        _tiles(totals, alerts),
        _traffic_panel(windows, duration_s),
        _ttft_panel(windows, duration_s, objectives),
        _utilization_panel(windows, duration_s, tracks),
        _pool_panel(windows, duration_s),
        _tier_panel(windows, duration_s),
        _fault_panel(faults, duration_s),
        _alert_panel(alerts, duration_s),
        _table_panel(windows),
    )


def render_diff_dashboard(
    baseline: TimeSeriesRecorder | Sequence[WindowStats],
    candidate: TimeSeriesRecorder | Sequence[WindowStats],
    *,
    labels: tuple[str, str] = ("baseline", "candidate"),
    title: str = "Run comparison",
    subtitle: str = "",
) -> str:
    """Overlay two runs for a before/after comparison.

    Example
    -------
    >>> html = render_diff_dashboard(baseline_recorder, candidate_recorder,
    ...                              labels=("main", "branch"))  # doctest: +SKIP
    """
    runs = [(labels[0], _as_windows(baseline)), (labels[1], _as_windows(candidate))]
    duration_s = max((w[-1].end_s for _, w in runs if w), default=1.0)

    def overlay(
        name: str,
        note: str,
        value,
        y_max: float | None = None,
        y_fmt=None,
    ) -> str:
        peak = max(
            (value(w) for _, ws in runs for w in ws),
            default=0.0,
        )
        plot = _Plot(
            duration_s,
            y_max if y_max is not None else _nice_max(peak),
            190,
            y_fmt=y_fmt,
        )
        plot.chrome()
        for (label, windows), css_var in zip(runs, ("--s1", "--s2")):
            points = [((w.start_s + w.end_s) / 2.0, value(w)) for w in windows]
            plot.line(points, css_var)
        return _panel(
            name,
            note,
            _legend(("--s1", "line", labels[0]), ("--s2", "line", labels[1])),
            plot.svg(),
        )

    panels = [
        overlay(
            "Traffic",
            "offered arrival rate per window",
            lambda w: w.arrival_rate_rps,
        ),
        overlay(
            "TTFT p99",
            "per-window 99th-percentile time to first token",
            lambda w: w.ttft_percentile(99.0) if w.ttft_samples else 0.0,
            y_fmt=_fmt_s,
        ),
        overlay(
            "Hit ratio",
            "fraction of served requests that used the KV cache",
            lambda w: w.hit_ratio,
            y_max=1.0,
            y_fmt=lambda v: f"{v:.0%}",
        ),
    ]
    head = f"<tr><th>metric</th><th>{escape(labels[0])}</th><th>{escape(labels[1])}</th><th>&Delta;</th></tr>"
    rows = []
    totals = [_series_totals(w) for _, w in runs]
    for key, fmt in (
        ("num_requests", _fmt_n),
        ("served", _fmt_n),
        ("shed", _fmt_n),
        ("hit_ratio", lambda v: f"{v:.1%}"),
        ("ttft_p50_s", _fmt_s),
        ("ttft_p99_s", _fmt_s),
    ):
        a, b = totals[0][key], totals[1][key]
        rows.append(
            f"<tr><td>{escape(key)}</td><td>{escape(fmt(a))}</td>"
            f"<td>{escape(fmt(b))}</td><td>{b - a:+g}</td></tr>"
        )
    table = _panel(
        "Totals",
        "whole-run aggregates side by side",
        f"<table>{head}{''.join(rows)}</table>",
    )
    return _document(title, subtitle, *panels, table)


def write_dashboard(
    path: str | Path,
    source: TimeSeriesRecorder | Sequence[WindowStats],
    *,
    alerts: Sequence[Alert] = (),
    objectives: Sequence[SLOObjective] = (),
    faults: Sequence[Any] = (),
    title: str = "Run dashboard",
    subtitle: str = "",
) -> Path:
    """Render and write the dashboard; returns the written path.

    Example
    -------
    >>> write_dashboard("run.html", recorder, objectives=[SLOObjective("ttft", 1.0)])  # doctest: +SKIP
    """
    path = Path(path)
    path.write_text(
        render_dashboard(
            source,
            alerts=alerts,
            objectives=objectives,
            faults=faults,
            title=title,
            subtitle=subtitle,
        ),
        encoding="utf-8",
    )
    return path

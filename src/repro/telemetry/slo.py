"""SLO objectives, multi-window burn-rate alerting and structural detectors.

The alerting layer reads the windowed series of
:class:`~repro.telemetry.timeseries.TimeSeriesRecorder` and reproduces the
operational story a production on-call would see, on the simulated clock:

* :class:`SLOObjective` — a declarative latency SLO ("99% of requests get
  their first token within 0.5 s"); a request is a *bad event* when its TTFT
  exceeds the threshold (shed arrivals count as bad by default — a refused
  user got no token at all);
* :class:`BurnRateRule` — one Google-SRE-style multi-window burn-rate pair:
  the alert is active while **both** the long- and the short-window burn rate
  (error rate ÷ error budget) exceed the rule's threshold, so a brief blip
  does not page but a real burn fires fast and resolves promptly once the
  short window is clean;
* structural detectors — :class:`QueueDepthBuildup`,
  :class:`HitRatioCollapse` and :class:`ShedStorm` watch the non-latency
  symptoms that precede SLO burns (backlog growth, a cache losing its hits
  after a node death, admission refusing a flood).

Every firing becomes an :class:`Alert` with explicit fire/resolve instants on
the simulated clock (an alert still active when the run ends has
``resolved_at_s=None``).  :class:`AlertEngine` bundles objectives × rules plus
the detectors and evaluates them over a window series in one call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from .timeseries import WindowStats

__all__ = [
    "SLOObjective",
    "BurnRateRule",
    "Alert",
    "AlertEngine",
    "Detector",
    "QueueDepthBuildup",
    "HitRatioCollapse",
    "ShedStorm",
    "default_burn_rules",
    "default_detectors",
]


@dataclass(frozen=True)
class SLOObjective:
    """A TTFT latency SLO: ``target`` fraction of requests within ``ttft_s``.

    Example
    -------
    >>> objective = SLOObjective("ttft", ttft_s=1.0, target=0.99)
    >>> round(objective.error_budget, 3)
    0.01
    """

    name: str
    ttft_s: float
    target: float = 0.99
    #: Count shed arrivals as bad events (a refused user missed the SLO too).
    include_shed: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective name must be non-empty")
        if self.ttft_s <= 0:
            raise ValueError("ttft_s must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def error_budget(self) -> float:
        """Allowed bad-event fraction (1 - target)."""
        return 1.0 - self.target

    def events(self, window: WindowStats) -> tuple[int, int]:
        """``(bad, total)`` events of one window under this objective."""
        bad = window.violations(self.ttft_s)
        total = window.served
        if self.include_shed:
            bad += window.shed
            total += window.shed
        return bad, total


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate pair (Google SRE workbook, chapter 5).

    Burn rate is the error rate divided by the error budget: burning at 1×
    spends the budget exactly over the SLO period; sustained burn above
    ``max_burn_rate`` on *both* windows means the budget is being consumed
    fast enough to page (long window = significance, short window = still
    happening / prompt resolution).
    """

    name: str
    long_s: float
    short_s: float
    max_burn_rate: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError("need long_s >= short_s > 0")
        if self.max_burn_rate <= 0:
            raise ValueError("max_burn_rate must be positive")


def default_burn_rules(window_s: float | None = None) -> tuple[BurnRateRule, ...]:
    """The classic fast-burn/slow-burn pair.

    Without a window width this returns the SRE-workbook wall-clock values
    (1 h/5 m at 14.4×, 6 h/30 m at 6×) — right for long traces.  Given the
    recorder's window width it scales the pair to the simulation's time base
    (short window = 1 resp. 6 recorder windows), so second-scale runs alert
    on the same logic.
    """
    if window_s is None:
        return (
            BurnRateRule("fast-burn", long_s=3600.0, short_s=300.0, max_burn_rate=14.4),
            BurnRateRule(
                "slow-burn",
                long_s=21600.0,
                short_s=1800.0,
                max_burn_rate=6.0,
                severity="ticket",
            ),
        )
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    return (
        BurnRateRule(
            "fast-burn", long_s=4.0 * window_s, short_s=window_s, max_burn_rate=8.0
        ),
        BurnRateRule(
            "slow-burn",
            long_s=12.0 * window_s,
            short_s=3.0 * window_s,
            max_burn_rate=2.0,
            severity="ticket",
        ),
    )


@dataclass
class Alert:
    """One fired alert: fire/resolve instants on the simulated clock."""

    name: str
    kind: str
    severity: str
    fired_at_s: float
    resolved_at_s: float | None
    #: Peak of the rule's signal while active (burn rate, depth, drop, sheds).
    peak: float
    details: str = ""

    @property
    def active(self) -> bool:
        """Still firing when the run ended."""
        return self.resolved_at_s is None

    @property
    def duration_s(self) -> float | None:
        if self.resolved_at_s is None:
            return None
        return self.resolved_at_s - self.fired_at_s


def _collapse_active(
    windows: Sequence[WindowStats],
    active: Sequence[bool],
    signal: Sequence[float],
    *,
    name: str,
    kind: str,
    severity: str,
    details: Callable[[float], str],
) -> list[Alert]:
    """Turn a per-window active flag into fire/resolve :class:`Alert` spans.

    An alert fires at the **end** of the first active window (the instant the
    evaluation that saw the burn runs) and resolves at the end of the first
    inactive window after it; an episode still active at the last window
    stays unresolved.
    """
    alerts: list[Alert] = []
    episode_start: int | None = None
    peak = 0.0
    for i, is_active in enumerate(active):
        if is_active:
            if episode_start is None:
                episode_start = i
                peak = signal[i]
            else:
                peak = max(peak, signal[i])
        elif episode_start is not None:
            alerts.append(
                Alert(
                    name=name,
                    kind=kind,
                    severity=severity,
                    fired_at_s=windows[episode_start].end_s,
                    resolved_at_s=windows[i].end_s,
                    peak=peak,
                    details=details(peak),
                )
            )
            episode_start = None
    if episode_start is not None:
        alerts.append(
            Alert(
                name=name,
                kind=kind,
                severity=severity,
                fired_at_s=windows[episode_start].end_s,
                resolved_at_s=None,
                peak=peak,
                details=details(peak),
            )
        )
    return alerts


@runtime_checkable
class Detector(Protocol):
    """A structural detector: window series in, alerts out."""

    def evaluate(self, windows: Sequence[WindowStats]) -> list[Alert]: ...


@dataclass(frozen=True)
class QueueDepthBuildup:
    """Fires when any resource's queue holds ``min_depth``+ for a sustained run.

    Queue growth is the leading indicator of an overload: it shows before
    TTFT percentiles blow out, because queued requests have not finished yet.
    """

    min_depth: float = 4.0
    consecutive: int = 2
    track_prefix: str = ""
    severity: str = "ticket"

    def evaluate(self, windows: Sequence[WindowStats]) -> list[Alert]:
        depths = []
        for window in windows:
            matching = [
                depth
                for track, depth in window.max_queue_depth.items()
                if track.startswith(self.track_prefix)
            ]
            depths.append(max(matching) if matching else 0.0)
        deep = [depth >= self.min_depth for depth in depths]
        active = []
        run = 0
        for flag in deep:
            run = run + 1 if flag else 0
            active.append(run >= self.consecutive)
        return _collapse_active(
            windows,
            active,
            depths,
            name="queue-depth-buildup",
            kind="queue-depth",
            severity=self.severity,
            details=lambda peak: (
                f"queue depth held >= {self.min_depth:g} for "
                f"{self.consecutive}+ windows (peak {peak:g})"
            ),
        )


@dataclass(frozen=True)
class HitRatioCollapse:
    """Fires when the KV hit ratio drops ``drop`` below its trailing baseline.

    The signature of a node death (or an eviction storm): traffic that was
    served from cache suddenly degrades to text re-prefill.  The baseline is
    the mean hit ratio of the last ``baseline_windows`` busy windows, so slow
    drifts do not fire — collapses do.
    """

    drop: float = 0.3
    baseline_windows: int = 3
    min_served: int = 4
    severity: str = "page"

    def evaluate(self, windows: Sequence[WindowStats]) -> list[Alert]:
        active: list[bool] = []
        drops: list[float] = []
        baseline_pool: list[float] = []
        for window in windows:
            busy = window.served >= self.min_served
            baseline = (
                sum(baseline_pool[-self.baseline_windows :]) / len(baseline_pool[-self.baseline_windows :])
                if baseline_pool
                else None
            )
            is_collapse = (
                busy
                and baseline is not None
                and window.hit_ratio <= baseline - self.drop
            )
            active.append(is_collapse)
            drops.append(
                (baseline - window.hit_ratio) if (busy and baseline is not None) else 0.0
            )
            # Collapsed windows do not poison the baseline: the pre-incident
            # level is what recovery is measured against.
            if busy and not is_collapse:
                baseline_pool.append(window.hit_ratio)
        return _collapse_active(
            windows,
            active,
            drops,
            name="hit-ratio-collapse",
            kind="hit-ratio",
            severity=self.severity,
            details=lambda peak: (
                f"hit ratio fell {peak:.2f} below its trailing baseline"
            ),
        )


@dataclass(frozen=True)
class ShedStorm:
    """Fires when admission sheds a burst: count or offered-fraction based."""

    min_shed: int = 5
    min_ratio: float = 0.5
    severity: str = "page"

    def evaluate(self, windows: Sequence[WindowStats]) -> list[Alert]:
        active = [
            window.shed >= self.min_shed
            or (window.shed > 0 and window.shed_ratio >= self.min_ratio)
            for window in windows
        ]
        return _collapse_active(
            windows,
            active,
            [float(window.shed) for window in windows],
            name="shed-storm",
            kind="shed-storm",
            severity=self.severity,
            details=lambda peak: f"admission shed {peak:g} arrivals in one window",
        )


def default_detectors() -> tuple[Detector, ...]:
    """The standard structural detectors, with their default thresholds."""
    return (QueueDepthBuildup(), HitRatioCollapse(), ShedStorm())


class AlertEngine:
    """Evaluates SLO burn-rate rules plus structural detectors over a series.

    Parameters
    ----------
    objectives:
        The declarative SLOs; each is checked against every rule.
    rules:
        Burn-rate window pairs; ``None`` picks :func:`default_burn_rules`
        scaled to the series' window width at evaluation time.
    detectors:
        Structural detectors; ``None`` picks :func:`default_detectors`, and
        ``()`` disables them.

    Example
    -------
    >>> engine = AlertEngine([SLOObjective("ttft", ttft_s=1.0, target=0.99)])
    >>> alerts = engine.evaluate(recorder.windows())  # doctest: +SKIP
    """

    def __init__(
        self,
        objectives: Sequence[SLOObjective] = (),
        rules: Sequence[BurnRateRule] | None = None,
        detectors: Sequence[Detector] | None = None,
    ) -> None:
        self.objectives = tuple(objectives)
        self.rules = tuple(rules) if rules is not None else None
        self.detectors = (
            tuple(detectors) if detectors is not None else default_detectors()
        )

    def evaluate(self, windows: Sequence[WindowStats]) -> list[Alert]:
        """All alerts of one window series, ordered by fire instant."""
        windows = list(windows)
        alerts: list[Alert] = []
        if windows:
            width = windows[0].width_s
            rules = self.rules if self.rules is not None else default_burn_rules(width)
            for objective in self.objectives:
                events = [objective.events(window) for window in windows]
                for rule in rules:
                    alerts.extend(
                        self._burn_alerts(objective, rule, windows, events, width)
                    )
            for detector in self.detectors:
                alerts.extend(detector.evaluate(windows))
        alerts.sort(key=lambda alert: (alert.fired_at_s, alert.name))
        return alerts

    @staticmethod
    def _burn_alerts(
        objective: SLOObjective,
        rule: BurnRateRule,
        windows: Sequence[WindowStats],
        events: Sequence[tuple[int, int]],
        width_s: float,
    ) -> list[Alert]:
        n_short = max(1, int(math.ceil(rule.short_s / width_s)))
        n_long = max(n_short, int(math.ceil(rule.long_s / width_s)))

        def burn(upto: int, span: int) -> float:
            bad = total = 0
            for bad_i, total_i in events[max(0, upto - span + 1) : upto + 1]:
                bad += bad_i
                total += total_i
            if total == 0:
                return 0.0
            return (bad / total) / objective.error_budget

        active: list[bool] = []
        signal: list[float] = []
        for i in range(len(windows)):
            long_burn = burn(i, n_long)
            short_burn = burn(i, n_short)
            active.append(
                long_burn >= rule.max_burn_rate and short_burn >= rule.max_burn_rate
            )
            signal.append(max(long_burn, short_burn))
        return _collapse_active(
            windows,
            active,
            signal,
            name=f"{objective.name}:{rule.name}",
            kind="burn-rate",
            severity=rule.severity,
            details=lambda peak: (
                f"TTFT > {objective.ttft_s:g}s burned the {objective.target:.0%} "
                f"budget at {peak:.1f}x over {rule.long_s:g}s/{rule.short_s:g}s windows"
            ),
        )

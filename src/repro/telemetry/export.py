"""Export a :class:`~repro.telemetry.trace.Tracer` for offline analysis.

Two formats:

* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` object format
  understood by Perfetto (ui.perfetto.dev) and ``chrome://tracing``.  Request
  tracks become threads of a "requests" process and resource tracks (links,
  GPU schedulers, storage nodes) threads of a "resources" process, so the
  timeline shows one swimlane per request above one swimlane per resource.
  Queue depths are emitted as counter ("C") events, which Perfetto renders as
  stacked area tracks.
* **structured JSONL** — one self-describing JSON object per line (spans,
  instants, counter samples, then one ``metrics`` record holding the registry
  snapshot), for ad-hoc processing with ``jq`` / pandas.

Timestamps: the simulation clock is seconds from run start; the trace-event
format wants microseconds.  Both exports sort events by time, so consumers
can rely on monotonic ``ts``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from .trace import Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "iter_jsonl_events",
    "write_jsonl",
]

#: pid of the per-request swimlanes in the Chrome trace.
REQUESTS_PID = 1
#: pid of the shared-resource swimlanes (links, GPUs, storage).
RESOURCES_PID = 2

_MICRO = 1_000_000.0


def _us(at_s: float) -> float:
    """Seconds on the sim clock → microseconds in the trace."""
    return at_s * _MICRO


def _track_layout(tracer: Tracer) -> dict[str, tuple[int, int]]:
    """Assign every track a (pid, tid) pair, requests first.

    Request tracks (``request:<id>``) sort by request id so the timeline
    lists them in arrival order; resource tracks keep first-use order.
    """
    request_tracks = []
    resource_tracks = []
    for track in tracer.tracks:
        if track.startswith("request:"):
            request_tracks.append(track)
        else:
            resource_tracks.append(track)
    request_tracks.sort(key=lambda track: int(track.split(":", 1)[1]))
    layout: dict[str, tuple[int, int]] = {}
    for tid, track in enumerate(request_tracks, start=1):
        layout[track] = (REQUESTS_PID, tid)
    for tid, track in enumerate(resource_tracks, start=1):
        layout[track] = (RESOURCES_PID, tid)
    return layout


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """Render the tracer as a flat, time-sorted trace-event list.

    Metadata ("M") events naming the processes and threads come first, then
    every span ("X"), instant ("i") and counter sample ("C") ordered by
    timestamp.
    """
    layout = _track_layout(tracer)
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": REQUESTS_PID,
            "tid": 0,
            "args": {"name": "requests"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": RESOURCES_PID,
            "tid": 0,
            "args": {"name": "resources"},
        },
    ]
    for track, (pid, tid) in layout.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )

    timed: list[dict[str, Any]] = []
    for span in tracer.spans:
        pid, tid = layout[span.track]
        event: dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.category or "span",
            "pid": pid,
            "tid": tid,
            "ts": _us(span.start_s),
            "dur": _us(span.dur_s),
        }
        args = dict(span.args)
        if span.request_id is not None:
            args.setdefault("request_id", span.request_id)
        if args:
            event["args"] = args
        timed.append(event)
    for instant in tracer.instants:
        pid, tid = layout[instant.track]
        event = {
            "ph": "i",
            "name": instant.name,
            "cat": instant.category or "instant",
            "pid": pid,
            "tid": tid,
            "ts": _us(instant.at_s),
            "s": "t",
        }
        if instant.args:
            event["args"] = dict(instant.args)
        timed.append(event)
    for sample in tracer.samples:
        pid, _tid = layout[sample.track]
        timed.append(
            {
                "ph": "C",
                "name": f"{sample.track} {sample.name}",
                "pid": pid,
                "tid": 0,
                "ts": _us(sample.at_s),
                "args": {sample.name: sample.value},
            }
        )

    timed.sort(key=lambda event: event["ts"])
    events.extend(timed)
    return events


def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The full Chrome trace object (``json.dump`` it, or use
    :func:`write_chrome_trace`)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"metrics": tracer.metrics.snapshot()},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the Perfetto-loadable trace JSON to ``path`` and return it.

    Example
    -------
    >>> tracer = Tracer()
    >>> serve(ServingSpec(), requests=requests, tracer=tracer)  # doctest: +SKIP
    >>> write_chrome_trace(tracer, "trace.json")  # open at ui.perfetto.dev  # doctest: +SKIP
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle)
        handle.write("\n")
    return path


def iter_jsonl_events(tracer: Tracer) -> Iterator[dict[str, Any]]:
    """Yield every recorded event as a self-describing dict, time-ordered.

    Record kinds: ``span`` (with ``start_s``/``dur_s``/``category``/
    ``request_id``), ``instant`` (``at_s``), ``counter`` (``at_s``/``value``)
    and one trailing ``metrics`` record carrying the registry snapshot.
    """
    records: list[tuple[float, dict[str, Any]]] = []
    for span in tracer.spans:
        records.append(
            (
                span.start_s,
                {
                    "kind": "span",
                    "name": span.name,
                    "track": span.track,
                    "start_s": span.start_s,
                    "dur_s": span.dur_s,
                    "category": span.category,
                    "request_id": span.request_id,
                    "args": dict(span.args),
                },
            )
        )
    for instant in tracer.instants:
        records.append(
            (
                instant.at_s,
                {
                    "kind": "instant",
                    "name": instant.name,
                    "track": instant.track,
                    "at_s": instant.at_s,
                    "category": instant.category,
                    "args": dict(instant.args),
                },
            )
        )
    for sample in tracer.samples:
        records.append(
            (
                sample.at_s,
                {
                    "kind": "counter",
                    "name": sample.name,
                    "track": sample.track,
                    "at_s": sample.at_s,
                    "value": sample.value,
                },
            )
        )
    records.sort(key=lambda pair: pair[0])
    for _at_s, record in records:
        yield record
    yield {"kind": "metrics", "metrics": tracer.metrics.snapshot()}


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the structured event log (one JSON object per line).

    Example
    -------
    >>> write_jsonl(tracer, "events.jsonl")  # doctest: +SKIP
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in iter_jsonl_events(tracer):
            handle.write(json.dumps(record))
            handle.write("\n")
    return path

"""Event-order race detection for the simulated serving stack.

Same-timestamp events in the :class:`~repro.serving.concurrent.events.SimClock`
fire in scheduling (FIFO) order.  That is deterministic — but results that are
only correct *because* of that arbitrary order are one refactor away from
breaking (the exact hazard packet-level simulators hit when tie-breaks
change).  The detector re-runs a simulation with
:class:`~repro.simcheck.sanitizers.ClockSanitizer` perturbing same-timestamp
tie-break order under several seeds and diffs canonical result digests: a
digest that moves under perturbation marks an order-dependent simulation.

Two entry points:

* :func:`find_order_race` — generic: re-run any ``run(clock_factory)``
  callable and compare whatever it returns.
* :func:`check_spec_order_independence` — serving-level: replay a
  :class:`~repro.serving.api.spec.ServingSpec` + fixed request list through
  ``serve()`` and compare :class:`~repro.serving.api.types.RunReport` digests.
  Digests treat responses as a *multiset* (sorted canonical tuples): replayed
  identical requests may legitimately swap identities under perturbation, but
  the set of outcomes must not change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from .sanitizers import ClockSanitizer

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..serving.api.spec import ServingSpec
    from ..serving.api.types import RunReport, ServeRequest
    from ..serving.concurrent.events import SimClock

__all__ = ["RaceReport", "find_order_race", "run_report_digest", "check_spec_order_independence"]

_ROUND = 9  # digits; well inside float noise, well outside real reorderings


@dataclass(frozen=True)
class RaceReport:
    """Outcome of one race hunt: the baseline digest vs perturbed digests."""

    baseline: object
    perturbed: tuple[tuple[int, object], ...]

    @property
    def mismatching_seeds(self) -> tuple[int, ...]:
        return tuple(seed for seed, digest in self.perturbed if digest != self.baseline)

    @property
    def order_dependent(self) -> bool:
        """True when any perturbed tie-break order changed the results."""
        return bool(self.mismatching_seeds)

    def describe(self) -> str:
        if not self.order_dependent:
            seeds = ", ".join(str(seed) for seed, _ in self.perturbed)
            return f"order-independent under perturbation seeds [{seeds}]"
        return (
            "ORDER-DEPENDENT: results changed under perturbation seeds "
            f"{list(self.mismatching_seeds)} — the simulation depends on "
            "same-timestamp tie-break order"
        )


def find_order_race(
    run: Callable[[Callable[[], "SimClock"]], object],
    seeds: Sequence[int] = (1, 2, 3),
) -> RaceReport:
    """Run ``run`` once FIFO and once per perturbation seed; diff the digests.

    ``run`` receives a clock factory and must return a comparable digest of
    the simulation outcome.  It is called ``len(seeds) + 1`` times and must
    rebuild its own state each time (fresh stores, fresh RNGs) so the only
    varying input is tie-break order.
    """
    if not seeds:
        raise ValueError("at least one perturbation seed is required")
    baseline = run(ClockSanitizer)
    perturbed = tuple(
        (seed, run(lambda seed=seed: ClockSanitizer(perturb_seed=seed)))
        for seed in seeds
    )
    return RaceReport(baseline=baseline, perturbed=perturbed)


def run_report_digest(report: "RunReport") -> tuple:
    """Canonical, order-insensitive summary of a run's observable results."""
    responses = tuple(
        sorted(
            (
                response.context_id,
                round(response.arrival_s, _ROUND),
                round(response.finish_s, _ROUND),
                round(response.ttft_s, _ROUND),
                round(response.queueing_s, _ROUND),
                bool(response.used_kv_cache),
                response.served_by,
                response.served_tier,
                bool(response.failed_over),
                bool(getattr(response, "degraded", False)),
                getattr(response, "degrade_cause", None),
                getattr(response, "retries", 0),
            )
            for response in report.responses
        )
    )
    return (
        responses,
        report.shed,
        report.hard_failures,
        report.kv_served,
        report.text_served,
        report.failovers,
        report.degraded,
        round(report.duration_s, _ROUND),
    )


def check_spec_order_independence(
    spec: "ServingSpec",
    requests: Sequence["ServeRequest"] | None = None,
    *,
    workload=None,
    num_requests: int | None = None,
    seeds: Sequence[int] = (1, 2),
    backend: str | None = None,
    faults=None,
) -> RaceReport:
    """Replay a spec under perturbed tie-breaks and diff the report digests.

    Pass explicit ``requests`` or a workload generator (+ ``num_requests``);
    generated arrivals are materialized once so every replay sees the same
    stream.  Each replay builds a fresh backend from ``spec``, so stores and
    seeds reset; tie-break order is the only varying input.  ``faults``
    optionally threads a :class:`~repro.faults.FaultSchedule` through each
    replay's driver — chaos runs must be exactly as order-independent as
    healthy ones (retry jitter is keyed on the context, not a shared stream).
    """
    from ..serving.api.types import ServeRequest as _ServeRequest

    if (requests is None) == (workload is None):
        raise ValueError("pass exactly one of requests= or workload=")
    if requests is None:
        if num_requests is None:
            raise ValueError("num_requests is required with a workload generator")
        requests = [
            item
            if isinstance(item, _ServeRequest)
            else _ServeRequest.from_workload(item)
            for item in workload.iter_requests(num_requests)
        ]
    fixed = list(requests)

    def run_with_factory(clock_factory: Callable[[], "SimClock"]) -> tuple:
        from ..serving.api.backends import build_backend
        from ..serving.api.driver import Driver

        built = build_backend(spec, kind=backend)
        driver = Driver(built, list(fixed), faults=faults, simcheck=False)
        concurrent = getattr(built, "_concurrent", None)
        if concurrent is not None:
            concurrent.clock_factory = clock_factory
        report = driver.run()
        return run_report_digest(report)

    return find_order_race(run_with_factory, seeds=seeds)

"""CLI for the simcheck determinism lint and race-detector smoke.

Usage::

    python -m repro.simcheck src/repro                  # lint vs the baseline
    python -m repro.simcheck src/repro --write-baseline # refresh the baseline
    python -m repro.simcheck --race-smoke               # figure12 order check
    python -m repro.simcheck --chaos-smoke              # faulted-spec order check

Exit status: 0 clean, 1 new violations (or an order-dependent smoke run),
2 usage errors.
"""

from __future__ import annotations

import argparse
import sys

from .lint import (
    ALL_RULES,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "simcheck-baseline.json"

_FAILURE_HELP = """\
New simcheck violations (not in the baseline). Either:
  * fix them (preferred — each message says what breaks determinism),
  * suppress intentional ones in place:  # simcheck: ignore[SIMxxx]  # why
  * or refresh the committed baseline and review the diff:
        python -m repro.simcheck src/repro --write-baseline
    then commit the updated {baseline}."""


def _run_race_smoke(out=sys.stderr) -> int:
    """Order-independence smoke on a figure12-style concurrency spec."""
    from ..serving.api.spec import ServingSpec
    from ..serving.api.types import ServeRequest
    from .race import check_spec_order_independence

    # The figure12 concurrency shape: one shared context, n simultaneous
    # arrivals over one link and a GPU worker pool.
    spec = ServingSpec(concurrency=8, gpu_workers=2)
    requests = [
        ServeRequest("figure12-context", "smoke?", arrival_s=0.0, num_tokens=640)
        for _ in range(6)
    ]
    report = check_spec_order_independence(spec, requests, seeds=(1, 2))
    print(f"race smoke (figure12 concurrency spec): {report.describe()}", file=out)
    return 1 if report.order_dependent else 0


def _run_chaos_smoke(out=sys.stderr) -> int:
    """Order-independence smoke on a faulted, resilience-enabled cluster spec.

    Chaos runs must be exactly as order-independent as healthy ones: the
    fault schedule is keyed on the simulated clock and the retry jitter on
    the context id, so perturbed same-timestamp tie-breaks may not change the
    multiset of outcomes.
    """
    import warnings

    from ..faults import FaultSchedule, NodeCrash, ResiliencePolicy
    from ..serving.api.spec import ServingSpec
    from ..serving.api.types import ServeRequest
    from .race import check_spec_order_independence

    spec = ServingSpec(
        topology="cluster",
        num_nodes=3,
        replication=2,
        concurrency=8,
        resilience=ResiliencePolicy(),
    )
    requests = [
        ServeRequest(f"chaos-ctx-{i % 4}", "smoke?", arrival_s=0.4 * i, num_tokens=640)
        for i in range(12)
    ]
    faults = FaultSchedule([NodeCrash("node-0", at_s=1.0, recover_at_s=3.5)])
    with warnings.catch_warnings():
        # The driver's one-shot segment-boundary warning is expected here.
        warnings.simplefilter("ignore")
        report = check_spec_order_independence(
            spec, requests, seeds=(1, 2), faults=faults
        )
    print(f"chaos smoke (faulted cluster spec): {report.describe()}", file=out)
    return 1 if report.order_dependent else 0


def main(argv: list[str] | None = None, out=sys.stderr) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simcheck",
        description="Determinism lint (SIM001-SIM005) for simulation code.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories to lint"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered violations (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current violations to the baseline file and exit clean",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--race-smoke",
        action="store_true",
        help="run the event-order race detector on a figure12 concurrency spec",
    )
    parser.add_argument(
        "--chaos-smoke",
        action="store_true",
        help="run the race detector on a faulted, resilience-enabled cluster spec",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list baseline-matched violations"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  [{rule.severity:7s}]  {rule.description}", file=out)
        return 0

    if args.race_smoke:
        return _run_race_smoke(out=out)

    if args.chaos_smoke:
        return _run_chaos_smoke(out=out)

    select = (
        {part.strip() for part in args.select.split(",") if part.strip()}
        if args.select
        else None
    )
    violations = lint_paths(args.paths, select=select)

    if args.write_baseline:
        counts = write_baseline(args.baseline, violations)
        print(
            f"wrote {sum(counts.values())} violation(s) "
            f"({len(counts)} fingerprint(s)) to {args.baseline}",
            file=out,
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, stale = apply_baseline(violations, baseline)

    for violation in new:
        print(violation.format(), file=out)
    if args.verbose:
        matched = len(violations) - len(new)
        print(f"{matched} baseline-matched violation(s) suppressed", file=out)
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "no longer match (debt was fixed); refresh with --write-baseline",
            file=out,
        )
    if new:
        print(file=out)
        print(_FAILURE_HELP.format(baseline=args.baseline), file=out)
        return 1
    checked = len(violations)
    print(
        f"simcheck clean: {checked} violation(s), all baseline-matched"
        if checked
        else "simcheck clean: no violations",
        file=out,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Conservation-law checks over finished runs.

The telemetry layer promises more than "spans exist": per-category child-span
sums reproduce each request's :class:`~repro.metrics.system.QueueingTTFTBreakdown`
exactly, busy time on a serialized resource track never exceeds the track's
elapsed window, queue-depth gauges never go negative, and no store ever holds
more bytes than its declared capacity.  These functions verify each law on a
finished run and return :class:`~repro.simcheck.sanitizers.SimcheckViolation`
records for whatever fails; the :class:`~repro.simcheck.sanitizers.SimcheckMonitor`
aggregates them.

Float tolerances: span durations are *copied* from the recorded waits, so the
per-category sums match the breakdown to float-sum reassociation error only —
we allow ``rel=1e-9, abs=1e-12``, far tighter than any real discrepancy and
far looser than reassociation noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..metrics.system import QueueingTTFTBreakdown
from .sanitizers import SimcheckViolation

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..serving.api.types import ServeResponse
    from ..serving.concurrent.events import SimClock
    from ..telemetry.trace import Span, Tracer

__all__ = [
    "check_clock",
    "check_tracer_tracks",
    "check_span_breakdowns",
    "check_store_capacity",
]

_REL_TOL = 1e-9
_ABS_TOL = 1e-12
#: Tracks whose spans represent serialized resource occupancy.
_RESOURCE_TRACK_PREFIXES = ("gpu", "link:")


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= max(_ABS_TOL, _REL_TOL * max(abs(a), abs(b)))


def check_clock(clock: "SimClock") -> list[SimcheckViolation]:
    """A healthy simulation never schedules in the past."""
    violations: list[SimcheckViolation] = []
    clamped = getattr(clock, "clamped_schedules", 0)
    if clamped:
        detail = ""
        past = getattr(clock, "past_schedules", None)
        if past:
            worst = max(past, key=lambda p: p.slip_s)
            detail = (
                f"; worst slip {worst.slip_s:.3e}s "
                f"(requested t={worst.requested_s:.9f} at now={worst.now_s:.9f})"
            )
        violations.append(
            SimcheckViolation(
                check="clock",
                message=f"{clamped} schedule(s) requested a past timestamp{detail}",
            )
        )
    return violations


def check_tracer_tracks(
    tracer: "Tracer", segment_starts_s: "tuple[float, ...]" = ()
) -> list[SimcheckViolation]:
    """Gauges never negative; serialized resource tracks never overlap.

    ``segment_starts_s`` lists the simulated instants where the driver closed
    a simulation segment (topology/fault events).  Backlog does not carry
    across a boundary, so a span from the old segment may legitimately
    overlap one from the new — the overlap checks run within each segment,
    never across one.
    """
    violations: list[SimcheckViolation] = []
    for sample in tracer.samples:
        if sample.value < 0:
            violations.append(
                SimcheckViolation(
                    check="gauges",
                    message=(
                        f"counter {sample.name!r} on {sample.track!r} went "
                        f"negative ({sample.value}) at t={sample.at_s:.6f}"
                    ),
                )
            )
    by_track: dict[str, list["Span"]] = {}
    for span in tracer.spans:
        if span.parent is not None:
            continue
        if span.track.startswith(_RESOURCE_TRACK_PREFIXES):
            by_track.setdefault(span.track, []).append(span)
    boundaries = sorted(segment_starts_s)
    for track, spans in by_track.items():
        ordered = sorted(spans, key=lambda s: (s.start_s, s.end_s))
        for segment in _split_at(ordered, boundaries):
            busy = sum(span.dur_s for span in segment)
            elapsed = segment[-1].end_s - segment[0].start_s
            if busy > elapsed and not _close(busy, elapsed):
                violations.append(
                    SimcheckViolation(
                        check="busy-time",
                        message=(
                            f"track {track!r} busy {busy:.9f}s exceeds elapsed "
                            f"{elapsed:.9f}s — serialized resource overlapped itself"
                        ),
                    )
                )
            previous_end = None
            for span in segment:
                if previous_end is not None and span.start_s < previous_end:
                    overlap = previous_end - span.start_s
                    if overlap > max(_ABS_TOL, _REL_TOL * previous_end):
                        violations.append(
                            SimcheckViolation(
                                check="busy-time",
                                message=(
                                    f"track {track!r} spans overlap by {overlap:.3e}s "
                                    f"around t={span.start_s:.6f}"
                                ),
                            )
                        )
                        break
                previous_end = max(previous_end or span.end_s, span.end_s)
    return violations


def _split_at(ordered: "list[Span]", boundaries: "list[float]") -> "list[list[Span]]":
    """Partition start-sorted spans into simulation segments.

    A span belongs to the segment its *start* falls into; with no boundaries
    everything is one segment.
    """
    if not boundaries:
        return [ordered]
    segments: list[list["Span"]] = []
    current: list["Span"] = []
    upcoming = list(boundaries)
    for span in ordered:
        while upcoming and span.start_s >= upcoming[0]:
            upcoming.pop(0)
            if current:
                segments.append(current)
                current = []
        current.append(span)
    if current:
        segments.append(current)
    return segments


def _span_sums(root: "Span") -> dict[str, float]:
    """Per-category duration sums over a request root's descendants."""
    sums = {"queueing": 0.0, "transfer": 0.0, "decode": 0.0, "compute": 0.0}
    for span in root.walk():
        if span is root:
            continue
        if span.category in sums:
            sums[span.category] += span.dur_s
    return sums


def check_span_breakdowns(
    tracer: "Tracer", responses: Iterable["ServeResponse"]
) -> tuple[int, list[SimcheckViolation]]:
    """Per-category span sums reproduce each response's TTFT breakdown.

    Request roots are matched to responses by ``(context_id, arrival)``
    greedily with a tolerance (workloads replay identical requests, so the
    pairing is a multiset match, not positional).  Returns
    ``(matched_count, violations)``.
    """
    violations: list[SimcheckViolation] = []
    roots = [span for span in tracer.root_spans() if span.category == "request"]
    pool: dict[str, list["Span"]] = {}
    for root in roots:
        pool.setdefault(str(root.args.get("context_id")), []).append(root)
    matched = 0
    for response in responses:
        candidates = pool.get(response.context_id, [])
        root = None
        for candidate in candidates:
            if _close(candidate.start_s, response.arrival_s):
                root = candidate
                break
        if root is None:
            violations.append(
                SimcheckViolation(
                    check="spans",
                    message=(
                        f"no request root span for {response.context_id!r} "
                        f"arriving at t={response.arrival_s:.6f}"
                    ),
                )
            )
            continue
        candidates.remove(root)
        matched += 1
        sums = _span_sums(root)
        ttft = response.ttft
        expected = {
            "transfer": ttft.network_s,
            "decode": ttft.decode_s,
            "compute": ttft.compute_s,
        }
        if isinstance(ttft, QueueingTTFTBreakdown):
            expected["queueing"] = ttft.queueing_s
        for category, want in expected.items():
            got = sums[category]
            if not _close(got, want):
                violations.append(
                    SimcheckViolation(
                        check="spans",
                        message=(
                            f"request {response.context_id!r} (t={root.start_s:.6f}) "
                            f"{category} span sum {got:.9f}s != breakdown "
                            f"{want:.9f}s"
                        ),
                    )
                )
        total = root.dur_s
        want_total = ttft.total_s
        if want_total > 0 and not _close(total, want_total):
            violations.append(
                SimcheckViolation(
                    check="spans",
                    message=(
                        f"request {response.context_id!r} root span {total:.9f}s "
                        f"!= TTFT total {want_total:.9f}s"
                    ),
                )
            )
    return matched, violations


def _check_one_store(store, label: str) -> list[SimcheckViolation]:
    violations: list[SimcheckViolation] = []
    max_bytes = getattr(store, "max_bytes", None)
    storage_bytes = getattr(store, "storage_bytes", None)
    if max_bytes is None or storage_bytes is None:
        return violations
    used = storage_bytes() if callable(storage_bytes) else storage_bytes
    if used > max_bytes and not _close(used, max_bytes):
        violations.append(
            SimcheckViolation(
                check="capacity",
                message=(
                    f"store {label} holds {used:.0f} bytes over its "
                    f"{max_bytes:.0f}-byte capacity"
                ),
            )
        )
    return violations


def check_store_capacity(backend) -> list[SimcheckViolation]:
    """No store ends a run holding more bytes than its declared capacity.

    Duck-typed against the three backends: a single-node backend exposes
    ``engine.store``; a cluster backend exposes ``frontend.cluster.nodes``
    whose stores may be tiered (check hot and cold independently).
    """
    violations: list[SimcheckViolation] = []
    engine = getattr(backend, "engine", None)
    store = getattr(engine, "store", None)
    if store is not None:
        violations.extend(_expand_tiers(store, "single-node"))
    frontend = getattr(backend, "frontend", None)
    cluster = getattr(frontend, "cluster", None)
    nodes = getattr(cluster, "nodes", None)
    if nodes:
        for node in nodes.values():
            violations.extend(_expand_tiers(node.store, f"node {node.node_id!r}"))
    return violations


def _expand_tiers(store, label: str) -> list[SimcheckViolation]:
    hot = getattr(store, "hot", None)
    cold = getattr(store, "cold", None)
    if hot is not None and cold is not None:
        return _check_one_store(hot, f"{label} hot tier") + _check_one_store(
            cold, f"{label} cold tier"
        )
    return _check_one_store(store, label)

"""AST determinism lint for the event simulation (rules SIM001–SIM005).

The reproduction's headline guarantee — replaying a
:class:`~repro.serving.api.spec.ServingSpec` through the
:class:`~repro.serving.concurrent.events.SimClock` event loop is bit-for-bit
deterministic — dies by a thousand small cuts: a stray ``time.perf_counter``
here, an unseeded ``random.random`` there, a ``for node in node_set`` whose
order depends on ``PYTHONHASHSEED``.  This module walks Python source with
:mod:`ast` and flags those hazards mechanically:

``SIM001``
    Wall-clock reads (``time.time``/``perf_counter``/``monotonic``,
    ``datetime.now``/``utcnow``, ``date.today``).  Simulated code must take
    time from the clock it is handed, never from the host.
``SIM002``
    Module-level / unseeded RNG: ``random.<fn>`` on the global generator,
    legacy ``np.random.<fn>`` module calls, and ``random.Random()`` /
    ``np.random.default_rng()`` without a seed.  Randomness must come from an
    injected, explicitly seeded generator.
``SIM003``
    Iteration over ``set``/``frozenset`` values (``for`` loops, comprehension
    generators, ``list()``/``tuple()``/``enumerate()``/``iter()`` over a set).
    Set order follows the hash seed, so any scheduling or dispatch decision it
    feeds is unreproducible.  ``dict`` iteration is insertion-ordered in
    modern Python and therefore allowed.  Order-insensitive consumers
    (``sorted``/``min``/``max``/``len``/``any``/``all``/``set``/``frozenset``)
    are exempt.
``SIM004``
    ``==``/``!=`` between values that look like float simulated timestamps
    (names ending ``_s``/``_time``/``_ts``/``_at``/``_deadline`` or named
    ``now``).  Accumulated float time must be compared with a tolerance.
    Comparisons against literal ``0``/``None`` sentinels are exempt.
``SIM005``
    Mutable default arguments (``def f(x, acc=[])``) — shared across calls,
    so one run's state leaks into the next.

Each violation carries ``path:line:col``, a severity, and honours per-line
``# simcheck: ignore[SIM001]`` (or bare ``# simcheck: ignore``) suppressions.
A committed JSON baseline (:func:`load_baseline` / :func:`write_baseline`)
keeps existing debt visible while failing only *new* violations.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "LintViolation",
    "Rule",
    "ALL_RULES",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_IGNORE_RE = re.compile(r"#\s*simcheck:\s*ignore(?:\[([A-Za-z0-9,\s]+)\])?")


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    source: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        return f"{self.path}::{self.rule}::{self.source.strip()}"


class Rule:
    """Base class for lint rules: subclass and implement :meth:`visit`."""

    rule_id = "SIM000"
    severity = SEVERITY_ERROR
    description = ""

    def visit(self, tree: ast.AST, ctx: "_ModuleContext") -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError
        yield  # pragma: no cover


class _ModuleContext:
    """Per-module facts shared by rules: import aliases and set-typed names."""

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> fully qualified module ("np" -> "numpy").
        self.module_aliases: dict[str, str] = {}
        #: local name -> "module.attr" for ``from module import attr``.
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> str | None:
        """Resolve a call target to a dotted name, following import aliases.

        ``time.perf_counter`` with ``import time`` -> ``time.perf_counter``;
        ``perf_counter`` with ``from time import perf_counter`` -> same;
        ``np.random.rand`` with ``import numpy as np`` -> ``numpy.random.rand``.
        Unresolvable targets return ``None``.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in self.module_aliases:
            parts[0] = self.module_aliases[head]
        elif head in self.from_imports:
            parts[0] = self.from_imports[head]
        return ".".join(parts)


# --------------------------------------------------------------------- SIM001
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    rule_id = "SIM001"
    severity = SEVERITY_ERROR
    description = "wall-clock read in simulation code (use the injected SimClock)"

    def visit(self, tree: ast.AST, ctx: _ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target in _WALL_CLOCK_CALLS:
                yield node, f"call to {target}() reads the host clock"


# --------------------------------------------------------------------- SIM002
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "random_sample",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "getrandbits",
    "randbytes",
    "rand",
    "randn",
    "seed",
}


class UnseededRngRule(Rule):
    rule_id = "SIM002"
    severity = SEVERITY_ERROR
    description = "module-level or unseeded RNG (inject a seeded random.Random)"

    def visit(self, tree: ast.AST, ctx: _ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target is None:
                continue
            if target in ("random.Random", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield node, f"{target}() without a seed is nondeterministic"
                continue
            parts = target.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_FNS
            ):
                yield node, (
                    f"{target}() uses the process-global generator; "
                    "inject a seeded random.Random instead"
                )
            elif (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] in _GLOBAL_RANDOM_FNS
            ):
                yield node, (
                    f"{target}() uses the legacy global numpy generator; "
                    "use numpy.random.default_rng(seed) instead"
                )


# --------------------------------------------------------------------- SIM003
_ORDER_SAFE_CONSUMERS = {
    "sorted",
    "min",
    "max",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "enumerate", "iter", "reversed"}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Attribute) and f".{node.attr}" in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a | b, a - b) stays a set when either side is one.
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


def _collect_set_names(tree: ast.AST) -> set[str]:
    """Names assigned from set-producing expressions or annotated as sets.

    Bare names are stored as-is; attribute targets (``self._known: set``) are
    stored as ``.attr`` and matched on the terminal attribute name, module
    wide — a deliberate over-approximation (better a suppressible false
    positive than a silent hash-order dependency).
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        names.add(f".{target.attr}")
        elif isinstance(node, ast.AnnAssign):
            is_set = _annotation_is_set(node.annotation) or (
                node.value is not None and _is_set_expr(node.value, names)
            )
            if is_set and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif is_set and isinstance(node.target, ast.Attribute):
                names.add(f".{node.target.attr}")
        elif isinstance(node, ast.arg) and _annotation_is_set(node.annotation):
            names.add(node.arg)
    return names


class SetIterationRule(Rule):
    rule_id = "SIM003"
    severity = SEVERITY_ERROR
    description = "iteration over a set feeds hash-seed-dependent order downstream"

    def visit(self, tree: ast.AST, ctx: _ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        set_names = _collect_set_names(tree)
        safe_args: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_SAFE_CONSUMERS:
                    for arg in node.args:
                        safe_args.add(id(arg))
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                if id(node.iter) not in safe_args and _is_set_expr(node.iter, set_names):
                    yield node.iter, "for-loop over a set has hash-seed-dependent order"
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    if id(gen.iter) not in safe_args and _is_set_expr(
                        gen.iter, set_names
                    ):
                        if isinstance(node, ast.SetComp):
                            # set -> set keeps the result unordered; harmless.
                            continue
                        yield gen.iter, (
                            "comprehension over a set has hash-seed-dependent order"
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_SENSITIVE_CONSUMERS:
                    for arg in node.args[:1]:
                        if id(arg) not in safe_args and _is_set_expr(arg, set_names):
                            yield arg, (
                                f"{node.func.id}() over a set captures "
                                "hash-seed-dependent order"
                            )


# --------------------------------------------------------------------- SIM004
_TIMESTAMP_NAME_RE = re.compile(
    r"(?:^|_)(?:now|arrival|finish|start|end|admitted|enqueued|ready|deadline)$"
    r"|(?:_s|_time|_ts|_at|_deadline)$"
)


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _looks_like_timestamp(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return name is not None and bool(_TIMESTAMP_NAME_RE.search(name))


def _is_sentinel(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return node.value is None or node.value == 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        return node.operand.value == 0
    return False


class TimestampEqualityRule(Rule):
    rule_id = "SIM004"
    severity = SEVERITY_WARNING
    description = "float simulated timestamps compared with ==/!= (use a tolerance)"

    def visit(self, tree: ast.AST, ctx: _ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_sentinel(left) or _is_sentinel(right):
                    continue
                if _looks_like_timestamp(left) and _looks_like_timestamp(right):
                    yield node, (
                        "exact ==/!= between simulated timestamps; accumulated "
                        "float time needs a tolerance compare"
                    )


# --------------------------------------------------------------------- SIM005
_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "deque", "OrderedDict"}


class MutableDefaultRule(Rule):
    rule_id = "SIM005"
    severity = SEVERITY_ERROR
    description = "mutable default argument shared across calls"

    def visit(self, tree: ast.AST, ctx: _ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    yield default, (
                        f"mutable default in {node.name}() is shared across calls"
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_FACTORIES
                ):
                    yield default, (
                        f"mutable default {default.func.id}() in {node.name}() "
                        "is shared across calls"
                    )


ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRngRule(),
    SetIterationRule(),
    TimestampEqualityRule(),
    MutableDefaultRule(),
)


def _suppressions(source_lines: Sequence[str]) -> dict[int, set[str] | None]:
    """Map 1-based line -> suppressed rule ids (``None`` = all rules)."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source_lines, start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            out[lineno] = None
        else:
            out[lineno] = {part.strip() for part in match.group(1).split(",") if part.strip()}
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] = ALL_RULES,
    select: set[str] | None = None,
) -> list[LintViolation]:
    """Lint one module's source text; returns violations sorted by location."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule="SIM000",
                severity=SEVERITY_ERROR,
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                source="",
            )
        ]
    source_lines = source.splitlines()
    suppressed = _suppressions(source_lines)
    ctx = _ModuleContext(tree)
    violations: list[LintViolation] = []
    for rule in rules:
        if select is not None and rule.rule_id not in select:
            continue
        for node, message in rule.visit(tree, ctx):
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
            end_line = getattr(node, "end_lineno", line) or line
            is_suppressed = False
            for n in range(line, end_line + 1):
                if n in suppressed:
                    rules_off = suppressed[n]
                    if rules_off is None or rule.rule_id in rules_off:
                        is_suppressed = True
                        break
            if is_suppressed:
                continue
            text = source_lines[line - 1] if 0 < line <= len(source_lines) else ""
            violations.append(
                LintViolation(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    path=path,
                    line=line,
                    col=col + 1,
                    message=message,
                    source=text,
                )
            )
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under each path (files pass through, dirs recurse)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] = ALL_RULES,
    select: set[str] | None = None,
) -> list[LintViolation]:
    """Lint every Python file under ``paths``."""
    violations: list[LintViolation] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        violations.extend(
            lint_source(source, path=str(file_path), rules=rules, select=select)
        )
    return violations


# ------------------------------------------------------------------- baseline
def load_baseline(path: str | Path) -> dict[str, int]:
    """Load a baseline file: fingerprint -> allowed count.  Missing -> empty."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    entries = payload.get("entries", {})
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(path: str | Path, violations: Iterable[LintViolation]) -> dict[str, int]:
    """Write the baseline for ``violations``; returns the entry map."""
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.fingerprint] = counts.get(violation.fingerprint, 0) + 1
    payload = {
        "version": 1,
        "comment": (
            "simcheck lint baseline: pre-existing violations grandfathered in. "
            "Refresh with `python -m repro.simcheck src/repro --write-baseline`."
        ),
        "entries": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return counts


def apply_baseline(
    violations: Sequence[LintViolation], baseline: dict[str, int]
) -> tuple[list[LintViolation], list[str]]:
    """Split violations into (new, stale-baseline-fingerprints).

    Each baseline fingerprint absorbs up to its recorded count of matching
    violations; the rest are *new*.  Fingerprints in the baseline with no
    matching violation at all are *stale* (fixed debt — refresh the baseline).
    """
    remaining = dict(baseline)
    new: list[LintViolation] = []
    for violation in violations:
        key = violation.fingerprint
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(violation)
    matched = {
        v.fingerprint for v in violations if v.fingerprint in baseline
    }
    stale = sorted(key for key in baseline if key not in matched)
    return new, stale

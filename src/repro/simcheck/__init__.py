"""Correctness tooling for the event simulation: lint + runtime sanitizers.

The reproduction's results are only as good as the determinism of its
discrete-event core.  ``repro.simcheck`` defends that determinism on two
fronts:

* **Static analysis** (:mod:`repro.simcheck.lint`, ``python -m repro.simcheck``):
  AST rules SIM001–SIM005 flag wall-clock reads, unseeded RNG, set iteration,
  float-timestamp equality and mutable defaults, with per-line
  ``# simcheck: ignore[...]`` suppression and a committed baseline.
* **Runtime sanitizers** (:mod:`repro.simcheck.sanitizers`,
  :mod:`repro.simcheck.invariants`, :mod:`repro.simcheck.race`): a
  :class:`ClockSanitizer` that records past-time schedules, conservation
  invariant checks on traced runs (span sums == TTFT breakdown, busy ≤
  elapsed, gauges ≥ 0, store bytes ≤ capacity) and an event-order race
  detector that perturbs same-timestamp tie-breaks.  Enable per run with
  ``serve(..., simcheck=True)``, per process with
  :func:`repro.simcheck.runtime.enable_default` or ``REPRO_SIMCHECK=1``.
"""

from .lint import ALL_RULES, LintViolation, lint_paths, lint_source
from .race import RaceReport, check_spec_order_independence, find_order_race
from .sanitizers import (
    ClockSanitizer,
    SimcheckConfig,
    SimcheckError,
    SimcheckMonitor,
    SimcheckReport,
    SimcheckViolation,
)

__all__ = [
    "ALL_RULES",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "RaceReport",
    "check_spec_order_independence",
    "find_order_race",
    "ClockSanitizer",
    "SimcheckConfig",
    "SimcheckError",
    "SimcheckMonitor",
    "SimcheckReport",
    "SimcheckViolation",
]

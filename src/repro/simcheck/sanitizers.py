"""Runtime sanitizers for the event simulation.

Where :mod:`repro.simcheck.lint` catches determinism hazards in source text,
this module catches them at run time:

* :class:`ClockSanitizer` — a :class:`~repro.serving.concurrent.events.SimClock`
  that records every past-time schedule (the base clock silently clamps them)
  and asserts ``now`` never moves backwards while events fire.  With a
  ``perturb_seed`` it also randomises same-timestamp tie-break order, which the
  race detector (:mod:`repro.simcheck.race`) uses to expose order-dependent
  results.
* :class:`SimcheckMonitor` — created by the :class:`~repro.serving.api.driver.Driver`
  when ``simcheck=`` is enabled; hands sanitized clocks to the event-driven
  backends, then validates conservation invariants on the finished run
  (:mod:`repro.simcheck.invariants`) and either raises :class:`SimcheckError`
  (strict) or attaches the findings to ``report.simcheck``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..serving.concurrent.events import SimClock

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..serving.api.types import RunReport
    from ..telemetry.trace import Tracer

__all__ = [
    "SimcheckError",
    "SimcheckViolation",
    "PastSchedule",
    "ClockSanitizer",
    "SimcheckConfig",
    "SimcheckReport",
    "SimcheckMonitor",
]


class SimcheckError(RuntimeError):
    """A simulation invariant was violated with strict sanitizers enabled."""


@dataclass(frozen=True)
class SimcheckViolation:
    """One invariant failure found by the monitor."""

    check: str
    message: str

    def format(self) -> str:
        return f"[{self.check}] {self.message}"


@dataclass(frozen=True)
class PastSchedule:
    """Diagnostic record of one schedule() call that asked for the past."""

    requested_s: float
    now_s: float

    @property
    def slip_s(self) -> float:
        """How far in the past the event was requested."""
        return self.now_s - self.requested_s


class ClockSanitizer(SimClock):
    """A :class:`SimClock` that turns silent clamps into diagnostics.

    Parameters
    ----------
    strict:
        Raise :class:`SimcheckError` immediately on a past-time schedule
        instead of just recording it.
    perturb_seed:
        When set, same-timestamp events fire in a seeded-random order instead
        of scheduling (FIFO) order.  A simulation whose results change under
        perturbation depends on tie-break order — the exact hazard the race
        detector hunts.
    """

    def __init__(self, strict: bool = False, perturb_seed: int | None = None) -> None:
        super().__init__()
        self.strict = strict
        self.past_schedules: list[PastSchedule] = []
        self._perturb_rng = (
            random.Random(perturb_seed) if perturb_seed is not None else None
        )

    def _tie_break(self):
        seq = super()._tie_break()
        if self._perturb_rng is None:
            return seq
        # The random draw leads the key so equal-time events shuffle; the seq
        # tail keeps the key unique and the heap comparison total.
        return (self._perturb_rng.random(), seq)

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        if at < self._now:
            self.past_schedules.append(PastSchedule(requested_s=at, now_s=self._now))
            if self.strict:
                raise SimcheckError(
                    f"schedule at t={at:.9f} requested in the past "
                    f"(now={self._now:.9f}); simulated causality violated"
                )
        super().schedule(at, callback)

    def run(self) -> float:
        """Drain the heap, asserting time never moves backwards."""
        while self._heap:
            at, _, callback = heapq.heappop(self._heap)
            if at < self._now:
                raise SimcheckError(
                    f"event loop popped t={at:.9f} after reaching "
                    f"now={self._now:.9f}; clock is not monotonic"
                )
            self._now = at
            callback()
        return self._now


@dataclass(frozen=True)
class SimcheckConfig:
    """What the runtime sanitizers enforce.

    ``strict`` raises :class:`SimcheckError` when any check fails; otherwise
    findings are only attached to ``RunReport.simcheck``.  ``perturb_seed``
    randomises same-timestamp tie-breaks (used by the race detector — leave
    ``None`` for normal sanitized runs).
    """

    strict: bool = True
    check_clock: bool = True
    check_spans: bool = True
    check_gauges: bool = True
    check_capacity: bool = True
    perturb_seed: int | None = None


@dataclass
class SimcheckReport:
    """Outcome of one sanitized run, attached as ``RunReport.simcheck``."""

    checks_run: list[str] = field(default_factory=list)
    violations: list[SimcheckViolation] = field(default_factory=list)
    clocks: int = 0
    past_schedules: int = 0
    spans_matched: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        if self.ok:
            return (
                f"simcheck ok: {', '.join(self.checks_run) or 'no checks'} "
                f"({self.clocks} clock(s), {self.spans_matched} span tree(s))"
            )
        lines = [f"simcheck found {len(self.violations)} violation(s):"]
        lines.extend(f"  {violation.format()}" for violation in self.violations)
        return "\n".join(lines)


class SimcheckMonitor:
    """Per-run sanitizer state threaded from the driver into the backends."""

    def __init__(self, config: SimcheckConfig | None = None) -> None:
        self.config = config or SimcheckConfig()
        self.clocks: list[ClockSanitizer] = []

    def make_clock(self) -> ClockSanitizer:
        """Clock factory handed to the event-driven simulator."""
        clock = ClockSanitizer(
            strict=False, perturb_seed=self._next_perturb_seed()
        )
        self.clocks.append(clock)
        return clock

    def _next_perturb_seed(self) -> int | None:
        if self.config.perturb_seed is None:
            return None
        # Each segment/backend run gets a distinct but deterministic seed.
        return self.config.perturb_seed + len(self.clocks)

    def finalize(
        self,
        report: "RunReport",
        backend: object = None,
        tracer: "Tracer | None" = None,
    ) -> SimcheckReport:
        """Validate invariants on the finished run and attach the findings.

        Raises :class:`SimcheckError` when strict and anything failed.
        """
        from . import invariants

        result = SimcheckReport(clocks=len(self.clocks))
        config = self.config
        if config.check_clock:
            result.checks_run.append("clock")
            for clock in self.clocks:
                result.past_schedules += len(clock.past_schedules)
                result.violations.extend(invariants.check_clock(clock))
        traced = tracer is not None and getattr(tracer, "enabled", False)
        if traced and config.check_gauges:
            result.checks_run.append("gauges")
            result.violations.extend(
                invariants.check_tracer_tracks(
                    tracer,
                    segment_starts_s=getattr(report, "segment_boundary_times_s", ()),
                )
            )
        if traced and config.check_spans:
            result.checks_run.append("spans")
            matched, span_violations = invariants.check_span_breakdowns(
                tracer, report.responses
            )
            result.spans_matched = matched
            result.violations.extend(span_violations)
        if config.check_capacity and backend is not None:
            result.checks_run.append("capacity")
            result.violations.extend(invariants.check_store_capacity(backend))
        report.simcheck = result
        if config.strict and not result.ok:
            raise SimcheckError(result.format())
        return result

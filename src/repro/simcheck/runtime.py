"""Process-wide enablement of the runtime sanitizers.

The :class:`~repro.serving.api.driver.Driver` takes an explicit ``simcheck=``
argument, but most sanitized runs come from the test suite, where threading a
flag through every ``serve()`` call would be noise.  This module holds the
*default*: the pytest fixture (or ``REPRO_SIMCHECK=1`` in the environment)
turns sanitizers on for every driver run that did not say otherwise.

>>> from repro.simcheck.runtime import enabled, default_config
>>> with enabled():
...     assert default_config() is not None
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .sanitizers import SimcheckConfig

__all__ = ["enable_default", "disable_default", "default_config", "enabled"]

_default: SimcheckConfig | None = None


def enable_default(config: SimcheckConfig | None = None) -> SimcheckConfig:
    """Make every subsequent driver run sanitized unless it opts out."""
    global _default
    _default = config or SimcheckConfig()
    return _default


def disable_default() -> None:
    """Back to opt-in sanitizers."""
    global _default
    _default = None


def default_config() -> SimcheckConfig | None:
    """The config a driver run uses when built with ``simcheck=None``.

    Resolution order: :func:`enable_default` wins, then the ``REPRO_SIMCHECK``
    environment variable (any value but ``0``/empty enables strict checks),
    then ``None`` (sanitizers off).
    """
    if _default is not None:
        return _default
    env = os.environ.get("REPRO_SIMCHECK", "")
    if env and env != "0":
        return SimcheckConfig()
    return None


@contextmanager
def enabled(config: SimcheckConfig | None = None):
    """Context manager form of :func:`enable_default` (used by the fixture)."""
    global _default
    previous = _default
    enable_default(config)
    try:
        yield _default
    finally:
        _default = previous

"""NarrativeQA (LongBench): question answering over stories/scripts (F1 task).

Contexts are long narratives (Table 2: 200 contexts, median 14K, std 1916,
P95 15K); the metric is token-level F1.  Absolute F1 on NarrativeQA is much
lower than TriviaQA (Figure 8g tops out around 30%), which the base-quality
table reflects.
"""

from __future__ import annotations

from .base import SyntheticDataset

__all__ = ["NarrativeQADataset"]


class NarrativeQADataset(SyntheticDataset):
    """Synthetic equivalent of the LongBench NarrativeQA split."""

    name = "narrativeqa"
    task = "qa_f1"
    size = 200
    length_median = 14_000
    length_std = 1_916
    question_template = "Answer the question about the story provided above."
    base_quality_by_model = {
        "mistral-7b": 0.24,
        "llama-7b": 0.18,
        "llama-13b": 0.20,
        "llama-34b": 0.27,
        "llama-70b": 0.30,
        "llama-3b": 0.12,
    }
    default_base_quality = 0.25

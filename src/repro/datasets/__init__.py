"""Synthetic equivalents of the paper's four evaluation datasets (Table 2)."""

from .base import MAX_CONTEXT_TOKENS, MIN_CONTEXT_TOKENS, ContextRecord, SyntheticDataset
from .longchat import LongChatDataset
from .narrativeqa import NarrativeQADataset
from .triviaqa import TriviaQADataset
from .wikitext import WikiTextDataset

#: All four evaluation datasets keyed by name.
ALL_DATASETS = {
    "longchat": LongChatDataset,
    "triviaqa": TriviaQADataset,
    "narrativeqa": NarrativeQADataset,
    "wikitext": WikiTextDataset,
}


def get_dataset(name: str, seed: int = 0) -> SyntheticDataset:
    """Instantiate a dataset by name."""
    try:
        return ALL_DATASETS[name](seed=seed)
    except KeyError:
        known = ", ".join(sorted(ALL_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None


__all__ = [
    "ALL_DATASETS",
    "ContextRecord",
    "LongChatDataset",
    "MAX_CONTEXT_TOKENS",
    "MIN_CONTEXT_TOKENS",
    "NarrativeQADataset",
    "SyntheticDataset",
    "TriviaQADataset",
    "WikiTextDataset",
    "get_dataset",
]

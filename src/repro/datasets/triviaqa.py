"""TriviaQA (LongBench): single-document reading comprehension (F1 task).

The model answers a trivia question from one supplied document.  Context
lengths vary widely (Table 2: 200 contexts, median 9.3K, std 4497, P95 15K);
the metric is token-level F1 against the ground-truth answer.
"""

from __future__ import annotations

from .base import SyntheticDataset

__all__ = ["TriviaQADataset"]


class TriviaQADataset(SyntheticDataset):
    """Synthetic equivalent of the LongBench TriviaQA split."""

    name = "triviaqa"
    task = "qa_f1"
    size = 200
    length_median = 9_300
    length_std = 4_497
    question_template = "Answer the trivia question using the provided document."
    #: Lossless-cache F1 per model (Figure 8e shows ~90+% F1 for Llama-70B).
    base_quality_by_model = {
        "mistral-7b": 0.86,
        "llama-7b": 0.78,
        "llama-13b": 0.82,
        "llama-34b": 0.90,
        "llama-70b": 0.93,
        "llama-3b": 0.62,
    }
    default_base_quality = 0.85

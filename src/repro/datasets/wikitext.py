"""WikiText: next-token prediction over Wikipedia articles (perplexity task).

The model predicts the next token given the page's preceding text (Table 2:
62 contexts, median 5.9K, std 4548, P95 14.8K); the metric is perplexity
(lower is better).
"""

from __future__ import annotations

from .base import SyntheticDataset

__all__ = ["WikiTextDataset"]


class WikiTextDataset(SyntheticDataset):
    """Synthetic equivalent of the WikiText language-modelling dataset."""

    name = "wikitext"
    task = "perplexity"
    size = 62
    length_median = 5_900
    length_std = 4_548
    question_template = "Continue the article."
    #: Lossless-cache perplexity per model (lower is better).
    base_quality_by_model = {
        "mistral-7b": 6.2,
        "llama-7b": 7.3,
        "llama-13b": 6.8,
        "llama-34b": 5.8,
        "llama-70b": 5.2,
        "llama-3b": 9.5,
    }
    default_base_quality = 6.5

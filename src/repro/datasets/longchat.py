"""LongChat: long multi-round conversation histories (accuracy task).

The LongChat topic-retrieval task asks the model questions like "What was the
first topic we discussed?" over a long conversation history.  Contexts are
tightly clustered around 9.4K tokens (Table 2: 200 contexts, median 9.4K,
std 164, P95 9.6K); the metric is exact-match accuracy of the retrieved topic.
"""

from __future__ import annotations

from .base import SyntheticDataset

__all__ = ["LongChatDataset"]


class LongChatDataset(SyntheticDataset):
    """Synthetic equivalent of the LongChat topic-retrieval dataset."""

    name = "longchat"
    task = "qa_accuracy"
    size = 200
    length_median = 9_400
    length_std = 164
    question_template = "What is the first topic we discussed?"
    #: Lossless-cache accuracy per model.  Larger models retrieve the topic
    #: essentially perfectly; the paper's Figure 8 shows accuracies near 1.0
    #: across models with 8-bit quantized caches.
    base_quality_by_model = {
        "mistral-7b": 1.0,
        "llama-7b": 0.92,
        "llama-13b": 0.94,
        "llama-34b": 0.97,
        "llama-70b": 0.98,
        "llama-3b": 0.80,
    }
    default_base_quality = 0.95

"""Dataset abstractions for the evaluation workloads.

The paper evaluates on 662 long contexts drawn from four datasets (Table 2):
LongChat, TriviaQA, NarrativeQA and WikiText, with context lengths between
1.4K and 16K tokens.  The corpora themselves are not redistributable here, so
each dataset is represented by a synthetic generator that reproduces the
statistics that matter to the evaluation: the number of contexts, the context
length distribution (median / std / P95 from Table 2), the task type and its
quality metric, and the base quality a lossless KV cache achieves per model.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from ..metrics.stats import percentiles

__all__ = ["ContextRecord", "SyntheticDataset"]

#: Context length bounds reported for the whole evaluation corpus.
MIN_CONTEXT_TOKENS = 1_400
MAX_CONTEXT_TOKENS = 16_000


@dataclass(frozen=True)
class ContextRecord:
    """One long-context record of a dataset.

    Attributes
    ----------
    context_id:
        Stable identifier ("<dataset>-<index>"); it seeds the synthetic KV
        generation, so the same record always produces the same cache.
    num_tokens:
        Context length in tokens.
    prompt_tokens:
        Length of the user query appended after the context.
    task:
        Quality-model task name (``qa_accuracy``, ``qa_f1``, ``perplexity``).
    question:
        A human-readable placeholder query (used by the examples).
    """

    context_id: str
    num_tokens: int
    prompt_tokens: int
    task: str
    question: str


class SyntheticDataset:
    """Base class for the synthetic dataset generators.

    Subclasses configure the name, size, task, length distribution and the
    per-model base quality; this class draws the deterministic records.
    """

    name: str = "base"
    task: str = "qa_accuracy"
    size: int = 0
    #: (median, std) of the context length distribution, from Table 2.
    length_median: int = 0
    length_std: int = 0
    #: Default question template for the examples.
    question_template: str = "What is the answer based on the provided context?"
    #: Base (lossless-cache) quality per model name; ``None`` entries fall
    #: back to ``default_base_quality``.
    base_quality_by_model: Mapping[str, float] = {}
    default_base_quality: float = 1.0
    prompt_tokens: int = 48

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ----------------------------------------------------------------- records
    def records(self, limit: int | None = None) -> list[ContextRecord]:
        """Deterministically generate the dataset's context records."""
        count = self.size if limit is None else min(limit, self.size)
        # zlib.crc32 keeps the per-dataset seed stable across processes
        # (Python's built-in str hash is randomised per interpreter run).
        name_seed = zlib.crc32(self.name.encode("utf-8"))
        rng = np.random.default_rng(self.seed + name_seed)
        lengths = self._sample_lengths(rng, self.size)[:count]
        return [
            ContextRecord(
                context_id=f"{self.name}-{index}",
                num_tokens=int(length),
                prompt_tokens=self.prompt_tokens,
                task=self.task,
                question=self.question_template,
            )
            for index, length in enumerate(lengths)
        ]

    def __iter__(self) -> Iterator[ContextRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------ lengths
    def _sample_lengths(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample context lengths matching the Table 2 statistics."""
        lengths = rng.normal(self.length_median, self.length_std, size=count)
        return np.clip(np.round(lengths), MIN_CONTEXT_TOKENS, MAX_CONTEXT_TOKENS).astype(int)

    # ------------------------------------------------------------------ quality
    def base_quality_for(self, model_name: str) -> float:
        """Lossless-cache quality of ``model_name`` on this dataset."""
        return float(self.base_quality_by_model.get(model_name, self.default_base_quality))

    # ------------------------------------------------------------------ summary
    def length_statistics(self, limit: int | None = None) -> dict[str, float]:
        """Size / median / std / P95 of the generated context lengths (Table 2)."""
        lengths = np.array([record.num_tokens for record in self.records(limit)])
        median, p95 = percentiles(lengths, (50.0, 95.0))
        return {
            "size": int(len(lengths)),
            "median": median,
            "std": float(np.std(lengths)),
            "p95": p95,
        }

"""Bandwidth traces for the KV streaming experiments.

The paper evaluates CacheGen under a wide range of network conditions:
constant links from 0.4 to 400 Gbps (Figure 11), a step trace illustrating the
adaptation logic (Figure 7), and random traces where each chunk's bandwidth is
drawn from 0.1-10 Gbps (Figure 13).  A bandwidth trace maps time (seconds) to
available throughput (bits per second); the :class:`~repro.network.link.NetworkLink`
integrates a trace to turn byte counts into transfer delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "BandwidthTrace",
    "ConstantTrace",
    "StepTrace",
    "PiecewiseTrace",
    "RandomTrace",
    "gbps",
]

GBPS = 1e9


def gbps(value: float) -> float:
    """Convert Gbps to bits per second.

    Example
    -------
    >>> gbps(3.0)
    3000000000.0
    """
    return value * GBPS


class BandwidthTrace:
    """Base class: bandwidth (bits/s) as a piecewise-constant function of time."""

    def bandwidth_at(self, time_s: float) -> float:
        """Available throughput in bits/s at ``time_s``."""
        raise NotImplementedError

    def average_bandwidth(self, start_s: float, end_s: float, resolution_s: float = 0.01) -> float:
        """Mean throughput over a window (bits/s)."""
        if end_s <= start_s:
            return self.bandwidth_at(start_s)
        points = np.arange(start_s, end_s, resolution_s)
        return float(np.mean([self.bandwidth_at(t) for t in points]))


@dataclass(frozen=True)
class ConstantTrace(BandwidthTrace):
    """A fixed-rate link.

    Example
    -------
    >>> trace = ConstantTrace(gbps(3.0))
    >>> trace.bandwidth_at(10.0) == gbps(3.0)
    True
    """

    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")

    def bandwidth_at(self, time_s: float) -> float:
        return self.bandwidth_bps


@dataclass(frozen=True)
class PiecewiseTrace(BandwidthTrace):
    """Piecewise-constant bandwidth defined by breakpoints.

    ``times`` are the start times of each segment (must begin at 0 and be
    increasing); ``bandwidths_bps`` the corresponding rates.  The final
    segment extends to infinity.
    """

    times: tuple[float, ...]
    bandwidths_bps: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.bandwidths_bps) or not self.times:
            raise ValueError("times and bandwidths must be equally sized and non-empty")
        if self.times[0] != 0.0:
            raise ValueError("the first segment must start at time 0")
        if any(t1 >= t2 for t1, t2 in zip(self.times, self.times[1:])):
            raise ValueError("segment start times must be strictly increasing")
        if any(b <= 0 for b in self.bandwidths_bps):
            raise ValueError("bandwidths must be positive")

    def bandwidth_at(self, time_s: float) -> float:
        index = int(np.searchsorted(self.times, time_s, side="right")) - 1
        index = max(index, 0)
        return self.bandwidths_bps[index]


def StepTrace(
    initial_bps: float, drop_bps: float, recovered_bps: float, drop_at_s: float, recover_at_s: float
) -> PiecewiseTrace:
    """The Figure 7 style trace: start fast, drop sharply, partially recover.

    Example
    -------
    >>> trace = StepTrace(gbps(3.0), gbps(0.5), gbps(3.0), drop_at_s=2.0, recover_at_s=6.0)
    >>> trace.bandwidth_at(4.0) == gbps(0.5)
    True
    """
    if not 0 < drop_at_s < recover_at_s:
        raise ValueError("require 0 < drop_at_s < recover_at_s")
    return PiecewiseTrace(
        times=(0.0, drop_at_s, recover_at_s),
        bandwidths_bps=(initial_bps, drop_bps, recovered_bps),
    )


@dataclass(frozen=True)
class RandomTrace(BandwidthTrace):
    """Bandwidth re-drawn uniformly from a range every ``interval_s`` seconds.

    This reproduces the §7.4 setup where each context chunk's bandwidth is
    sampled from a random distribution between 0.1 and 10 Gbps.

    Example
    -------
    >>> trace = RandomTrace(min_bps=gbps(0.1), max_bps=gbps(10.0), seed=0)
    >>> trace.bandwidth_at(1.0) == RandomTrace(seed=0).bandwidth_at(1.0)  # doctest: +SKIP
    True
    """

    min_bps: float = 0.1 * GBPS
    max_bps: float = 10.0 * GBPS
    interval_s: float = 0.25
    seed: int = 0
    horizon_s: float = 120.0

    def __post_init__(self) -> None:
        if self.min_bps <= 0 or self.max_bps <= self.min_bps:
            raise ValueError("require 0 < min_bps < max_bps")
        if self.interval_s <= 0 or self.horizon_s <= 0:
            raise ValueError("interval_s and horizon_s must be positive")
        rng = np.random.default_rng(self.seed)
        num_segments = int(np.ceil(self.horizon_s / self.interval_s)) + 1
        samples = rng.uniform(self.min_bps, self.max_bps, size=num_segments)
        object.__setattr__(self, "_samples", tuple(samples))

    def bandwidth_at(self, time_s: float) -> float:
        samples: Sequence[float] = getattr(self, "_samples")
        index = min(int(max(time_s, 0.0) // self.interval_s), len(samples) - 1)
        return samples[index]

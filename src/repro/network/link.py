"""A simulated network link between the KV storage server and the GPU server.

The link integrates a :class:`~repro.network.bandwidth.BandwidthTrace` to
answer the only question the streamer needs: *how long does it take to push N
bytes starting at time t?*  It also reports the throughput actually achieved
for a completed transfer, which is what CacheGen's adapter uses to estimate
the bandwidth available to the next chunk (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .bandwidth import BandwidthTrace, ConstantTrace

__all__ = ["NetworkLink", "TransferResult"]


@dataclass(frozen=True)
class TransferResult:
    """Outcome of transferring one payload over the link."""

    start_time: float
    end_time: float
    num_bytes: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def achieved_throughput_bps(self) -> float:
        """Observed throughput in bits per second."""
        if self.duration <= 0:
            return float("inf")
        return self.num_bytes * 8.0 / self.duration


class NetworkLink:
    """Simulates byte transfers over a time-varying link.

    Parameters
    ----------
    trace:
        Bandwidth trace of the link.  Defaults to a constant 3 Gbps link, the
        paper's headline evaluation setting.
    rtt_s:
        Round-trip time added once per transfer (request/first-byte latency).
    integration_step_s:
        Time step used to integrate the trace.

    Example
    -------
    >>> link = NetworkLink(ConstantTrace(gbps(3.0)))
    >>> link.transfer(num_bytes=3e9 / 8).duration  # one second of payload
    1.0
    """

    def __init__(
        self,
        trace: BandwidthTrace | None = None,
        rtt_s: float = 0.0,
        integration_step_s: float = 0.005,
    ) -> None:
        if integration_step_s <= 0:
            raise ValueError("integration_step_s must be positive")
        if rtt_s < 0:
            raise ValueError("rtt_s must be non-negative")
        self.trace = trace or ConstantTrace(3e9)
        self.rtt_s = rtt_s
        self.integration_step_s = integration_step_s

    def transfer(self, num_bytes: float, start_time: float = 0.0) -> TransferResult:
        """Simulate sending ``num_bytes`` starting at ``start_time`` seconds."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return TransferResult(start_time=start_time, end_time=start_time, num_bytes=0.0)

        remaining_bits = num_bytes * 8.0
        time = start_time + self.rtt_s
        step = self.integration_step_s
        # Integrate the piecewise-constant trace in fixed steps; the final
        # partial step is computed exactly.
        while remaining_bits > 0:
            rate = self.trace.bandwidth_at(time)
            bits_this_step = rate * step
            if bits_this_step >= remaining_bits:
                time += remaining_bits / rate
                remaining_bits = 0.0
            else:
                remaining_bits -= bits_this_step
                time += step
        return TransferResult(start_time=start_time, end_time=time, num_bytes=num_bytes)

    def estimate_transfer_time(self, num_bytes: float, at_time: float = 0.0) -> float:
        """Expected transfer time assuming the current rate stays constant.

        This mirrors the adapter's estimator: it measures the throughput of
        the previous chunk and assumes it persists (§5.3).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        rate = self.trace.bandwidth_at(at_time)
        return self.rtt_s + num_bytes * 8.0 / rate

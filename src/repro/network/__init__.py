"""Network substrate: bandwidth traces, links, and pipelined transfer simulation."""

from .bandwidth import (
    BandwidthTrace,
    ConstantTrace,
    PiecewiseTrace,
    RandomTrace,
    StepTrace,
    gbps,
)
from .link import NetworkLink, TransferResult
from .simulator import PipelineResult, PipelineSegment, PipelineSimulator

__all__ = [
    "BandwidthTrace",
    "ConstantTrace",
    "NetworkLink",
    "PiecewiseTrace",
    "PipelineResult",
    "PipelineSegment",
    "PipelineSimulator",
    "RandomTrace",
    "StepTrace",
    "TransferResult",
    "gbps",
]

"""Pipelined transfer/processing simulation.

CacheGen pipelines the decoding of context chunk ``i-1`` with the network
transmission of chunk ``i`` (§6), so the end-to-end delay of fetching a KV
cache is not "transfer + decode" but the makespan of a two-stage pipeline.
:class:`PipelineSimulator` computes that makespan over a
:class:`~repro.network.link.NetworkLink`, and is also used for the text
fallback (where the per-chunk processing stage is the prefill computation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .link import NetworkLink

__all__ = ["PipelineSegment", "PipelineResult", "PipelineSimulator"]


@dataclass(frozen=True)
class PipelineSegment:
    """One unit of work: transfer ``num_bytes`` then process for ``process_s``."""

    num_bytes: float
    process_s: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.num_bytes < 0 or self.process_s < 0:
            raise ValueError("segment sizes and delays must be non-negative")


@dataclass
class PipelineResult:
    """Timeline of a pipelined transfer.

    Attributes
    ----------
    transfer_end_times / process_end_times:
        Per-segment completion times of the two stages.
    total_time:
        Completion time of the last processing stage (relative to start 0).
    network_time:
        Time the link was busy (end of the last transfer).
    processing_time:
        Sum of per-segment processing delays.
    """

    transfer_end_times: list[float] = field(default_factory=list)
    process_end_times: list[float] = field(default_factory=list)
    total_time: float = 0.0
    network_time: float = 0.0
    processing_time: float = 0.0


class PipelineSimulator:
    """Simulates transfer of segments with processing pipelined behind it."""

    def __init__(self, link: NetworkLink) -> None:
        self.link = link

    def run(self, segments: Sequence[PipelineSegment], start_time: float = 0.0) -> PipelineResult:
        """Simulate the pipeline and return its timeline.

        The transfer of segment ``i+1`` starts as soon as segment ``i`` has
        finished transferring; the processing of segment ``i`` starts once it
        is fully received and the processor is free (processing is sequential,
        as chunks must be appended to the KV cache in order).
        """
        result = PipelineResult()
        transfer_clock = start_time
        process_clock = start_time
        for segment in segments:
            transfer = self.link.transfer(segment.num_bytes, transfer_clock)
            transfer_clock = transfer.end_time
            process_start = max(transfer_clock, process_clock)
            process_clock = process_start + segment.process_s
            result.transfer_end_times.append(transfer_clock)
            result.process_end_times.append(process_clock)
            result.processing_time += segment.process_s
        result.network_time = transfer_clock - start_time
        result.total_time = (process_clock if segments else start_time) - start_time
        return result

"""Storage substrate: the KV cache store, eviction policies and cost model."""

from .cost import CostAnalysis, CostModel, PricingModel
from .eviction import CostAwarePolicy, EvictionPolicy, LFUPolicy, LRUPolicy, make_policy
from .kv_store import CapacityError, KVCacheStore, StoredContext

__all__ = [
    "CapacityError",
    "CostAnalysis",
    "CostAwarePolicy",
    "CostModel",
    "EvictionPolicy",
    "KVCacheStore",
    "LFUPolicy",
    "LRUPolicy",
    "PricingModel",
    "StoredContext",
    "make_policy",
]

"""Storage substrate: the KV cache store and the storage/recompute cost model."""

from .cost import CostAnalysis, CostModel, PricingModel
from .kv_store import KVCacheStore, StoredContext

__all__ = ["CostAnalysis", "CostModel", "KVCacheStore", "PricingModel", "StoredContext"]

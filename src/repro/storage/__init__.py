"""Storage substrate: KV cache stores (hot and tiered), eviction and cost."""

from .cost import CostAnalysis, CostModel, PricingModel, TieredCostModel, TieredPricingModel
from .eviction import CostAwarePolicy, EvictionPolicy, LFUPolicy, LRUPolicy, make_policy
from .kv_store import CapacityError, KVCacheStore, StoredContext
from .tiered import (
    COLD,
    HOT,
    AlwaysHotPlacement,
    CostAwarePlacement,
    DiskKVStore,
    PlacementPolicy,
    TieredKVStore,
    TierStats,
    make_placement,
)

__all__ = [
    "COLD",
    "HOT",
    "AlwaysHotPlacement",
    "CapacityError",
    "CostAnalysis",
    "CostAwarePlacement",
    "CostAwarePolicy",
    "CostModel",
    "DiskKVStore",
    "EvictionPolicy",
    "KVCacheStore",
    "LFUPolicy",
    "LRUPolicy",
    "PlacementPolicy",
    "PricingModel",
    "StoredContext",
    "TierStats",
    "TieredCostModel",
    "TieredKVStore",
    "TieredPricingModel",
    "make_placement",
    "make_policy",
]

"""KV cache storage: the ``store_kv`` / ``get_kv`` interfaces of §6.

CacheGen keeps, per context, a dictionary mapping chunk ids to the encoded
bitstreams of the chunk's K and V tensors at every encoding level.  The store
lives on a (remote) storage server; the streamer calls ``get_kv`` to fetch a
chunk's bitstream at a chosen level.  This module implements an in-memory
store with byte accounting.

The store is optionally *capacity bounded*: give it ``max_bytes`` and an
:class:`~repro.storage.eviction.EvictionPolicy` and it evicts old contexts to
make room for new ones, which is what the cluster nodes in
:mod:`repro.cluster` rely on.  Stored bytes are tracked as a running total so
``storage_bytes()`` is O(1) no matter how many contexts are resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..core.encoder import CacheGenEncoder, EncodedKV
from ..core.kv_cache import KVCache
from ..streaming.chunking import PreparedChunk, prepare_chunks
from .eviction import EvictionPolicy, LRUPolicy

__all__ = ["StoredContext", "KVCacheStore", "CapacityError"]


class CapacityError(ValueError):
    """A single context is larger than the store's whole byte budget."""


@dataclass
class StoredContext:
    """All stored representations of one context."""

    context_id: str
    model_name: str
    num_tokens: int
    chunks: list[PreparedChunk] = field(default_factory=list)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def total_bytes(self, level_name: str | None = None) -> float:
        """Stored bytes — for one level, or for all levels when ``None``."""
        total = 0.0
        for chunk in self.chunks:
            if level_name is None:
                total += sum(enc.compressed_bytes for enc in chunk.encodings.values())
            else:
                total += chunk.bytes_for_level(level_name)
        return total


class KVCacheStore:
    """In-memory KV cache store exposing ``store_kv`` and ``get_kv``.

    Parameters
    ----------
    encoder:
        Fitted CacheGen encoder used by ``store_kv`` to chunk and encode
        contexts at every level.
    max_bytes:
        Optional byte budget over all stored contexts (all encoding levels).
        ``None`` (the default) means unbounded, which preserves the original
        single-node behaviour.
    eviction_policy:
        Policy consulted when a store over budget must pick a victim.
        Defaults to LRU when ``max_bytes`` is set.
    capacity_evict_sink:
        Optional callback receiving every context removed under capacity
        pressure.  A :class:`~repro.storage.tiered.TieredKVStore` installs one
        to *demote* victims to its cold tier instead of losing them; without a
        sink, capacity evictions drop the context outright.
    """

    def __init__(
        self,
        encoder: CacheGenEncoder,
        max_bytes: float | None = None,
        eviction_policy: EvictionPolicy | None = None,
        capacity_evict_sink: Callable[[StoredContext], None] | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.encoder = encoder
        self.max_bytes = max_bytes
        if eviction_policy is None and max_bytes is not None:
            eviction_policy = LRUPolicy()
        self.eviction_policy = eviction_policy
        self.capacity_evict_sink = capacity_evict_sink
        self._contexts: dict[str, StoredContext] = {}
        self._total_bytes = 0.0
        self._eviction_count = 0
        self._evicted_ids: list[str] = []

    #: Optional telemetry hookup (set by ``Backend.attach_tracer``): capacity
    #: evictions that truly drop a context emit an instant on ``trace_track``.
    tracer = None
    trace_track = "storage"

    # ------------------------------------------------------------------ writes
    def store_kv(self, context_id: str, kv: KVCache) -> StoredContext:
        """Encode a context's KV cache into per-chunk bitstreams and store them.

        Mirrors the paper's ``store_kv(LLM) -> {chunk_id: encoded_KV}``: the
        KV cache is split into context chunks and each chunk is encoded at
        every encoding level.
        """
        stored = StoredContext(
            context_id=context_id,
            model_name=kv.model_name,
            num_tokens=kv.num_tokens,
            chunks=prepare_chunks(kv, self.encoder),
        )
        return self.store_prepared(stored)

    def store_prepared(self, stored: StoredContext) -> StoredContext:
        """Store an already-encoded context (used by replication, which must
        not pay the encode cost once per replica)."""
        size = stored.total_bytes()
        if self.max_bytes is not None and size > self.max_bytes:
            raise CapacityError(
                f"context {stored.context_id!r} ({size:.0f} B) exceeds the "
                f"store capacity ({self.max_bytes:.0f} B)"
            )
        if stored.context_id in self._contexts:
            self._remove(stored.context_id, capacity_eviction=False)
        self._contexts[stored.context_id] = stored
        self._total_bytes += size
        if self.eviction_policy is not None:
            self.eviction_policy.on_store(stored.context_id, stored)
        self._enforce_capacity(protect=stored.context_id)
        return stored

    def evict(self, context_id: str) -> bool:
        """Remove a context from the store; returns whether it was present."""
        return self._remove(context_id, capacity_eviction=False)

    def _remove(self, context_id: str, capacity_eviction: bool) -> bool:
        stored = self._contexts.pop(context_id, None)
        if stored is None:
            return False
        self._total_bytes -= stored.total_bytes()
        if not self._contexts:
            # Clamp float drift so an empty store reports exactly zero bytes.
            self._total_bytes = 0.0
        if self.eviction_policy is not None:
            self.eviction_policy.on_evict(context_id)
        if capacity_eviction:
            self._eviction_count += 1
            self._evicted_ids.append(context_id)
            if self.capacity_evict_sink is not None:
                # A sink turns the eviction into a demotion; the tiered store
                # emits that event itself when the write-back lands.
                self.capacity_evict_sink(stored)
            else:
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.instant(
                        "eviction",
                        track=self.trace_track,
                        category="storage",
                        context_id=context_id,
                        bytes=stored.total_bytes(),
                    )
                    tracer.metrics.counter(
                        "evictions", "contexts dropped under capacity pressure"
                    ).inc(1, store=self.trace_track)
        return True

    def _enforce_capacity(self, protect: str) -> None:
        """Evict policy-selected victims until the store fits its budget.

        The just-stored context is protected: it already passed the
        single-context capacity check, so evicting everything else always
        suffices.
        """
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes:
            candidates = {
                cid: ctx for cid, ctx in self._contexts.items() if cid != protect
            }
            if not candidates:
                break
            assert self.eviction_policy is not None
            victim = self.eviction_policy.select_victim(candidates)
            if victim not in candidates:
                raise RuntimeError(
                    f"eviction policy selected unknown context {victim!r}"
                )
            self._remove(victim, capacity_eviction=True)

    # ------------------------------------------------------------------- reads
    def __contains__(self, context_id: str) -> bool:
        return context_id in self._contexts

    def __len__(self) -> int:
        return len(self._contexts)

    def get_context(self, context_id: str) -> StoredContext:
        try:
            stored = self._contexts[context_id]
        except KeyError:
            raise KeyError(f"context {context_id!r} is not in the KV store") from None
        if self.eviction_policy is not None:
            self.eviction_policy.on_access(context_id)
        return stored

    def peek_context(self, context_id: str) -> StoredContext:
        """Like :meth:`get_context` but without recording an access.

        Placement logic (replica selection, rebalancing) needs to size or
        copy a context without perturbing the eviction policy's recency or
        frequency state.
        """
        try:
            return self._contexts[context_id]
        except KeyError:
            raise KeyError(f"context {context_id!r} is not in the KV store") from None

    def get_kv(self, context_id: str, chunk_id: int, level_name: str) -> EncodedKV:
        """Fetch the encoded bitstream of one chunk at one encoding level."""
        stored = self.get_context(context_id)
        if not 0 <= chunk_id < stored.num_chunks:
            raise IndexError(f"chunk {chunk_id} out of range for context {context_id!r}")
        return stored.chunks[chunk_id].encodings[level_name]

    def get_chunks(self, context_id: str) -> list[PreparedChunk]:
        """All prepared chunks of a context (what the streamer consumes)."""
        return list(self.get_context(context_id).chunks)

    # --------------------------------------------------------------- accounting
    def context_ids(self) -> Iterable[str]:
        return self._contexts.keys()

    @property
    def eviction_count(self) -> int:
        """Number of capacity-pressure evictions (explicit removals excluded)."""
        return self._eviction_count

    @property
    def evicted_context_ids(self) -> list[str]:
        """Context ids evicted under capacity pressure, oldest first."""
        return list(self._evicted_ids)

    def migration_headroom_bytes(self) -> float:
        """Bytes a migration can add without triggering capacity eviction.

        Rebalancing (``ShardedKVStore.add_node``) must fill a node, never
        churn it; this is the budget it may fill.  Unbounded stores report
        infinite headroom.
        """
        if self.max_bytes is None:
            return float("inf")
        return max(self.max_bytes - self._total_bytes, 0.0)

    def storage_bytes(self, per_level: bool = False) -> float | Mapping[str, float]:
        """Total stored bytes, optionally broken down by encoding level.

        The total is maintained incrementally on every store/evict, so the
        common (``per_level=False``) call is O(1).
        """
        if not per_level:
            return self._total_bytes
        totals: dict[str, float] = {}
        for ctx in self._contexts.values():
            for chunk in ctx.chunks:
                for name, encoded in chunk.encodings.items():
                    totals[name] = totals.get(name, 0.0) + encoded.compressed_bytes
        return totals

"""KV cache storage: the ``store_kv`` / ``get_kv`` interfaces of §6.

CacheGen keeps, per context, a dictionary mapping chunk ids to the encoded
bitstreams of the chunk's K and V tensors at every encoding level.  The store
lives on a (remote) storage server; the streamer calls ``get_kv`` to fetch a
chunk's bitstream at a chosen level.  This module implements an in-memory
store with byte accounting, which is what the latency and storage-cost models
need; persisting the same structure to disk or an object store is a
straightforward extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.encoder import CacheGenEncoder, EncodedKV
from ..core.kv_cache import KVCache
from ..streaming.chunking import PreparedChunk, prepare_chunks

__all__ = ["StoredContext", "KVCacheStore"]


@dataclass
class StoredContext:
    """All stored representations of one context."""

    context_id: str
    model_name: str
    num_tokens: int
    chunks: list[PreparedChunk] = field(default_factory=list)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def total_bytes(self, level_name: str | None = None) -> float:
        """Stored bytes — for one level, or for all levels when ``None``."""
        total = 0.0
        for chunk in self.chunks:
            if level_name is None:
                total += sum(enc.compressed_bytes for enc in chunk.encodings.values())
            else:
                total += chunk.bytes_for_level(level_name)
        return total


class KVCacheStore:
    """In-memory KV cache store exposing ``store_kv`` and ``get_kv``.

    Parameters
    ----------
    encoder:
        Fitted CacheGen encoder used by ``store_kv`` to chunk and encode
        contexts at every level.
    """

    def __init__(self, encoder: CacheGenEncoder) -> None:
        self.encoder = encoder
        self._contexts: dict[str, StoredContext] = {}

    # ------------------------------------------------------------------ writes
    def store_kv(self, context_id: str, kv: KVCache) -> StoredContext:
        """Encode a context's KV cache into per-chunk bitstreams and store them.

        Mirrors the paper's ``store_kv(LLM) -> {chunk_id: encoded_KV}``: the
        KV cache is split into context chunks and each chunk is encoded at
        every encoding level.
        """
        stored = StoredContext(
            context_id=context_id,
            model_name=kv.model_name,
            num_tokens=kv.num_tokens,
            chunks=prepare_chunks(kv, self.encoder),
        )
        self._contexts[context_id] = stored
        return stored

    def evict(self, context_id: str) -> None:
        """Remove a context from the store (no-op if absent)."""
        self._contexts.pop(context_id, None)

    # ------------------------------------------------------------------- reads
    def __contains__(self, context_id: str) -> bool:
        return context_id in self._contexts

    def get_context(self, context_id: str) -> StoredContext:
        try:
            return self._contexts[context_id]
        except KeyError:
            raise KeyError(f"context {context_id!r} is not in the KV store") from None

    def get_kv(self, context_id: str, chunk_id: int, level_name: str) -> EncodedKV:
        """Fetch the encoded bitstream of one chunk at one encoding level."""
        stored = self.get_context(context_id)
        if not 0 <= chunk_id < stored.num_chunks:
            raise IndexError(f"chunk {chunk_id} out of range for context {context_id!r}")
        return stored.chunks[chunk_id].encodings[level_name]

    def get_chunks(self, context_id: str) -> list[PreparedChunk]:
        """All prepared chunks of a context (what the streamer consumes)."""
        return list(self.get_context(context_id).chunks)

    # --------------------------------------------------------------- accounting
    def context_ids(self) -> Iterable[str]:
        return self._contexts.keys()

    def storage_bytes(self, per_level: bool = False) -> float | Mapping[str, float]:
        """Total stored bytes, optionally broken down by encoding level."""
        if not per_level:
            return sum(ctx.total_bytes() for ctx in self._contexts.values())
        totals: dict[str, float] = {}
        for ctx in self._contexts.values():
            for chunk in ctx.chunks:
                for name, encoded in chunk.encodings.items():
                    totals[name] = totals.get(name, 0.0) + encoded.compressed_bytes
        return totals

"""Two-tier KV cache storage: hot memory in front of a cold disk tier.

The in-memory :class:`~repro.storage.kv_store.KVCacheStore` is capacity
bounded, and before this module its eviction policies could only *drop*
contexts — every re-access of a dropped context re-pays the full prefill.
Appendix E already prices a cheaper, slower storage class; this module adds it
as a second tier behind every node:

* :class:`DiskKVStore` — a high-capacity store behind a modeled *tier link*
  (disk or object-store read path, slower than the node's serving link).
  Capacity evictions here are true losses.
* :class:`TieredKVStore` — composes a hot store and a cold store.  Hot-tier
  capacity evictions **demote** the victim to cold instead of dropping it, and
  a lookup that finds its context cold **promotes** it back to hot (updating
  the hot policy's recency/frequency state), paying the tier link once.
* :class:`CostAwarePlacement` — optional admission policy: contexts whose hot
  premium ($/GB-month gap between the tiers) cannot be recouped by their
  expected reuse rate are placed cold-first.

Demotions are written back asynchronously in a real system, so the victim's
bytes occupy node memory until the write-back completes.  The tiered store
models this with an *in-flight demotion buffer*: victims enter the buffer
when evicted and drain to cold at the next serving operation
(:meth:`TieredKVStore.flush_demotions`).  Buffered bytes count against the
hot tier's migration headroom — which is what keeps
``ShardedKVStore.add_node`` rebalancing from over-filling a node whose
write-back has not caught up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

from ..core.kv_cache import KVCache
from ..network.bandwidth import ConstantTrace
from ..network.link import NetworkLink
from .cost import TieredCostModel
from .eviction import EvictionPolicy
from .kv_store import CapacityError, KVCacheStore, StoredContext

__all__ = [
    "HOT",
    "COLD",
    "TierStats",
    "DiskKVStore",
    "PlacementPolicy",
    "AlwaysHotPlacement",
    "CostAwarePlacement",
    "make_placement",
    "TieredKVStore",
]

#: Tier labels used across the cluster and serving layers.
HOT = "hot"
COLD = "cold"

#: Default tier-link bandwidth: a sequential disk / object-store read path,
#: well below the 3 Gbps serving link the paper's evaluation uses.
_DEFAULT_TIER_BPS = 1e9


@dataclass
class TierStats:
    """Running counters of tier traffic on one node."""

    hot_hits: int = 0
    cold_hits: int = 0
    demotions: int = 0
    promotions: int = 0
    demoted_bytes: float = 0.0
    promoted_bytes: float = 0.0
    #: Modeled time spent on tier-link transfers (write-backs and reads).
    demotion_transfer_s: float = 0.0
    promotion_transfer_s: float = 0.0
    #: Contexts placed directly on the cold tier by the placement policy.
    cold_placements: int = 0
    #: Demotion victims too large for the whole cold tier: dropped outright
    #: (a true loss, included in the store's ``eviction_count``).
    demotion_drops: int = 0


class DiskKVStore(KVCacheStore):
    """The cold tier: large, cheap, behind a slow tier link.

    A plain :class:`KVCacheStore` with the tier link attached — contexts enter
    via ``store_prepared`` (bitstreams are already encoded when they demote),
    so no encoder is needed.  Its own capacity evictions are real drops: a
    context evicted from cold is gone and must be re-ingested.

    Parameters
    ----------
    max_bytes:
        Cold-tier byte budget (``None`` for unbounded, the object-store case).
    eviction_policy:
        Victim picker for a bounded cold tier (defaults to LRU).
    link:
        Modeled disk/object-store read path.  Defaults to a constant 1 Gbps.
    """

    def __init__(
        self,
        max_bytes: float | None = None,
        eviction_policy: EvictionPolicy | None = None,
        link: NetworkLink | None = None,
    ) -> None:
        super().__init__(encoder=None, max_bytes=max_bytes, eviction_policy=eviction_policy)
        self.link = link or NetworkLink(ConstantTrace(_DEFAULT_TIER_BPS))

    def read_delay_s(self, num_bytes: float) -> float:
        """Modeled time to read ``num_bytes`` off this tier."""
        return self.link.estimate_transfer_time(num_bytes)


class PlacementPolicy(Protocol):
    """Decides which tier a newly stored context is admitted to."""

    def place(self, stored: StoredContext) -> str:
        """Return :data:`HOT` or :data:`COLD` for a new context."""
        ...


class AlwaysHotPlacement:
    """Default admission: every new context starts hot (LRU-style caching)."""

    def place(self, stored: StoredContext) -> str:
        return HOT


class CostAwarePlacement:
    """Admit a context hot only if its reuse rate pays the hot premium.

    The hot tier costs ``storage_usd_per_gb_month``; the cold tier costs
    ``cold_storage_usd_per_gb_month``.  Keeping a context hot is worth the
    premium only when its expected reuses per month exceed the break-even

        (hot - cold price) * stored GB / recompute cost per request

    — big, rarely reused, cheap-to-recompute contexts go straight to cold,
    leaving the hot budget for the contexts whose hits it actually buys.
    """

    def __init__(
        self,
        cost_model: TieredCostModel | None = None,
        expected_reuses_per_month: float = 100.0,
    ) -> None:
        if expected_reuses_per_month <= 0:
            raise ValueError("expected_reuses_per_month must be positive")
        self.cost_model = cost_model or TieredCostModel()
        self.expected_reuses_per_month = expected_reuses_per_month

    def hot_breakeven_reuses(self, stored: StoredContext) -> float:
        """Monthly reuses needed before the hot premium pays for itself."""
        premium = self.cost_model.storage_cost_per_month(
            stored.total_bytes()
        ) - self.cost_model.cold_storage_cost_per_month(stored.total_bytes())
        recompute = self.cost_model.recompute_cost_per_request(stored.num_tokens)
        if recompute <= 0:
            return float("inf")
        return premium / recompute

    def place(self, stored: StoredContext) -> str:
        if self.expected_reuses_per_month >= self.hot_breakeven_reuses(stored):
            return HOT
        return COLD


_PLACEMENT_FACTORIES = {
    "hot": AlwaysHotPlacement,
    "cost": CostAwarePlacement,
    "cost_aware": CostAwarePlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by name (``"hot"``, ``"cost"``)."""
    try:
        return _PLACEMENT_FACTORIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_PLACEMENT_FACTORIES))
        raise KeyError(f"unknown placement policy {name!r}; known: {known}") from None


class TieredKVStore:
    """A hot in-memory store backed by a cold disk tier.

    Mirrors the :class:`KVCacheStore` surface the cluster layers consume
    (``store_kv``/``store_prepared``/``get_context``/``peek_context``/
    ``get_chunks``/``evict``/byte accounting), so a
    :class:`~repro.cluster.node.StorageNode` can hold either flavour.

    Parameters
    ----------
    hot:
        The capacity-bounded in-memory store (its eviction policy now picks
        *demotion* victims).  The tiered store installs itself as the hot
        store's ``capacity_evict_sink``.
    cold:
        The disk tier.
    promote_on_hit:
        Whether a cold hit copies the context back to hot.  Promotion counts
        as a use for the hot policy (recency and frequency are refreshed).
    placement:
        Admission policy name (``"hot"``, ``"cost"``) or instance deciding the
        tier a new context starts in.
    """

    def __init__(
        self,
        hot: KVCacheStore,
        cold: DiskKVStore | None = None,
        promote_on_hit: bool = True,
        placement: str | PlacementPolicy = "hot",
    ) -> None:
        if hot.max_bytes is None:
            raise ValueError("the hot tier must be capacity bounded to ever demote")
        self.hot = hot
        # Explicit None check: an empty store is len()==0 and would be falsy.
        self.cold = DiskKVStore() if cold is None else cold
        self.promote_on_hit = promote_on_hit
        self.placement: PlacementPolicy = (
            make_placement(placement) if isinstance(placement, str) else placement
        )
        self.stats = TierStats()
        self._pending: dict[str, StoredContext] = {}
        self._pending_bytes = 0.0
        hot.capacity_evict_sink = self._on_hot_eviction

    #: Optional telemetry hookup (set by ``Backend.attach_tracer``): tier
    #: traffic (demotions, promotions, drops) emits instants on this track.
    tracer = None
    trace_track = "storage"

    def _tier_event(self, name: str, context_id: str, num_bytes: float) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                name,
                track=self.trace_track,
                category="tier",
                context_id=context_id,
                bytes=num_bytes,
            )
            tracer.metrics.counter(
                f"tier_{name}s", f"{name} events per tiered store"
            ).inc(1, store=self.trace_track)

    # -------------------------------------------------------------- tier plumbing
    @property
    def encoder(self):
        return self.hot.encoder

    @property
    def max_bytes(self) -> float | None:
        """The hot tier's budget (what placement and migration press against)."""
        return self.hot.max_bytes

    @property
    def tier_link(self) -> NetworkLink:
        return self.cold.link

    def cold_read_delay_s(self, num_bytes: float) -> float:
        """Modeled tier-link time to read ``num_bytes`` from cold."""
        return self.cold.read_delay_s(num_bytes)

    def _on_hot_eviction(self, stored: StoredContext) -> None:
        """A hot capacity eviction becomes an in-flight demotion.

        A victim larger than the whole cold tier can never be written back;
        buffering it would leave a context that looks resident but has
        nowhere to go, so it is dropped immediately and counted as a true
        loss — the same contract as a cold-tier capacity eviction.
        """
        if self.cold.max_bytes is not None and stored.total_bytes() > self.cold.max_bytes:
            self.stats.demotion_drops += 1
            self._tier_event("demotion_drop", stored.context_id, stored.total_bytes())
            return
        self._pending[stored.context_id] = stored
        self._pending_bytes += stored.total_bytes()

    @property
    def pending_demotion_bytes(self) -> float:
        """Bytes evicted from hot but not yet written back to cold."""
        return self._pending_bytes

    def flush_demotions(self) -> int:
        """Drain the in-flight demotion buffer to the cold tier.

        Returns the number of contexts written back.  Every serving operation
        flushes first (the background writer has caught up by the time the
        next request arrives); inspection methods do not.
        """
        flushed = 0
        while self._pending:
            context_id, stored = next(iter(self._pending.items()))
            del self._pending[context_id]
            size = stored.total_bytes()
            self._pending_bytes -= size
            try:
                self.cold.store_prepared(stored)
            except CapacityError:
                # Unreachable when the cold budget is static (oversized
                # victims are dropped at demotion time), but kept so a
                # shrunk-mid-flight budget still degrades to a counted drop.
                self.stats.demotion_drops += 1
                self._tier_event("demotion_drop", context_id, size)
                continue
            self.stats.demotions += 1
            self.stats.demoted_bytes += size
            self.stats.demotion_transfer_s += self.cold.read_delay_s(size)
            self._tier_event("demotion", context_id, size)
            flushed += 1
        self._pending_bytes = 0.0
        return flushed

    # ------------------------------------------------------------------ writes
    def store_kv(self, context_id: str, kv: KVCache) -> StoredContext:
        """Encode and store a context (hot-tier encoder, tiered placement)."""
        from ..streaming.chunking import prepare_chunks

        stored = StoredContext(
            context_id=context_id,
            model_name=kv.model_name,
            num_tokens=kv.num_tokens,
            chunks=prepare_chunks(kv, self.hot.encoder),
        )
        return self.store_prepared(stored)

    def store_prepared(self, stored: StoredContext) -> StoredContext:
        """Store an encoded context on the tier the placement policy picks.

        A context too large for the hot budget degrades to a cold placement
        instead of failing, as long as the cold tier can hold it.
        """
        self.flush_demotions()
        tier = self.placement.place(stored)
        if tier == HOT and (
            self.hot.max_bytes is None or stored.total_bytes() <= self.hot.max_bytes
        ):
            self.cold.evict(stored.context_id)
            return self.hot.store_prepared(stored)
        self.hot.evict(stored.context_id)
        self.stats.cold_placements += 1
        return self.cold.store_prepared(stored)

    def evict(self, context_id: str) -> bool:
        """Explicitly remove a context from every tier."""
        in_pending = self._pending.pop(context_id, None)
        if in_pending is not None:
            self._pending_bytes -= in_pending.total_bytes()
        in_hot = self.hot.evict(context_id)
        in_cold = self.cold.evict(context_id)
        return in_hot or in_cold or in_pending is not None

    # ------------------------------------------------------------------- reads
    def tier_of(self, context_id: str) -> str | None:
        """Which tier currently holds a context (in-flight demotions count as
        cold: their next read comes off the write-back path)."""
        if context_id in self.hot:
            return HOT
        if context_id in self._pending or context_id in self.cold:
            return COLD
        return None

    def __contains__(self, context_id: str) -> bool:
        return self.tier_of(context_id) is not None

    def __len__(self) -> int:
        resident = set(self.hot.context_ids()) | set(self.cold.context_ids())
        resident.update(self._pending)
        return len(resident)

    def context_ids(self) -> Iterable[str]:
        resident = dict.fromkeys(self.hot.context_ids())
        resident.update(dict.fromkeys(self._pending))
        resident.update(dict.fromkeys(self.cold.context_ids()))
        return resident.keys()

    def get_context(self, context_id: str) -> StoredContext:
        """Serve a context, promoting it to hot on a cold hit.

        Promotion pays the tier link (accounted in ``stats``) and refreshes
        the hot policy's recency/frequency state via the hot store's own
        ``on_store`` notification.  A context larger than the hot budget is
        served from cold without promotion.
        """
        self.flush_demotions()
        if context_id in self.hot:
            self.stats.hot_hits += 1
            return self.hot.get_context(context_id)
        stored = self.cold.get_context(context_id)
        self.stats.cold_hits += 1
        if self.promote_on_hit:
            size = stored.total_bytes()
            if self.hot.max_bytes is None or size <= self.hot.max_bytes:
                self.cold.evict(context_id)
                self.hot.store_prepared(stored)
                self.stats.promotions += 1
                self.stats.promoted_bytes += size
                self.stats.promotion_transfer_s += self.cold.read_delay_s(size)
                self._tier_event("promotion", context_id, size)
        return stored

    def peek_context(self, context_id: str) -> StoredContext:
        """Size/copy access without promotion or policy updates."""
        if context_id in self.hot:
            return self.hot.peek_context(context_id)
        pending = self._pending.get(context_id)
        if pending is not None:
            return pending
        return self.cold.peek_context(context_id)

    def get_kv(self, context_id: str, chunk_id: int, level_name: str):
        """Fetch one chunk's bitstream at one level (promotes on a cold hit)."""
        stored = self.get_context(context_id)
        if not 0 <= chunk_id < stored.num_chunks:
            raise IndexError(f"chunk {chunk_id} out of range for context {context_id!r}")
        return stored.chunks[chunk_id].encodings[level_name]

    def get_chunks(self, context_id: str):
        return list(self.get_context(context_id).chunks)

    # --------------------------------------------------------------- accounting
    def hot_bytes(self) -> float:
        return float(self.hot.storage_bytes())

    def cold_bytes(self) -> float:
        return float(self.cold.storage_bytes())

    def storage_bytes(self, per_level: bool = False) -> float | Mapping[str, float]:
        """Bytes resident on the node across both tiers and the write buffer."""
        if per_level:
            hot = dict(self.hot.storage_bytes(per_level=True))
            for name, value in self.cold.storage_bytes(per_level=True).items():
                hot[name] = hot.get(name, 0.0) + value
            return hot
        return self.hot_bytes() + self.cold_bytes() + self._pending_bytes

    def migration_headroom_bytes(self) -> float:
        """Hot-tier bytes a migration can add without forcing demotions.

        In-flight demotions still occupy node memory until their write-back
        lands, so they shrink the headroom — ignoring them is how a rebalance
        over-fills a node's hot tier.
        """
        assert self.hot.max_bytes is not None
        return max(self.hot.max_bytes - self.hot_bytes() - self._pending_bytes, 0.0)

    @property
    def eviction_count(self) -> int:
        """True losses: cold-tier capacity evictions plus demotion victims
        too large for the cold tier (ordinary demotions excluded)."""
        return self.cold.eviction_count + self.stats.demotion_drops

    @property
    def demotion_count(self) -> int:
        return self.stats.demotions

    @property
    def promotion_count(self) -> int:
        return self.stats.promotions

    @property
    def evicted_context_ids(self) -> list[str]:
        """Contexts dropped from the cold tier under capacity pressure."""
        return self.cold.evicted_context_ids

"""Pluggable eviction policies for capacity-bounded KV cache stores.

A production KV-cache server cannot hold every context ever ingested: encoded
caches are large (hundreds of MB for long contexts) and node capacity is
finite.  :class:`~repro.storage.kv_store.KVCacheStore` therefore accepts a
``max_bytes`` budget and an :class:`EvictionPolicy` deciding *which* context to
drop when a new one does not fit.

Three policies are provided:

* :class:`LRUPolicy` — evict the least recently used context (the classic
  cache-network placement policy, e.g. Icarus' LRU node caches);
* :class:`LFUPolicy` — evict the least frequently used context, breaking ties
  by recency;
* :class:`CostAwarePolicy` — evict the context whose *retention value* is
  lowest, where value is the recompute cost saved per month (observed access
  rate x Appendix E's per-request recompute price) divided by its monthly
  storage cost.  Cheap-to-recompute, rarely-used, bulky contexts go first.

Policies are notified by the store on every store/access/evict, so they keep
their own bookkeeping; they never mutate the store themselves.  All ordering
uses a logical clock (a monotonic counter), keeping simulations deterministic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping

from .cost import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .kv_store import StoredContext

__all__ = ["EvictionPolicy", "LRUPolicy", "LFUPolicy", "CostAwarePolicy", "make_policy"]


class EvictionPolicy(ABC):
    """Decides which stored context a full store should evict next."""

    def __init__(self) -> None:
        self._clock = 0
        self._last_used: dict[str, int] = {}

    # ------------------------------------------------------------ notifications
    def on_store(self, context_id: str, stored: "StoredContext") -> None:
        """A context was (re)stored; storing counts as a use."""
        self._touch(context_id)

    def on_access(self, context_id: str) -> None:
        """A stored context was read."""
        self._touch(context_id)

    def on_evict(self, context_id: str) -> None:
        """A context left the store (capacity eviction or explicit removal)."""
        self._last_used.pop(context_id, None)

    # ----------------------------------------------------------------- decision
    @abstractmethod
    def select_victim(self, contexts: Mapping[str, "StoredContext"]) -> str:
        """Pick the context id to evict from the candidates in ``contexts``."""

    # ------------------------------------------------------------------ helpers
    def _touch(self, context_id: str) -> None:
        self._clock += 1
        self._last_used[context_id] = self._clock

    def _recency(self, context_id: str) -> int:
        """Logical time of the last use (0 if never seen)."""
        return self._last_used.get(context_id, 0)


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used context."""

    def select_victim(self, contexts: Mapping[str, "StoredContext"]) -> str:
        if not contexts:
            raise ValueError("no contexts to evict")
        return min(contexts, key=self._recency)


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used context, breaking ties by recency."""

    def __init__(self) -> None:
        super().__init__()
        self._uses: dict[str, int] = {}

    def on_store(self, context_id: str, stored: "StoredContext") -> None:
        super().on_store(context_id, stored)
        self._uses[context_id] = self._uses.get(context_id, 0) + 1

    def on_access(self, context_id: str) -> None:
        super().on_access(context_id)
        self._uses[context_id] = self._uses.get(context_id, 0) + 1

    def on_evict(self, context_id: str) -> None:
        super().on_evict(context_id)
        self._uses.pop(context_id, None)

    def select_victim(self, contexts: Mapping[str, "StoredContext"]) -> str:
        if not contexts:
            raise ValueError("no contexts to evict")
        return min(contexts, key=lambda cid: (self._uses.get(cid, 0), self._recency(cid)))


class CostAwarePolicy(EvictionPolicy):
    """Evict the context with the lowest recompute-savings per storage dollar.

    Appendix E's cost model prices both sides of the trade: keeping a context
    costs ``storage_usd_per_gb_month``; dropping it costs one prefill's worth
    of inference per future access.  The policy scores each candidate as

        value = uses * recompute_usd_per_request(num_tokens)
                / storage_usd_per_month(stored_bytes)

    and evicts the minimum — a long context with many accesses is worth far
    more than its bytes, while a short, cold context is recomputed for less
    than it costs to keep.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or CostModel()
        self._uses: dict[str, int] = {}

    def on_store(self, context_id: str, stored: "StoredContext") -> None:
        super().on_store(context_id, stored)
        self._uses[context_id] = self._uses.get(context_id, 0) + 1

    def on_access(self, context_id: str) -> None:
        super().on_access(context_id)
        self._uses[context_id] = self._uses.get(context_id, 0) + 1

    def on_evict(self, context_id: str) -> None:
        super().on_evict(context_id)
        self._uses.pop(context_id, None)

    def _retention_value(self, context_id: str, stored: "StoredContext") -> float:
        saved = self._uses.get(context_id, 0) * self.cost_model.recompute_cost_per_request(
            stored.num_tokens
        )
        keep = self.cost_model.storage_cost_per_month(stored.total_bytes())
        if keep <= 0:
            return float("inf")
        return saved / keep

    def select_victim(self, contexts: Mapping[str, "StoredContext"]) -> str:
        if not contexts:
            raise ValueError("no contexts to evict")
        return min(
            contexts,
            key=lambda cid: (self._retention_value(cid, contexts[cid]), self._recency(cid)),
        )


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "cost": CostAwarePolicy,
    "cost_aware": CostAwarePolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (``"lru"``, ``"lfu"``, ``"cost"``)."""
    try:
        return _POLICY_FACTORIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_POLICY_FACTORIES))
        raise KeyError(f"unknown eviction policy {name!r}; known policies: {known}") from None

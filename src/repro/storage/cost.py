"""Storage-versus-recompute cost model (Appendix E).

The paper's Appendix E estimates when storing a compressed KV cache is cheaper
than recomputing it from text on every request: storing ~5 GB of encoded
versions of an 8.5K-token Llama-13B context costs ~$0.05 per month on object
storage, while recomputing the prefill costs at least ~$0.00085 per request at
typical per-token inference prices — so above ~150 reuses per month the cache
pays for itself.  This module reproduces that arithmetic for any model,
context length and price point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.model_config import ModelConfig

__all__ = ["PricingModel", "TieredPricingModel", "CostAnalysis", "CostModel", "TieredCostModel"]


@dataclass(frozen=True)
class PricingModel:
    """Cloud prices used by the cost analysis.

    Defaults follow the paper's Appendix E references: AWS S3 standard storage
    (~$0.023/GB-month, rounded to $0.01/GB-month granularity in the paper's
    estimate) and ~$0.0001/1K input tokens as the cheapest hosted-inference
    price among the providers cited.
    """

    storage_usd_per_gb_month: float = 0.023
    inference_usd_per_1k_input_tokens: float = 0.0001

    def __post_init__(self) -> None:
        if self.storage_usd_per_gb_month <= 0 or self.inference_usd_per_1k_input_tokens <= 0:
            raise ValueError("prices must be positive")


@dataclass(frozen=True)
class TieredPricingModel(PricingModel):
    """Prices for a two-tier storage hierarchy.

    The hot tier is the node-memory price Appendix E uses for its headline
    estimate; the cold tier is the cheaper, slower disk/object-store class the
    appendix prices as the alternative (S3 infrequent-access territory,
    ~$0.004/GB-month).  A demote-instead-of-drop hierarchy trades the tier
    link's extra latency for this price gap.
    """

    cold_storage_usd_per_gb_month: float = 0.004

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cold_storage_usd_per_gb_month <= 0:
            raise ValueError("prices must be positive")
        if self.cold_storage_usd_per_gb_month > self.storage_usd_per_gb_month:
            raise ValueError("the cold tier must not cost more than the hot tier")


@dataclass(frozen=True)
class CostAnalysis:
    """Result of comparing storage cost against recompute cost."""

    storage_usd_per_month: float
    recompute_usd_per_request: float
    breakeven_requests_per_month: float

    def storing_is_cheaper(self, requests_per_month: float) -> bool:
        """Whether caching wins at a given reuse rate."""
        return requests_per_month >= self.breakeven_requests_per_month


class CostModel:
    """Computes storage vs recompute costs for cached contexts."""

    def __init__(self, pricing: PricingModel | None = None) -> None:
        self.pricing = pricing or PricingModel()

    def storage_cost_per_month(self, stored_bytes: float) -> float:
        """Monthly cost (USD) of keeping ``stored_bytes`` on object storage."""
        if stored_bytes < 0:
            raise ValueError("stored_bytes must be non-negative")
        return stored_bytes / 1e9 * self.pricing.storage_usd_per_gb_month

    def recompute_cost_per_request(self, num_tokens: int) -> float:
        """Cost (USD) of re-prefilling ``num_tokens`` of context once."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return num_tokens / 1000.0 * self.pricing.inference_usd_per_1k_input_tokens

    def analyse(
        self,
        model: ModelConfig,
        num_tokens: int,
        compressed_bits_per_element: float,
        num_stored_versions: int = 4,
    ) -> CostAnalysis:
        """Compare storing a context's encoded KV cache against recomputation.

        Parameters
        ----------
        model:
            Model whose KV cache is being stored.
        num_tokens:
            Context length.
        compressed_bits_per_element:
            Average compressed size of one KV element (CacheGen's default
            level is ~2-2.5 bits/element).
        num_stored_versions:
            Number of encoding levels stored (CacheGen stores several).
        """
        if num_stored_versions < 1:
            raise ValueError("num_stored_versions must be at least 1")
        bytes_per_version = model.kv_cache_bytes(num_tokens, compressed_bits_per_element)
        stored_bytes = bytes_per_version * num_stored_versions
        storage_monthly = self.storage_cost_per_month(stored_bytes)
        recompute_per_request = self.recompute_cost_per_request(num_tokens)
        breakeven = storage_monthly / recompute_per_request
        return CostAnalysis(
            storage_usd_per_month=storage_monthly,
            recompute_usd_per_request=recompute_per_request,
            breakeven_requests_per_month=breakeven,
        )


class TieredCostModel(CostModel):
    """Cost model over a hot/cold storage hierarchy (Appendix E, both tiers).

    Extends the flat model with the cold tier's $/GB-month price, the monthly
    bill of a mixed-tier placement, and the per-request cost a serving run
    derives from it ($/GB storage amortised over the requests it served, plus
    the recompute price of every request that had to re-prefill from text).
    """

    def __init__(self, pricing: TieredPricingModel | None = None) -> None:
        super().__init__(pricing or TieredPricingModel())

    def cold_storage_cost_per_month(self, stored_bytes: float) -> float:
        """Monthly cost (USD) of keeping ``stored_bytes`` on the cold tier."""
        if stored_bytes < 0:
            raise ValueError("stored_bytes must be non-negative")
        return stored_bytes / 1e9 * self.pricing.cold_storage_usd_per_gb_month

    def monthly_storage_cost(self, hot_bytes: float, cold_bytes: float) -> float:
        """Monthly bill of a placement split across both tiers."""
        return self.storage_cost_per_month(hot_bytes) + self.cold_storage_cost_per_month(
            cold_bytes
        )

    def cost_per_request(
        self,
        hot_bytes: float,
        cold_bytes: float,
        requests_per_month: float,
        reprefill_fraction: float = 0.0,
        num_tokens: int = 0,
    ) -> float:
        """Serving cost per request at a given monthly request rate.

        ``reprefill_fraction`` is the share of requests that missed both tiers
        and re-prefilled ``num_tokens`` of context from text.
        """
        if requests_per_month <= 0:
            raise ValueError("requests_per_month must be positive")
        if not 0.0 <= reprefill_fraction <= 1.0:
            raise ValueError("reprefill_fraction must be in [0, 1]")
        storage = self.monthly_storage_cost(hot_bytes, cold_bytes) / requests_per_month
        recompute = reprefill_fraction * self.recompute_cost_per_request(num_tokens)
        return storage + recompute

"""Cluster simulation: drive a workload through the frontend, report aggregates.

:class:`ClusterSimulator` replays a :class:`~repro.cluster.workload.WorkloadGenerator`
stream against a :class:`~repro.cluster.frontend.ClusterFrontend`, ingesting
contexts on first touch (and optionally re-ingesting after capacity
evictions), injecting node failures/recoveries mid-run, and collecting the
cluster-level metrics the evaluation needs: per-node hit ratios, eviction
counts, TTFT percentiles, bytes moved, and SLO attainment.

With ``concurrency=N`` the simulator serves the stream in waves of ``N``
requests through the event-driven
:class:`~repro.serving.concurrent.ConcurrentEngine`: requests in a wave
contend for the replica links and the GPU run queue (decodes headed to the
same node are batched), and every request's TTFT decomposes into queueing
delay + transfer + compute.  ``concurrency=1`` preserves the sequential
serving path exactly.

Every query is answered — from a replica, after failover, or from text — so a
run reports *degradation*, never hard failures, unless the serving stack
itself raises (which the report surfaces as ``hard_failures``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..metrics.cluster import (
    EMPTY_LATENCY_SUMMARY,
    LatencySummary,
    NodeSummary,
    slo_attainment,
    storage_cost_per_request,
    summarize_latencies,
    tier_state,
)
from ..serving._compat import api_construction
from ..serving.concurrent import ConcurrentEngine
from ..serving.pipeline import QueryResponse
from ..storage.kv_store import CapacityError
from ..storage.tiered import COLD, HOT
from .frontend import ClusterFrontend
from .workload import Request, WorkloadGenerator

__all__ = ["RequestRecord", "ClusterReport", "ClusterSimulator"]

@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one simulated request.

    ``queueing_s``/``transfer_s``/``compute_s`` decompose the TTFT; under the
    sequential path queueing is zero by construction.
    """

    request: Request
    ttft_s: float
    used_kv_cache: bool
    served_by: str | None
    failed_over: bool
    transmitted_bytes: float
    ingested: bool
    quality: float
    queueing_s: float = 0.0
    transfer_s: float = 0.0
    compute_s: float = 0.0
    #: Tier the serving replica held the context in (None for the text path).
    served_tier: str | None = None
    #: Serialized tier-link read a cold hit paid before streaming.
    tier_transfer_s: float = 0.0


@dataclass
class ClusterReport:
    """Aggregate outcome of one cluster run."""

    num_requests: int
    hard_failures: int
    failed_ingests: int
    ttft: LatencySummary
    slo_s: float | None
    slo_attainment: float | None
    kv_served: int
    text_served: int
    failovers: int
    ingests: int
    total_evictions: int
    replication_bytes: float
    query_bytes: float
    node_summaries: list[NodeSummary] = field(default_factory=list)
    records: list[RequestRecord] = field(default_factory=list)
    #: Queueing-delay distribution across requests (all zeros when sequential).
    queueing: LatencySummary | None = None
    concurrency: int = 1
    #: Tier traffic of this run (zeros on a single-tier cluster).
    hot_served: int = 0
    cold_served: int = 0
    demotions: int = 0
    promotions: int = 0
    #: Bytes resident per tier when the run ended.
    hot_bytes: float = 0.0
    cold_bytes: float = 0.0
    #: Appendix-E derived economics of the run ($/GB prices over resident
    #: bytes, amortised over this run's requests; text serves pay recompute).
    storage_cost_usd_per_month: float = 0.0
    cost_usd_per_request: float = 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the KV cache cluster."""
        if self.num_requests == 0:
            return 0.0
        return self.kv_served / self.num_requests

    @property
    def hot_hit_ratio(self) -> float:
        """Fraction of requests served from a replica's hot tier."""
        if self.num_requests == 0:
            return 0.0
        return self.hot_served / self.num_requests

    @property
    def cold_hit_ratio(self) -> float:
        """Fraction of requests served off a replica's cold tier."""
        if self.num_requests == 0:
            return 0.0
        return self.cold_served / self.num_requests

    @property
    def bytes_moved(self) -> float:
        """All bytes shipped over links: replication plus query streaming."""
        return self.replication_bytes + self.query_bytes

    def format_table(self) -> str:
        """Human-readable run summary (one block, plus one line per node)."""
        lines = [
            f"requests          {self.num_requests} "
            f"(kv={self.kv_served}, text={self.text_served}, "
            f"failovers={self.failovers}, hard_failures={self.hard_failures})",
            f"hit ratio         {self.hit_ratio:.3f}",
            f"TTFT              p50={self.ttft.p50_s:.3f}s p95={self.ttft.p95_s:.3f}s "
            f"p99={self.ttft.p99_s:.3f}s mean={self.ttft.mean_s:.3f}s",
            f"ingests           {self.ingests} ({self.replication_bytes / 1e6:.1f} MB replicated, "
            f"{self.failed_ingests} failed)",
            f"evictions         {self.total_evictions}",
            f"bytes moved       {self.bytes_moved / 1e6:.1f} MB "
            f"({self.query_bytes / 1e6:.1f} MB streamed to queries)",
        ]
        if self.concurrency > 1 and self.queueing is not None:
            lines.append(
                f"queueing delay    p50={self.queueing.p50_s:.3f}s "
                f"p95={self.queueing.p95_s:.3f}s mean={self.queueing.mean_s:.3f}s "
                f"({self.concurrency} concurrent)"
            )
        if self.cold_served or self.demotions or self.promotions or self.cold_bytes:
            lines.append(
                f"tiers             hot={self.hot_served} cold={self.cold_served} "
                f"demotions={self.demotions} promotions={self.promotions} "
                f"(hot {self.hot_bytes / 1e6:.1f} MB, cold {self.cold_bytes / 1e6:.1f} MB)"
            )
            lines.append(
                f"cost              ${self.storage_cost_usd_per_month:.4f}/month stored, "
                f"${self.cost_usd_per_request:.6f}/request"
            )
        if self.slo_s is not None and self.slo_attainment is not None:
            lines.append(
                f"SLO               {self.slo_attainment * 100.0:.1f}% within {self.slo_s:.2f}s"
            )
        for node in self.node_summaries:
            state = "up" if node.up else "DOWN"
            lines.append(
                f"  {node.node_id:<10} {state:<5} routed={node.requests_routed:<5} "
                f"hit_ratio={node.hit_ratio:.3f} evictions={node.evictions:<4} "
                f"resident={node.contexts_resident} ({node.stored_bytes / 1e6:.1f} MB)"
            )
        return "\n".join(lines)


class ClusterSimulator:
    """Replays a workload against a cluster frontend.

    Parameters
    ----------
    frontend:
        The cluster serving frontend under test.
    workload:
        Deterministic request stream.
    slo_s:
        Optional TTFT SLO.  Always reported as attainment; with ``adaptive``
        it is also handed to every query to enable SLO-aware streaming.
    adaptive:
        Whether queries run the SLO-aware adapter (the paper's serving mode;
        note it prefers the lossless text configuration whenever recompute
        fits the deadline) or stream at the fixed default encoding level.
    reingest_on_miss:
        Re-ingest a previously-known context after it was served from text
        because every replica lost it — this is what makes the cluster behave
        like a caching system (placement follows popularity, as in LRU cache
        networks) instead of decaying to all-text once capacity churns.
    node_failures / node_recoveries:
        Request index -> node id; applied *before* that request is served
        (with ``concurrency > 1``, before the wave containing that request).
    concurrency:
        Requests served simultaneously through the event-driven engine; 1
        keeps the sequential path.
    max_decode_batch:
        Batched-decode cap handed to the concurrent engine.

    Example
    -------
    >>> frontend = ClusterFrontend("mistral-7b", node_links=4)
    >>> simulator = ClusterSimulator(frontend, WorkloadGenerator(num_contexts=20))
    >>> report = simulator.run(num_requests=100)  # doctest: +SKIP
    >>> print(report.format_table())  # doctest: +SKIP
    """

    def __init__(
        self,
        frontend: ClusterFrontend,
        workload: WorkloadGenerator,
        slo_s: float | None = None,
        adaptive: bool = True,
        reingest_on_miss: bool = True,
        node_failures: Mapping[int, str] | None = None,
        node_recoveries: Mapping[int, str] | None = None,
        concurrency: int = 1,
        max_decode_batch: int = 16,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self.frontend = frontend
        self.workload = workload
        self.slo_s = slo_s
        self.adaptive = adaptive
        self.reingest_on_miss = reingest_on_miss
        self.node_failures = dict(node_failures or {})
        self.node_recoveries = dict(node_recoveries or {})
        self.concurrency = concurrency
        self.max_decode_batch = max_decode_batch
        #: Contexts ever ingested — persists across run() calls so a warm-up
        #: run does not force redundant re-ingests of still-resident contexts.
        self._known: set[str] = set()
        self._ingests = 0
        self._failed_ingests = 0
        self._replication_bytes = 0.0

    def run(self, num_requests: int) -> ClusterReport:
        """Serve ``num_requests`` workload requests and aggregate the outcome.

        Request counters (ingests, bytes, TTFTs, evictions) are per run;
        ``node_summaries`` snapshot the nodes' cumulative state, so on a
        repeated ``run()`` they include earlier runs' activity.
        """
        records: list[RequestRecord] = []
        self._ingests = 0
        self._failed_ingests = 0
        self._replication_bytes = 0.0
        evictions_before = self.frontend.cluster.total_evictions()
        tier_before = tier_state(self.frontend.cluster.nodes.values())

        requests = list(self.workload.iter_requests(num_requests))
        if self.concurrency == 1:
            hard_failures = self._serve_sequential(requests, records)
        else:
            hard_failures = self._serve_concurrent(requests, records)
        query_bytes = sum(record.transmitted_bytes for record in records)

        ttfts = [record.ttft_s for record in records]
        kv_served = sum(1 for record in records if record.used_kv_cache)
        hot_served = sum(1 for record in records if record.served_tier == HOT)
        cold_served = sum(1 for record in records if record.served_tier == COLD)
        tier_after = tier_state(self.frontend.cluster.nodes.values())
        hot_bytes, cold_bytes = tier_after.hot_bytes, tier_after.cold_bytes
        text_served = len(records) - kv_served
        mean_tokens = (
            int(sum(record.request.num_tokens for record in records) / len(records))
            if records
            else 0
        )
        cost_per_request = (
            storage_cost_per_request(
                hot_bytes,
                cold_bytes,
                num_requests,
                reprefill_fraction=text_served / len(records) if records else 0.0,
                mean_context_tokens=mean_tokens,
            )
            if num_requests > 0
            else 0.0
        )
        return ClusterReport(
            num_requests=num_requests,
            hard_failures=hard_failures,
            failed_ingests=self._failed_ingests,
            ttft=summarize_latencies(ttfts) if ttfts else EMPTY_LATENCY_SUMMARY,
            slo_s=self.slo_s,
            slo_attainment=(
                slo_attainment(ttfts, self.slo_s)
                if self.slo_s is not None and ttfts
                else None
            ),
            kv_served=kv_served,
            text_served=len(records) - kv_served,
            failovers=sum(1 for record in records if record.failed_over),
            ingests=self._ingests,
            total_evictions=self.frontend.cluster.total_evictions() - evictions_before,
            replication_bytes=self._replication_bytes,
            query_bytes=query_bytes,
            node_summaries=self.frontend.cluster.node_summaries(),
            records=records,
            queueing=(
                summarize_latencies([record.queueing_s for record in records])
                if records
                else None
            ),
            concurrency=self.concurrency,
            hot_served=hot_served,
            cold_served=cold_served,
            demotions=tier_after.demotions - tier_before.demotions,
            promotions=tier_after.promotions - tier_before.promotions,
            hot_bytes=hot_bytes,
            cold_bytes=cold_bytes,
            storage_cost_usd_per_month=self._cost_model().monthly_storage_cost(
                hot_bytes, cold_bytes
            ),
            cost_usd_per_request=cost_per_request,
        )

    # ------------------------------------------------------------------ pieces
    @staticmethod
    def _cost_model():
        from ..storage.cost import TieredCostModel

        return TieredCostModel()
    def _apply_topology_events(self, request: Request) -> None:
        if request.index in self.node_failures:
            self.frontend.mark_down(self.node_failures[request.index])
        if request.index in self.node_recoveries:
            self.frontend.mark_up(self.node_recoveries[request.index])

    def _ingest_on_first_touch(self, request: Request) -> bool:
        """Ingest a never-seen context; a failed ingest degrades to text."""
        if request.context_id in self._known:
            return False
        try:
            report = self.frontend.ingest(request.context_id, request.num_tokens)
        except CapacityError:
            self._failed_ingests += 1
            return False
        self._known.add(request.context_id)
        self._ingests += 1
        self._replication_bytes += report.replicated_bytes
        return True

    def _reingest_if_missed(self, request: Request, response: QueryResponse, ingested: bool) -> None:
        if (
            self.reingest_on_miss
            and not response.used_kv_cache
            and not ingested
            and request.context_id not in self.frontend.cluster
        ):
            try:
                report = self.frontend.ingest(request.context_id, request.num_tokens)
                self._ingests += 1
                self._replication_bytes += report.replicated_bytes
            except CapacityError:
                self._failed_ingests += 1

    def _record(
        self, request: Request, response: QueryResponse, ingested: bool
    ) -> RequestRecord:
        ttft = response.ttft
        queueing_s = getattr(ttft, "queueing_s", 0.0)
        return RequestRecord(
            request=request,
            ttft_s=response.ttft_s,
            used_kv_cache=response.used_kv_cache,
            served_by=getattr(response, "served_by", None),
            failed_over=getattr(response, "failed_over", False),
            transmitted_bytes=response.transmitted_bytes,
            ingested=ingested,
            quality=response.quality.relative_quality,
            queueing_s=queueing_s,
            transfer_s=ttft.network_s,
            compute_s=ttft.decode_s + ttft.compute_s,
            served_tier=getattr(response, "served_tier", None),
            tier_transfer_s=getattr(response, "tier_transfer_s", 0.0),
        )

    # -------------------------------------------------------------- sequential
    def _serve_sequential(
        self,
        requests: Sequence[Request],
        records: list[RequestRecord],
        ingested_flags: Sequence[bool] | None = None,
    ) -> int:
        hard_failures = 0
        for position, request in enumerate(requests):
            self._apply_topology_events(request)
            ingested = self._ingest_on_first_touch(request)
            if ingested_flags is not None:
                # Re-serving a wave whose ingests already happened: keep the
                # records honest about who triggered them.
                ingested = ingested or ingested_flags[position]
            try:
                response = self.frontend.query(
                    request.context_id,
                    request.question,
                    num_tokens=request.num_tokens,
                    slo_s=self.slo_s if self.adaptive else None,
                )
            except Exception:
                hard_failures += 1
                continue
            records.append(self._record(request, response, ingested))
            self._reingest_if_missed(request, response, ingested)
        return hard_failures

    # -------------------------------------------------------------- concurrent
    def _serve_concurrent(
        self, requests: Sequence[Request], records: list[RequestRecord]
    ) -> int:
        with api_construction():  # internal plumbing, not a deprecated entry
            engine = ConcurrentEngine(
                self.frontend, max_decode_batch=self.max_decode_batch
            )
        hard_failures = 0
        for start in range(0, len(requests), self.concurrency):
            wave = list(requests[start : start + self.concurrency])
            ingested_flags = []
            for request in wave:
                self._apply_topology_events(request)
                ingested_flags.append(self._ingest_on_first_touch(request))
            wave_start = wave[0].arrival_s
            try:
                for request in wave:
                    engine.submit(
                        request.context_id,
                        request.question,
                        arrival_s=max(request.arrival_s - wave_start, 0.0),
                        num_tokens=request.num_tokens,
                        slo_s=self.slo_s if self.adaptive else None,
                    )
                responses = engine.run()
            except Exception:
                # One bad request must not discard its wave-mates' service:
                # fall back to the sequential path, which isolates failures
                # per request (ingests and topology events are idempotent;
                # the aborted attempt's lookups stay in the cluster stats).
                hard_failures += self._serve_sequential(
                    wave, records, ingested_flags=ingested_flags
                )
                continue
            for request, response, ingested in zip(wave, responses, ingested_flags):
                records.append(self._record(request, response, ingested))
                self._reingest_if_missed(request, response, ingested)
        return hard_failures

"""Cluster simulation: drive a workload through the frontend, report aggregates.

:class:`ClusterSimulator` replays a :class:`~repro.cluster.workload.WorkloadGenerator`
stream against a :class:`~repro.cluster.frontend.ClusterFrontend`, ingesting
contexts on first touch (and optionally re-ingesting after capacity
evictions), injecting node failures/recoveries mid-run, and collecting the
cluster-level metrics the evaluation needs: per-node hit ratios, eviction
counts, TTFT percentiles, bytes moved, and SLO attainment.

Every query is answered — from a replica, after failover, or from text — so a
run reports *degradation*, never hard failures, unless the serving stack
itself raises (which the report surfaces as ``hard_failures``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..metrics.cluster import LatencySummary, NodeSummary, slo_attainment, summarize_latencies
from ..storage.kv_store import CapacityError
from .frontend import ClusterFrontend
from .workload import Request, WorkloadGenerator

__all__ = ["RequestRecord", "ClusterReport", "ClusterSimulator"]


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one simulated request."""

    request: Request
    ttft_s: float
    used_kv_cache: bool
    served_by: str | None
    failed_over: bool
    transmitted_bytes: float
    ingested: bool
    quality: float


@dataclass
class ClusterReport:
    """Aggregate outcome of one cluster run."""

    num_requests: int
    hard_failures: int
    failed_ingests: int
    ttft: LatencySummary
    slo_s: float | None
    slo_attainment: float | None
    kv_served: int
    text_served: int
    failovers: int
    ingests: int
    total_evictions: int
    replication_bytes: float
    query_bytes: float
    node_summaries: list[NodeSummary] = field(default_factory=list)
    records: list[RequestRecord] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the KV cache cluster."""
        if self.num_requests == 0:
            return 0.0
        return self.kv_served / self.num_requests

    @property
    def bytes_moved(self) -> float:
        """All bytes shipped over links: replication plus query streaming."""
        return self.replication_bytes + self.query_bytes

    def format_table(self) -> str:
        """Human-readable run summary (one block, plus one line per node)."""
        lines = [
            f"requests          {self.num_requests} "
            f"(kv={self.kv_served}, text={self.text_served}, "
            f"failovers={self.failovers}, hard_failures={self.hard_failures})",
            f"hit ratio         {self.hit_ratio:.3f}",
            f"TTFT              p50={self.ttft.p50_s:.3f}s p95={self.ttft.p95_s:.3f}s "
            f"p99={self.ttft.p99_s:.3f}s mean={self.ttft.mean_s:.3f}s",
            f"ingests           {self.ingests} ({self.replication_bytes / 1e6:.1f} MB replicated, "
            f"{self.failed_ingests} failed)",
            f"evictions         {self.total_evictions}",
            f"bytes moved       {self.bytes_moved / 1e6:.1f} MB "
            f"({self.query_bytes / 1e6:.1f} MB streamed to queries)",
        ]
        if self.slo_s is not None and self.slo_attainment is not None:
            lines.append(
                f"SLO               {self.slo_attainment * 100.0:.1f}% within {self.slo_s:.2f}s"
            )
        for node in self.node_summaries:
            state = "up" if node.up else "DOWN"
            lines.append(
                f"  {node.node_id:<10} {state:<5} routed={node.requests_routed:<5} "
                f"hit_ratio={node.hit_ratio:.3f} evictions={node.evictions:<4} "
                f"resident={node.contexts_resident} ({node.stored_bytes / 1e6:.1f} MB)"
            )
        return "\n".join(lines)


class ClusterSimulator:
    """Replays a workload against a cluster frontend.

    Parameters
    ----------
    frontend:
        The cluster serving frontend under test.
    workload:
        Deterministic request stream.
    slo_s:
        Optional TTFT SLO.  Always reported as attainment; with ``adaptive``
        it is also handed to every query to enable SLO-aware streaming.
    adaptive:
        Whether queries run the SLO-aware adapter (the paper's serving mode;
        note it prefers the lossless text configuration whenever recompute
        fits the deadline) or stream at the fixed default encoding level.
    reingest_on_miss:
        Re-ingest a previously-known context after it was served from text
        because every replica lost it — this is what makes the cluster behave
        like a caching system (placement follows popularity, as in LRU cache
        networks) instead of decaying to all-text once capacity churns.
    node_failures / node_recoveries:
        Request index -> node id; applied *before* that request is served.
    """

    def __init__(
        self,
        frontend: ClusterFrontend,
        workload: WorkloadGenerator,
        slo_s: float | None = None,
        adaptive: bool = True,
        reingest_on_miss: bool = True,
        node_failures: Mapping[int, str] | None = None,
        node_recoveries: Mapping[int, str] | None = None,
    ) -> None:
        self.frontend = frontend
        self.workload = workload
        self.slo_s = slo_s
        self.adaptive = adaptive
        self.reingest_on_miss = reingest_on_miss
        self.node_failures = dict(node_failures or {})
        self.node_recoveries = dict(node_recoveries or {})
        #: Contexts ever ingested — persists across run() calls so a warm-up
        #: run does not force redundant re-ingests of still-resident contexts.
        self._known: set[str] = set()

    def run(self, num_requests: int) -> ClusterReport:
        """Serve ``num_requests`` workload requests and aggregate the outcome.

        Request counters (ingests, bytes, TTFTs, evictions) are per run;
        ``node_summaries`` snapshot the nodes' cumulative state, so on a
        repeated ``run()`` they include earlier runs' activity.
        """
        records: list[RequestRecord] = []
        hard_failures = 0
        failed_ingests = 0
        ingests = 0
        replication_bytes = 0.0
        query_bytes = 0.0
        evictions_before = self.frontend.cluster.total_evictions()

        for request in self.workload.iter_requests(num_requests):
            if request.index in self.node_failures:
                self.frontend.mark_down(self.node_failures[request.index])
            if request.index in self.node_recoveries:
                self.frontend.mark_up(self.node_recoveries[request.index])

            # A failed ingest (e.g. every node down or too small) degrades the
            # request to the text path; it must not fail the query itself.
            ingested = False
            if request.context_id not in self._known:
                try:
                    report = self.frontend.ingest(request.context_id, request.num_tokens)
                    self._known.add(request.context_id)
                    ingests += 1
                    ingested = True
                    replication_bytes += report.replicated_bytes
                except CapacityError:
                    failed_ingests += 1
            try:
                response = self.frontend.query(
                    request.context_id,
                    request.question,
                    num_tokens=request.num_tokens,
                    slo_s=self.slo_s if self.adaptive else None,
                )
            except Exception:
                hard_failures += 1
                continue

            query_bytes += response.transmitted_bytes
            records.append(
                RequestRecord(
                    request=request,
                    ttft_s=response.ttft_s,
                    used_kv_cache=response.used_kv_cache,
                    served_by=response.served_by,
                    failed_over=response.failed_over,
                    transmitted_bytes=response.transmitted_bytes,
                    ingested=ingested,
                    quality=response.quality.relative_quality,
                )
            )
            if (
                self.reingest_on_miss
                and not response.used_kv_cache
                and not ingested
                and request.context_id not in self.frontend.cluster
            ):
                try:
                    report = self.frontend.ingest(request.context_id, request.num_tokens)
                    ingests += 1
                    replication_bytes += report.replicated_bytes
                except CapacityError:
                    failed_ingests += 1

        ttfts = [record.ttft_s for record in records]
        kv_served = sum(1 for record in records if record.used_kv_cache)
        return ClusterReport(
            num_requests=num_requests,
            hard_failures=hard_failures,
            failed_ingests=failed_ingests,
            ttft=(
                summarize_latencies(ttfts)
                if ttfts
                else LatencySummary(
                    count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0, p99_s=0.0, max_s=0.0
                )
            ),
            slo_s=self.slo_s,
            slo_attainment=(
                slo_attainment(ttfts, self.slo_s)
                if self.slo_s is not None and ttfts
                else None
            ),
            kv_served=kv_served,
            text_served=len(records) - kv_served,
            failovers=sum(1 for record in records if record.failed_over),
            ingests=ingests,
            total_evictions=self.frontend.cluster.total_evictions() - evictions_before,
            replication_bytes=replication_bytes,
            query_bytes=query_bytes,
            node_summaries=self.frontend.cluster.node_summaries(),
            records=records,
        )

"""One storage node of the KV-cache cluster.

A node bundles the three things the cluster layers need to reason about
per-node behaviour: a capacity-bounded :class:`~repro.storage.KVCacheStore`,
the :class:`~repro.network.NetworkLink` between this node and the GPU server
(links may be heterogeneous — a near node on a 10 Gbps LAN, a far one behind a
congested WAN), and liveness plus serving statistics.
"""

from __future__ import annotations

from ..metrics.cluster import NodeSummary
from ..network.link import NetworkLink
from ..storage.kv_store import KVCacheStore

__all__ = ["StorageNode"]


class StorageNode:
    """A storage server in the cluster.

    Parameters
    ----------
    node_id:
        Stable identifier used for hash-ring placement.
    store:
        The node's capacity-bounded KV cache store.
    link:
        Network link from this node to the GPU server.  Defaults to the
        3 Gbps constant link the paper's headline evaluation uses.
    """

    def __init__(
        self,
        node_id: str,
        store: KVCacheStore,
        link: NetworkLink | None = None,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be non-empty")
        self.node_id = node_id
        self.store = store
        self.link = link or NetworkLink()
        self.up = True
        self.requests_routed = 0
        self.hits = 0
        self.bytes_served = 0.0
        #: Requests currently being streamed from this node (modeled queue
        #: depth).  Maintained by the concurrent engine; replica selection
        #: penalises deeper queues.
        self.queue_depth = 0

    # ---------------------------------------------------------------- liveness
    def mark_down(self) -> None:
        """Take the node out of service (its contents stay, like a reboot)."""
        self.up = False

    def mark_up(self) -> None:
        self.up = True

    # ------------------------------------------------------------------ load
    def begin_serving(self) -> None:
        """A request was routed here and will stream from this node."""
        self.queue_depth += 1

    def end_serving(self) -> None:
        self.queue_depth = max(self.queue_depth - 1, 0)

    def estimated_service_s(self, num_bytes: float) -> float:
        """Modeled time to serve ``num_bytes`` from here, queue included.

        The transfer-time estimate is scaled by the number of requests already
        streaming from this node — the replica-selection cost the frontend
        minimises (lowest queue depth, fastest link).
        """
        return (1 + self.queue_depth) * self.link.estimate_transfer_time(num_bytes)

    # -------------------------------------------------------------- accounting
    def record_hit(self, num_bytes: float) -> None:
        """A query was served from this node's cache."""
        self.requests_routed += 1
        self.hits += 1
        self.bytes_served += num_bytes

    def record_miss(self) -> None:
        """A query was routed here but the context was not resident."""
        self.requests_routed += 1

    @property
    def eviction_count(self) -> int:
        return self.store.eviction_count

    def summary(self) -> NodeSummary:
        return NodeSummary(
            node_id=self.node_id,
            requests_routed=self.requests_routed,
            hits=self.hits,
            evictions=self.eviction_count,
            bytes_served=self.bytes_served,
            stored_bytes=float(self.store.storage_bytes()),
            contexts_resident=len(self.store),
            up=self.up,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.up else "down"
        return f"StorageNode({self.node_id!r}, {state}, {len(self.store)} contexts)"

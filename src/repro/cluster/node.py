"""One storage node of the KV-cache cluster.

A node bundles the three things the cluster layers need to reason about
per-node behaviour: a capacity-bounded :class:`~repro.storage.KVCacheStore`,
the :class:`~repro.network.NetworkLink` between this node and the GPU server
(links may be heterogeneous — a near node on a 10 Gbps LAN, a far one behind a
congested WAN), and liveness plus serving statistics.
"""

from __future__ import annotations

from ..metrics.cluster import NodeSummary
from ..network.link import NetworkLink
from ..storage.kv_store import KVCacheStore
from ..storage.tiered import COLD, HOT, TieredKVStore

__all__ = ["StorageNode"]


class StorageNode:
    """A storage server in the cluster.

    Parameters
    ----------
    node_id:
        Stable identifier used for hash-ring placement.
    store:
        The node's capacity-bounded KV cache store — in-memory only, or a
        :class:`~repro.storage.tiered.TieredKVStore` with a disk tier behind
        the memory budget.
    link:
        Network link from this node to the GPU server.  Defaults to the
        3 Gbps constant link the paper's headline evaluation uses.
    """

    def __init__(
        self,
        node_id: str,
        store: KVCacheStore | TieredKVStore,
        link: NetworkLink | None = None,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be non-empty")
        self.node_id = node_id
        self.store = store
        self.link = link or NetworkLink()
        self.up = True
        self.requests_routed = 0
        self.hits = 0
        self.cold_hits = 0
        self.bytes_served = 0.0
        #: Requests currently being streamed from this node (modeled queue
        #: depth).  Maintained by the concurrent engine; replica selection
        #: penalises deeper queues.
        self.queue_depth = 0

    # ---------------------------------------------------------------- liveness
    def mark_down(self) -> None:
        """Take the node out of service (its contents stay, like a reboot)."""
        self.up = False

    def mark_up(self) -> None:
        self.up = True

    # ------------------------------------------------------------------ load
    def begin_serving(self) -> None:
        """A request was routed here and will stream from this node."""
        self.queue_depth += 1

    def end_serving(self) -> None:
        self.queue_depth = max(self.queue_depth - 1, 0)

    def estimated_service_s(self, num_bytes: float) -> float:
        """Modeled time to serve ``num_bytes`` from here, queue included.

        The transfer-time estimate is scaled by the number of requests already
        streaming from this node — the replica-selection cost the frontend
        minimises (lowest queue depth, fastest link).
        """
        return (1 + self.queue_depth) * self.link.estimate_transfer_time(num_bytes)

    def intrinsic_service_s(self, num_bytes: float) -> float:
        """Modeled time to serve ``num_bytes`` from here, queue excluded.

        The queue-free link transfer estimate — a calibrated latency rather
        than the relative ranking cost of :meth:`estimated_service_s`, so it
        is the one resilience timeouts and hedge delays compare against
        (local backlog is already paid as simulated queueing, not a sign the
        replica itself is slow).
        """
        return self.link.estimate_transfer_time(num_bytes)

    # ------------------------------------------------------------------- tiers
    @property
    def tiered(self) -> bool:
        return isinstance(self.store, TieredKVStore)

    def tier_of(self, context_id: str) -> str | None:
        """Which tier holds a context ("hot" for a single-tier node)."""
        if self.tiered:
            return self.store.tier_of(context_id)
        return HOT if context_id in self.store else None

    def cold_read_delay_s(self, num_bytes: float) -> float:
        """Modeled tier-link read time (zero on a single-tier node)."""
        if self.tiered:
            return self.store.cold_read_delay_s(num_bytes)
        return 0.0

    # -------------------------------------------------------------- accounting
    def record_hit(self, num_bytes: float, tier: str = "hot") -> None:
        """A query was served from this node's cache (from the given tier)."""
        self.requests_routed += 1
        self.hits += 1
        if tier == COLD:
            self.cold_hits += 1
        self.bytes_served += num_bytes

    def record_miss(self) -> None:
        """A query was routed here but the context was not resident."""
        self.requests_routed += 1

    @property
    def eviction_count(self) -> int:
        return self.store.eviction_count

    def summary(self) -> NodeSummary:
        store = self.store
        tiered = self.tiered
        return NodeSummary(
            node_id=self.node_id,
            requests_routed=self.requests_routed,
            hits=self.hits,
            evictions=self.eviction_count,
            bytes_served=self.bytes_served,
            stored_bytes=float(store.storage_bytes()),
            contexts_resident=len(store),
            up=self.up,
            hot_hits=self.hits - self.cold_hits,
            cold_hits=self.cold_hits,
            demotions=store.demotion_count if tiered else 0,
            promotions=store.promotion_count if tiered else 0,
            hot_bytes=store.hot_bytes() if tiered else float(store.storage_bytes()),
            cold_bytes=store.cold_bytes() if tiered else 0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.up else "down"
        return f"StorageNode({self.node_id!r}, {state}, {len(self.store)} contexts)"

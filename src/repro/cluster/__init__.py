"""Distributed KV-cache cluster: sharded, replicated, capacity-bounded serving.

The single-node serving stack (one :class:`~repro.storage.KVCacheStore`, one
:class:`~repro.network.NetworkLink`, one
:class:`~repro.serving.ContextLoadingEngine`) reproduces the paper's testbed;
this package scales it out:

* :class:`ConsistentHashRing` — directory-free context placement;
* :class:`StorageNode` — a capacity-bounded store plus its own link and stats;
* :class:`ShardedKVStore` — replicated placement with failover lookup;
* :class:`ClusterFrontend` — the engine extended with cluster routing and a
  text fallback on full cluster miss;
* :class:`WorkloadGenerator` / :class:`ClusterSimulator` — Zipf/Poisson
  multi-tenant workloads and cluster-level reporting (per-node hit ratios,
  evictions, TTFT percentiles, SLO attainment).
"""

from .frontend import ClusterFrontend, ClusterIngestReport, ClusterQueryResponse
from .hash_ring import ConsistentHashRing
from .node import StorageNode
from .sharded_store import Lookup, Placement, RebalanceReport, ShardedKVStore
from .simulator import ClusterReport, ClusterSimulator, RequestRecord
from .workload import Request, WorkloadGenerator

__all__ = [
    "ClusterFrontend",
    "ClusterIngestReport",
    "ClusterQueryResponse",
    "ClusterReport",
    "ClusterSimulator",
    "ConsistentHashRing",
    "Lookup",
    "Placement",
    "RebalanceReport",
    "Request",
    "RequestRecord",
    "ShardedKVStore",
    "StorageNode",
    "WorkloadGenerator",
]

"""Multi-tenant cluster serving frontend.

:class:`ClusterFrontend` extends the single-node
:class:`~repro.serving.ContextLoadingEngine` with cluster routing: ingests are
encoded once and replicated onto the sharded store, and queries stream the KV
bitstreams from the replica node's own (possibly heterogeneous) link.  When a
replica is down the lookup fails over along the hash ring; when every replica
has lost the context the frontend falls back to the text path, so a degraded
cluster degrades TTFT, never availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.config import CacheGenConfig
from ..llm.compute_model import A40, GPUSpec
from ..llm.model_config import ModelConfig
from ..network.link import NetworkLink
from ..serving._compat import warn_deprecated_entry_point
from ..serving.api.types import ServeResponse
from ..serving.engine import ContextLoadingEngine
from ..serving.pipeline import IngestReport, QueryResponse
from ..storage.eviction import EvictionPolicy, make_policy
from ..storage.kv_store import KVCacheStore
from ..storage.tiered import DiskKVStore, PlacementPolicy, TieredKVStore
from .node import StorageNode
from .sharded_store import ShardedKVStore

__all__ = ["ClusterIngestReport", "ClusterQueryResponse", "ClusterFrontend"]


@dataclass(frozen=True)
class ClusterIngestReport(IngestReport):
    """Ingest report extended with where the replicas landed."""

    replica_node_ids: tuple[str, ...] = ()
    replicated_bytes: float = 0.0


@dataclass
class ClusterQueryResponse(ServeResponse):
    """Query response of the cluster frontend.

    Historically this subclass carried the routing fields (``served_by`` /
    ``failed_over`` / ``attempted_node_ids``); those now live on the unified
    :class:`~repro.serving.api.ServeResponse`, of which this is a
    field-for-field alias kept for back compatibility.
    """


def _as_cluster_response(
    response: QueryResponse,
    served_by: str | None,
    failed_over: bool = False,
    attempted: tuple[str, ...] = (),
    served_tier: str | None = None,
    tier_transfer_s: float = 0.0,
    degraded: bool = False,
    degrade_cause: str | None = None,
    retries: int = 0,
    hedged: bool = False,
) -> ClusterQueryResponse:
    return ClusterQueryResponse.upgrade(
        response,
        served_by=served_by,
        failed_over=failed_over,
        attempted_node_ids=attempted,
        served_tier=served_tier,
        tier_transfer_s=tier_transfer_s,
        degraded=degraded,
        degrade_cause=degrade_cause,
        retries=retries,
        hedged=hedged,
    )


class ClusterFrontend(ContextLoadingEngine):
    """Routes a multi-tenant query stream over a sharded KV-cache cluster.

    Parameters
    ----------
    model:
        Serving model (name or :class:`ModelConfig`).
    node_links:
        Either the number of storage nodes (each on a default 3 Gbps link) or
        one :class:`NetworkLink` per node for heterogeneous clusters.
    replication_factor:
        Replicas per context.
    max_bytes_per_node:
        Capacity budget of each node's store; ``None`` means unbounded.
    eviction_policy:
        Policy name (``"lru"``, ``"lfu"``, ``"cost"``) or a factory returning a
        fresh :class:`EvictionPolicy` per node (policies hold per-node state
        and must not be shared).
    cold_bytes_per_node:
        Capacity of each node's cold (disk/object-store) tier.  ``None`` (the
        default) keeps nodes single-tier; with a cold tier attached, hot-tier
        capacity evictions demote instead of drop and cold hits promote back.
        Requires ``max_bytes_per_node`` (an unbounded hot tier never demotes).
    tier_links:
        One tier link per node modeling its disk/object-store read path;
        defaults to each :class:`~repro.storage.tiered.DiskKVStore`'s 1 Gbps
        constant link.
    placement:
        Tier-admission policy for new contexts (``"hot"``, ``"cost"``, or a
        factory returning a fresh policy per node).
    text_link:
        Link to the document store used by the text fallback; defaults to a
        fresh 3 Gbps link.

    .. deprecated::
        Direct construction is deprecated; declare a
        :class:`repro.serving.api.ServingSpec` with ``topology="cluster"`` (or
        ``"tiered"``) and use :func:`repro.serving.api.serve` /
        ``build_backend`` instead.

    Example
    -------
    >>> frontend = ClusterFrontend("mistral-7b", node_links=4, replication_factor=2)
    >>> frontend.ingest("doc-1", num_tokens=8_000)  # doctest: +SKIP
    >>> frontend.query("doc-1", "what changed?")  # doctest: +SKIP
    """

    def __init__(
        self,
        model: ModelConfig | str,
        node_links: int | Sequence[NetworkLink] = 4,
        replication_factor: int = 2,
        max_bytes_per_node: float | None = None,
        eviction_policy: str | Callable[[], EvictionPolicy] = "lru",
        cold_bytes_per_node: float | None = None,
        tier_links: Sequence[NetworkLink] | None = None,
        placement: str | Callable[[], PlacementPolicy] = "hot",
        config: CacheGenConfig | None = None,
        gpu: GPUSpec = A40,
        base_quality: dict[str, float] | None = None,
        text_link: NetworkLink | None = None,
        vnodes: int = 64,
    ) -> None:
        if type(self) is ClusterFrontend:
            warn_deprecated_entry_point(
                "ClusterFrontend", 'ServingSpec(topology="cluster")'
            )
        super().__init__(
            model, link=text_link, config=config, gpu=gpu, base_quality=base_quality
        )
        if isinstance(node_links, int):
            if node_links <= 0:
                raise ValueError("node_links must name at least one node")
            links: list[NetworkLink] = [NetworkLink() for _ in range(node_links)]
        else:
            links = list(node_links)
            if not links:
                raise ValueError("node_links must name at least one node")
        if cold_bytes_per_node is not None and max_bytes_per_node is None:
            raise ValueError(
                "a cold tier needs a bounded hot tier (set max_bytes_per_node)"
            )
        if tier_links is not None and len(tier_links) != len(links):
            raise ValueError("tier_links must name one link per node")
        nodes = [
            StorageNode(
                node_id=f"node-{i}",
                store=self._new_store(
                    max_bytes_per_node,
                    eviction_policy,
                    cold_bytes_per_node,
                    tier_links[i] if tier_links is not None else None,
                    placement,
                ),
                link=link,
            )
            for i, link in enumerate(links)
        ]
        self.cluster = ShardedKVStore(
            self.encoder, nodes, replication_factor=replication_factor, vnodes=vnodes
        )

    def _new_store(
        self,
        max_bytes_per_node: float | None,
        eviction_policy: str | Callable[[], EvictionPolicy],
        cold_bytes_per_node: float | None,
        tier_link: NetworkLink | None,
        placement: str | Callable[[], PlacementPolicy],
    ) -> KVCacheStore | TieredKVStore:
        hot = KVCacheStore(
            self.encoder,
            max_bytes=max_bytes_per_node,
            eviction_policy=self._new_policy(eviction_policy),
        )
        if cold_bytes_per_node is None:
            return hot
        cold = DiskKVStore(
            max_bytes=cold_bytes_per_node,
            eviction_policy=self._new_policy(eviction_policy),
            link=tier_link,
        )
        return TieredKVStore(
            hot,
            cold,
            placement=placement if isinstance(placement, str) else placement(),
        )

    @staticmethod
    def _new_policy(eviction_policy: str | Callable[[], EvictionPolicy]) -> EvictionPolicy:
        if isinstance(eviction_policy, str):
            return make_policy(eviction_policy)
        return eviction_policy()

    # ----------------------------------------------------------------- topology
    @property
    def nodes(self) -> Mapping[str, StorageNode]:
        return self.cluster.nodes

    def mark_down(self, node_id: str) -> None:
        self.cluster.mark_down(node_id)

    def mark_up(self, node_id: str) -> None:
        self.cluster.mark_up(node_id)

    # ------------------------------------------------------------------ ingest
    def ingest(self, context_id: str, num_tokens: int) -> ClusterIngestReport:
        """Prefill and encode a context once, then replicate the bitstreams.

        ``encode_delay_s`` is the modeled GPU encode time, not a wall-clock
        measurement (host time must never leak into the simulated world).
        """
        kv = self._reference_kv(context_id, num_tokens)
        placement = self.cluster.store_kv(context_id, kv)
        per_level: dict[str, float] = {}
        for chunk in placement.stored.chunks:
            for level_name, encoded in chunk.encodings.items():
                per_level[level_name] = per_level.get(level_name, 0.0) + encoded.compressed_bytes
        return ClusterIngestReport(
            context_id=context_id,
            num_tokens=num_tokens,
            num_chunks=placement.stored.num_chunks,
            stored_bytes_per_level=per_level,
            encode_delay_s=self._parts.compute.encode_delay(num_tokens),
            replica_node_ids=placement.replica_node_ids,
            replicated_bytes=placement.replicated_bytes,
        )

    # ------------------------------------------------------------------- query
    def query(
        self,
        context_id: str,
        question: str,
        num_tokens: int | None = None,
        task: str = "qa_accuracy",
        slo_s: float | None = None,
    ) -> ClusterQueryResponse:
        """Serve a query from the best live replica, else from text.

        ``num_tokens`` is only required for contexts the cluster has never
        ingested; lengths of evicted contexts are remembered.
        """
        parts = self._parts
        prompt_tokens = max(parts.llm.tokenizer.count_tokens(question), 1)

        lookup = self.cluster.locate(context_id)
        if lookup.found:
            node, stored = lookup.node, lookup.stored
            assert node is not None and stored is not None
            # A cold hit reads the bitstreams off the replica's disk tier
            # before the serving link sees the first byte — one serialized
            # tier-link transfer of the default level's bitstreams.
            tier_transfer_s = 0.0
            if lookup.cold_hit:
                level_name = self.config.default_level.name
                tier_transfer_s = node.cold_read_delay_s(
                    stored.total_bytes(level_name)
                )
            # Resilience delays (timeouts + backoff, hedge wait) serialize
            # ahead of streaming exactly like the cold-tier read does.
            kv_extra_s = tier_transfer_s + lookup.extra_delay_s
            if not self._prefer_text_path(
                stored.num_tokens,
                kv_link=node.link,
                text_link=self.link,
                kv_extra_s=kv_extra_s,
            ):
                response = self._query_with_kv(
                    stored,
                    question,
                    prompt_tokens,
                    task,
                    slo_s,
                    link=node.link,
                    extra_network_s=kv_extra_s,
                    level_override=lookup.level_override,
                )
                node.record_hit(response.transmitted_bytes, tier=lookup.tier or "hot")
                return _as_cluster_response(
                    response,
                    served_by=node.node_id,
                    failed_over=lookup.failed_over,
                    attempted=lookup.attempted_node_ids,
                    served_tier=lookup.tier,
                    tier_transfer_s=tier_transfer_s,
                    degraded=lookup.degraded,
                    degrade_cause=lookup.cause if lookup.degraded else None,
                    retries=lookup.retries,
                    hedged=lookup.hedged,
                )
            # Short context: the text path wins even though the replica holds
            # the cache — not a miss, the node just is not asked to serve.
            num_tokens = stored.num_tokens

        # A text fallback of a context the cluster once held is a *degraded*
        # answer (the short-context preference above is not: the text path
        # simply wins there).  The cause rides on the lookup.
        known = self.cluster.known_tokens(context_id) is not None
        if num_tokens is None:
            num_tokens = self.cluster.known_tokens(context_id)
        if num_tokens is None:
            raise ValueError(
                "num_tokens is required for contexts that have not been ingested"
            )
        response = self._query_with_text(
            context_id, question, num_tokens, prompt_tokens, task
        )
        degraded = known and not lookup.found
        return _as_cluster_response(
            response,
            served_by=None,
            attempted=lookup.attempted_node_ids,
            degraded=degraded,
            degrade_cause=(lookup.cause or "evicted") if degraded else None,
            retries=lookup.retries,
        )

"""Sharded, replicated KV cache storage over many nodes.

:class:`ShardedKVStore` is the cluster-scale sibling of the single-node
:class:`~repro.storage.KVCacheStore`: contexts are placed on ``replication_factor``
nodes chosen by a consistent-hash ring, each node bounds its own capacity with
an eviction policy, and lookups fail over along the ring's preference order
when a replica is down or has evicted the context.

The encode cost is paid once per ingest: the context is chunked and encoded a
single time and the resulting :class:`~repro.storage.StoredContext` is shared
by every replica (replicas ship bitstreams, they do not re-encode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.encoder import CacheGenEncoder
from ..core.kv_cache import KVCache
from ..storage.kv_store import CapacityError, StoredContext
from ..storage.tiered import COLD, HOT
from ..streaming.chunking import prepare_chunks
from .hash_ring import ConsistentHashRing
from .node import StorageNode

__all__ = ["Placement", "Lookup", "RebalanceReport", "ShardedKVStore"]


@dataclass(frozen=True)
class Placement:
    """Where one ingest landed."""

    context_id: str
    stored: StoredContext
    replica_node_ids: tuple[str, ...]
    skipped_node_ids: tuple[str, ...] = ()

    @property
    def bytes_per_replica(self) -> float:
        return self.stored.total_bytes()

    @property
    def replicated_bytes(self) -> float:
        """Bytes shipped to storage nodes for this ingest (all replicas)."""
        return self.bytes_per_replica * len(self.replica_node_ids)


@dataclass(frozen=True)
class Lookup:
    """Outcome of locating a context's serving replica."""

    node: StorageNode | None
    stored: StoredContext | None
    attempted_node_ids: tuple[str, ...] = ()
    #: Tier the serving replica held the context in ("hot"/"cold", None on a
    #: full miss).  A cold hit pays the node's tier link before streaming.
    tier: str | None = None
    #: Why replicas were skipped ("node_down", "corruption", "timeout",
    #: "breaker", "evicted"); ``None`` when the first choice served.
    cause: str | None = None
    #: Modeled resilience delay (timeouts, backoff, hedge wait) the serving
    #: path must charge into the request's TTFT.
    extra_delay_s: float = 0.0
    #: Retry attempts the read consumed before a replica answered.
    retries: int = 0
    #: Whether a hedged read was launched for this lookup.
    hedged: bool = False
    #: The retry budget ran out: serve degraded (cheaper level / text).
    degraded: bool = False
    #: Codec level a degraded read should stream at (``None`` = default).
    level_override: str | None = None

    @property
    def found(self) -> bool:
        return self.node is not None

    @property
    def failed_over(self) -> bool:
        """Whether the serving replica was not the first-choice node."""
        return self.found and len(self.attempted_node_ids) > 0

    @property
    def cold_hit(self) -> bool:
        return self.tier == COLD


@dataclass(frozen=True)
class RebalanceReport:
    """What a proactive rebalance after a topology change moved."""

    node_id: str
    contexts_moved: int
    replicas_dropped: int
    bytes_moved: float


@dataclass
class ClusterStats:
    """Running counters over the whole cluster."""

    ingests: int = 0
    replicas_written: int = 0
    replication_bytes: float = 0.0
    lookups: int = 0
    lookup_hits: int = 0
    #: Lookup hits served off a replica's cold tier (subset of lookup_hits).
    cold_lookup_hits: int = 0
    failovers: int = 0
    full_misses: int = 0
    #: Reads that detected (and evicted) a corrupted replica.
    corruption_failures: int = 0
    skipped_replicas: int = 0
    rebalanced_contexts: int = 0
    rebalance_bytes: float = 0.0
    #: Lookups located at each node (the node *held* the context; whether the
    #: frontend then served from it is the node's own hits counter).
    per_node_locates: dict[str, int] = field(default_factory=dict)


class ShardedKVStore:
    """Places encoded contexts on a ring of capacity-bounded storage nodes.

    Parameters
    ----------
    encoder:
        Fitted CacheGen encoder (shared with the serving engine).
    nodes:
        The cluster's storage nodes.  Node ids must be unique.
    replication_factor:
        Number of replicas per context (capped at the node count).
    vnodes:
        Virtual points per node on the placement ring.
    """

    def __init__(
        self,
        encoder: CacheGenEncoder,
        nodes: Sequence[StorageNode],
        replication_factor: int = 2,
        vnodes: int = 64,
    ) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one storage node")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("node ids must be unique")
        self.encoder = encoder
        self.replication_factor = replication_factor
        self._nodes: dict[str, StorageNode] = {node.node_id: node for node in nodes}
        self.ring = ConsistentHashRing(ids, vnodes=vnodes)
        #: Context lengths ever ingested — survives eviction so the frontend
        #: can fall back to the text path without being told the length again.
        self._catalogue: dict[str, int] = {}
        self.stats = ClusterStats()
        #: Replicas injected as corrupted — ``(node_id, context_id)`` pairs
        #: whose next read fails the integrity check (fault injection).
        self.corrupted_replicas: set[tuple[str, str]] = set()

    #: Optional telemetry hookup (set by ``Backend.attach_tracer``): lookup
    #: failovers and full misses emit instants on ``trace_track``.
    tracer = None
    trace_track = "cluster"
    #: Optional :class:`~repro.faults.resilience.ResilienceManager` — consulted
    #: during ``locate`` for breaker gating and retry/hedge evaluation.
    resilience = None

    def _lookup_event(
        self, name: str, context_id: str, attempted: list[str], cause: str | None = None
    ) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            args = {"context_id": context_id, "attempted": list(attempted)}
            if cause is not None:
                args["cause"] = cause
            tracer.instant(name, track=self.trace_track, category="cluster", **args)
            counter_name = "lookup_failovers" if name == "failover" else "lookup_full_misses"
            tracer.metrics.counter(
                counter_name, f"{name} events during replica lookup"
            ).inc()

    # ----------------------------------------------------------------- topology
    @property
    def nodes(self) -> Mapping[str, StorageNode]:
        return self._nodes

    def node(self, node_id: str) -> StorageNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            known = ", ".join(sorted(self._nodes))
            raise KeyError(f"unknown node {node_id!r}; cluster nodes: {known}") from None

    def add_node(self, node: StorageNode, rebalance: bool = True) -> RebalanceReport:
        """Join a new node and proactively migrate the contexts it now owns.

        Consistent hashing remaps ~``1/n`` of the keyspace onto the new node;
        waiting for natural churn to move those contexts causes a miss spike
        right after every scale-up.  With ``rebalance`` (the default), every
        resident context whose new replica set includes the joining node is
        copied onto it immediately (shipping the already-encoded bitstreams,
        never re-encoding), and replicas on nodes that fell out of the
        context's replica set are dropped so the replication factor — and the
        cluster's byte budget — stay steady.
        """
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} is already in the cluster")
        self._nodes[node.node_id] = node
        self.ring.add_node(node.node_id)
        if not rebalance:
            return RebalanceReport(
                node_id=node.node_id, contexts_moved=0, replicas_dropped=0, bytes_moved=0.0
            )
        return self._rebalance_onto(node)

    def _rebalance_onto(self, node: StorageNode) -> RebalanceReport:
        resident = sorted(
            {
                context_id
                for other in self._nodes.values()
                for context_id in other.store.context_ids()
            }
        )
        moved = dropped = 0
        bytes_moved = 0.0
        for context_id in resident:
            replica_set = self._target_replica_set(context_id)
            if node.node_id not in replica_set or context_id in node.store:
                continue
            holders = [
                other
                for other in self._nodes.values()
                if other is not node and context_id in other.store
            ]
            if not holders:
                continue
            stored = holders[0].store.peek_context(context_id)
            # Never migrate under capacity pressure: store_prepared would
            # evict (or, on a tiered node, demote) earlier migrants from the
            # joining node after their displaced old replicas are already
            # gone, leaving contexts under-replicated or silently colder.
            # Rebalance fills the node, it never churns it.  The headroom
            # accessor also counts in-flight demotions — bytes evicted from
            # the hot tier whose write-back to cold has not landed yet still
            # occupy node memory, so ignoring them would over-fill the node.
            store = node.store
            if store.migration_headroom_bytes() < stored.total_bytes():
                continue
            try:
                store.store_prepared(stored)
            except CapacityError:
                continue
            moved += 1
            bytes_moved += stored.total_bytes()
            # The new node displaced the last member of the old replica set;
            # drop copies that no longer belong so replication stays at factor.
            for holder in holders:
                if holder.node_id not in replica_set:
                    holder.store.evict(context_id)
                    dropped += 1
        self.stats.rebalanced_contexts += moved
        self.stats.rebalance_bytes += bytes_moved
        return RebalanceReport(
            node_id=node.node_id,
            contexts_moved=moved,
            replicas_dropped=dropped,
            bytes_moved=bytes_moved,
        )

    def _target_replica_set(self, context_id: str) -> set[str]:
        """The first ``replication_factor`` live nodes in ring order."""
        target_size = max(min(self.replication_factor, len(self.live_nodes())), 1)
        chosen: set[str] = set()
        for node_id in self.ring.preference_order(context_id):
            if self._nodes[node_id].up:
                chosen.add(node_id)
                if len(chosen) == target_size:
                    break
        return chosen

    def remove_node(self, node_id: str) -> StorageNode:
        """Permanently remove a node (and its placements) from the cluster."""
        node = self.node(node_id)
        del self._nodes[node_id]
        self.ring.remove_node(node_id)
        return node

    def mark_down(self, node_id: str) -> None:
        self.node(node_id).mark_down()

    def mark_up(self, node_id: str) -> None:
        self.node(node_id).mark_up()

    def live_nodes(self) -> list[StorageNode]:
        return [node for node in self._nodes.values() if node.up]

    # ------------------------------------------------------------------- writes
    def store_kv(self, context_id: str, kv: KVCache) -> Placement:
        """Encode a context once and place it on its replica set.

        Down nodes (and nodes too small to hold the context) are skipped in
        favour of the next node in ring order, so a degraded cluster keeps
        accepting writes as long as one live node can hold the context.
        """
        stored = StoredContext(
            context_id=context_id,
            model_name=kv.model_name,
            num_tokens=kv.num_tokens,
            chunks=prepare_chunks(kv, self.encoder),
        )
        target_replicas = max(min(self.replication_factor, len(self.live_nodes())), 1)
        placed: list[str] = []
        skipped: list[str] = []
        for node_id in self.ring.preference_order(context_id):
            if len(placed) == target_replicas:
                break
            node = self._nodes[node_id]
            if not node.up:
                skipped.append(node_id)
                continue
            try:
                node.store.store_prepared(stored)
            except CapacityError:
                skipped.append(node_id)
                continue
            placed.append(node_id)
        if not placed:
            raise CapacityError(
                f"no live node can hold context {context_id!r} "
                f"({stored.total_bytes():.0f} B)"
            )
        self._catalogue[context_id] = kv.num_tokens
        self.stats.ingests += 1
        self.stats.replicas_written += len(placed)
        self.stats.replication_bytes += stored.total_bytes() * len(placed)
        self.stats.skipped_replicas += len(skipped)
        return Placement(
            context_id=context_id,
            stored=stored,
            replica_node_ids=tuple(placed),
            skipped_node_ids=tuple(skipped),
        )

    def evict(self, context_id: str) -> int:
        """Explicitly drop a context from every replica; returns replicas hit."""
        return sum(1 for node in self._nodes.values() if node.store.evict(context_id))

    # -------------------------------------------------------------------- reads
    def __contains__(self, context_id: str) -> bool:
        return any(
            node.up and context_id in node.store for node in self._nodes.values()
        )

    def replicas_for(self, context_id: str) -> list[str]:
        """Nodes currently holding the context (live or not), in ring order."""
        return [
            node_id
            for node_id in self.ring.preference_order(context_id)
            if context_id in self._nodes[node_id].store
        ]

    def locate(self, context_id: str) -> Lookup:
        """Find the replica that should serve a context, with failover.

        Walks the ring's preference order collecting every live replica that
        still holds the context (nodes beyond the replica set included —
        after a topology change a context may live on what is now a
        non-preferred node), then serves from the replica with the cheapest
        *modeled* service: estimated transfer time of the stored bitstreams
        over the node's link, scaled by the node's current queue depth, with
        ring order breaking ties.  Replicas holding the context *hot* are
        always preferred over replicas that demoted it to their cold tier —
        a cold hit pays the tier link on top of the serving link (its
        modeled cost includes the tier read) but still beats a full miss's
        re-prefill.  Serving off a cold replica promotes the context back to
        hot there.  Down nodes and nodes that lost the context ahead of the
        first live holder are recorded as attempted (that is a failover); a
        live holder passed over for a faster or less loaded replica is not.
        A live node probed without holding the context records a routing
        miss, which is what per-node hit ratios measure.
        """
        self.stats.lookups += 1
        manager = self.resilience
        attempted: list[str] = []
        cause: str | None = None
        candidates: list[tuple[StorageNode, str]] = []
        for node_id in self.ring.preference_order(context_id):
            node = self._nodes[node_id]
            if not node.up:
                if not candidates:
                    attempted.append(node_id)
                    cause = cause or "node_down"
                continue
            if manager is not None and not manager.node_allowed(node_id):
                # The node's circuit breaker is open — skip it without
                # probing (that is the point of the breaker).
                if not candidates:
                    attempted.append(node_id)
                    cause = cause or "breaker"
                continue
            tier = node.tier_of(context_id)
            if tier is None:
                if not candidates:
                    node.record_miss()
                    attempted.append(node_id)
                    cause = cause or "evicted"
                continue
            candidates.append((node, tier))
        if not candidates:
            self.stats.full_misses += 1
            self._lookup_event("full_miss", context_id, attempted, cause)
            return Lookup(
                node=None, stored=None, attempted_node_ids=tuple(attempted), cause=cause
            )

        level_name = self.encoder.config.default_level.name

        def service_of(node: StorageNode, node_tier: str) -> float:
            num_bytes = node.store.peek_context(context_id).total_bytes(level_name)
            service = node.estimated_service_s(num_bytes)
            if node_tier == COLD:
                service += node.cold_read_delay_s(num_bytes)
            return service

        def intrinsic_service_of(node: StorageNode, node_tier: str) -> float:
            # Queue-free latency for the resilience layer's absolute
            # comparisons (timeout, hedge delay): a backlogged-but-healthy
            # replica must not read as a failed one.
            num_bytes = node.store.peek_context(context_id).total_bytes(level_name)
            service = node.intrinsic_service_s(num_bytes)
            if node_tier == COLD:
                service += node.cold_read_delay_s(num_bytes)
            return service

        while candidates:
            tier = HOT if any(t == HOT for _, t in candidates) else COLD
            contenders = [node for node, t in candidates if t == tier]
            best = min(
                enumerate(contenders),
                key=lambda pair: (service_of(pair[1], tier), pair[0]),
            )[1]
            if self.corrupted_replicas and (best.node_id, context_id) in self.corrupted_replicas:
                # The read routed to a corrupted replica: the integrity check
                # fails, the bad copy is evicted, and the read fails over.
                self.corrupted_replicas.discard((best.node_id, context_id))
                best.store.evict(context_id)
                best.record_miss()
                self.stats.corruption_failures += 1
                attempted.append(best.node_id)
                cause = "corruption"
                if manager is not None:
                    manager.on_corruption_detected(best.node_id, context_id)
                candidates = [(node, t) for node, t in candidates if node is not best]
                continue
            try:
                stored = best.store.get_context(context_id)
            except KeyError:
                # Serving mutates tiered stores: the read's own write-back
                # flush can cascade cold-tier capacity evictions that take
                # out the very context being fetched between the membership
                # check and the read.  Count it as a routing miss on that
                # replica and fail over to the next candidate.
                best.record_miss()
                attempted.append(best.node_id)
                candidates = [(node, t) for node, t in candidates if node is not best]
                continue
            extra_delay_s = 0.0
            retries = 0
            hedged = False
            degraded = False
            level_override = None
            if manager is not None and manager.active:
                remaining = [(node, t) for node, t in candidates if node is not best]
                alternates = sorted(
                    ((node.node_id, intrinsic_service_of(node, t)) for node, t in remaining),
                    key=lambda pair: pair[1],
                )
                outcome = manager.evaluate_read(
                    context_id, best.node_id, intrinsic_service_of(best, tier), alternates
                )
                extra_delay_s = outcome.extra_delay_s
                retries = outcome.retries
                hedged = outcome.hedged
                degraded = outcome.degraded
                if outcome.node_id != best.node_id:
                    # A retry or hedge served from another replica instead.
                    switch = next(
                        (
                            (node, t)
                            for node, t in remaining
                            if node.node_id == outcome.node_id
                        ),
                        None,
                    )
                    if switch is not None:
                        try:
                            alt_stored = switch[0].store.get_context(context_id)
                        except KeyError:
                            pass
                        else:
                            attempted.append(best.node_id)
                            cause = cause or ("timeout" if retries else "hedge")
                            best, tier, stored = switch[0], switch[1], alt_stored
                if degraded:
                    cause = "timeout"
                    level_override = self._degrade_level(stored)
            self.stats.lookup_hits += 1
            if tier == COLD:
                self.stats.cold_lookup_hits += 1
            if attempted:
                self.stats.failovers += 1
                self._lookup_event("failover", context_id, attempted, cause)
            self.stats.per_node_locates[best.node_id] = (
                self.stats.per_node_locates.get(best.node_id, 0) + 1
            )
            return Lookup(
                node=best,
                stored=stored,
                attempted_node_ids=tuple(attempted),
                tier=tier,
                cause=cause,
                extra_delay_s=extra_delay_s,
                retries=retries,
                hedged=hedged,
                degraded=degraded,
                level_override=level_override,
            )
        self.stats.full_misses += 1
        self._lookup_event("full_miss", context_id, attempted, cause)
        return Lookup(
            node=None, stored=None, attempted_node_ids=tuple(attempted), cause=cause
        )

    def _degrade_level(self, stored: StoredContext) -> str | None:
        """Codec level a degraded read streams at (``None`` = default already).

        The spec-level policy may pin a level; otherwise the cheapest stored
        level by bytes wins.
        """
        manager = self.resilience
        if (
            manager is not None
            and manager.policy is not None
            and manager.policy.degrade_level is not None
        ):
            level = manager.policy.degrade_level
            return level if level != self.encoder.config.default_level.name else None
        config = self.encoder.config
        cheapest = min(config.levels, key=lambda lv: stored.total_bytes(lv.name))
        return cheapest.name if cheapest.name != config.default_level.name else None

    def known_tokens(self, context_id: str) -> int | None:
        """Length of a context ever ingested, even if since evicted."""
        return self._catalogue.get(context_id)

    # ------------------------------------------------------------------- repair
    def under_replicated(self) -> list[str]:
        """Contexts with fewer live replicas than the replication factor.

        Only contexts that still have at least one live replica qualify — a
        context with zero live copies has nothing to re-replicate from (it
        serves off the text path until its node recovers).  Sorted for
        deterministic repair scheduling.
        """
        live = self.live_nodes()
        target = max(min(self.replication_factor, len(live)), 1)
        lost: list[str] = []
        for context_id in sorted(self._catalogue):
            holders = sum(1 for node in live if context_id in node.store)
            if 0 < holders < target:
                lost.append(context_id)
        return lost

    def plan_repair(self, context_id: str) -> tuple[StorageNode, StoredContext] | None:
        """Pick the (target node, source bitstreams) of one re-replication.

        The source is the first live holder in ring order (repairs ship the
        already-encoded bitstreams, they never re-encode); the target is the
        first live non-holder in ring order with migration headroom for the
        copy.  Returns ``None`` when no source or no target qualifies.
        """
        source: StorageNode | None = None
        for node_id in self.ring.preference_order(context_id):
            node = self._nodes[node_id]
            if node.up and context_id in node.store:
                source = node
                break
        if source is None:
            return None
        stored = source.store.peek_context(context_id)
        for node_id in self.ring.preference_order(context_id):
            node = self._nodes[node_id]
            if not node.up or context_id in node.store:
                continue
            if node.store.migration_headroom_bytes() < stored.total_bytes():
                continue
            return node, stored
        return None

    # --------------------------------------------------------------- accounting
    def storage_bytes(self) -> float:
        """Bytes resident across the cluster (replicas counted once each)."""
        return sum(float(node.store.storage_bytes()) for node in self._nodes.values())

    def total_evictions(self) -> int:
        return sum(node.eviction_count for node in self._nodes.values())

    def node_summaries(self):
        return [node.summary() for node in self._nodes.values()]

"""Multi-tenant workload generation for cluster simulations.

The workload model follows the shape used throughout the cache-network
literature (e.g. Icarus' stationary workloads): context popularity is
Zipf-distributed with exponent ``alpha`` (a handful of hot documents take most
of the traffic), request arrivals are Poisson with a configurable mean rate,
and context lengths are mixed — short chats next to book-length documents —
because the text-vs-KV routing decision depends on length.

Everything is driven by one seed, so a workload object always generates the
same request sequence: cluster experiments are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Request", "WorkloadGenerator"]


@dataclass(frozen=True)
class Request:
    """One query arriving at the cluster frontend."""

    index: int
    arrival_s: float
    session_id: str
    context_id: str
    num_tokens: int
    question: str


class WorkloadGenerator:
    """Generates a deterministic multi-tenant request stream.

    Parameters
    ----------
    num_contexts:
        Size of the context catalogue (ranked 1..n by popularity).
    zipf_alpha:
        Zipf exponent of the popularity distribution; ``1.0`` is the classic
        web-trace setting, ``0`` degenerates to uniform.
    arrival_rate_per_s:
        Mean Poisson arrival rate of queries.
    token_choices:
        Context lengths to draw from; each context keeps one length for its
        lifetime (a document does not change size between queries).
    num_sessions:
        Number of concurrent user sessions issuing the queries round-robin
        by arrival order.
    seed:
        Seed of the single RNG behind popularity draws, arrivals and lengths.

    Example
    -------
    >>> workload = WorkloadGenerator(num_contexts=50, zipf_alpha=1.0, seed=7)
    >>> requests = workload.generate(num_requests=200)
    >>> requests[0].context_id  # doctest: +SKIP
    'ctx-0'
    """

    def __init__(
        self,
        num_contexts: int = 50,
        zipf_alpha: float = 1.0,
        arrival_rate_per_s: float = 2.0,
        token_choices: Sequence[int] = (800, 1_600, 3_200),
        num_sessions: int = 8,
        seed: int = 0,
        context_prefix: str = "ctx",
    ) -> None:
        if num_contexts <= 0:
            raise ValueError("num_contexts must be positive")
        if zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative")
        if arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if not token_choices or any(t <= 0 for t in token_choices):
            raise ValueError("token_choices must be positive lengths")
        if num_sessions <= 0:
            raise ValueError("num_sessions must be positive")
        self.num_contexts = num_contexts
        self.zipf_alpha = zipf_alpha
        self.arrival_rate_per_s = arrival_rate_per_s
        self.token_choices = tuple(int(t) for t in token_choices)
        self.num_sessions = num_sessions
        self.seed = seed
        self.context_prefix = context_prefix

        # Truncated-Zipf pmf over popularity ranks (rank 0 is hottest).
        ranks = np.arange(1, num_contexts + 1, dtype=np.float64)
        weights = ranks ** (-zipf_alpha)
        self._popularity = weights / weights.sum()
        # Per-context lengths are part of the catalogue, not of a run: drawn
        # once from a catalogue RNG so every run sees the same documents.
        catalogue_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xCA7A]))
        self._lengths = catalogue_rng.choice(self.token_choices, size=num_contexts)

    # ------------------------------------------------------------------ queries
    def context_id(self, rank: int) -> str:
        return f"{self.context_prefix}-{rank:04d}"

    def context_tokens(self, rank: int) -> int:
        return int(self._lengths[rank])

    def popularity(self) -> np.ndarray:
        """The Zipf pmf over context ranks (hottest first)."""
        return self._popularity.copy()

    def generate(self, num_requests: int) -> list[Request]:
        """The first ``num_requests`` requests of this workload's sequence."""
        return list(self.iter_requests(num_requests))

    def iter_requests(self, num_requests: int) -> Iterator[Request]:
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0x5EED]))
        inter_arrivals = rng.exponential(1.0 / self.arrival_rate_per_s, size=num_requests)
        arrivals = np.cumsum(inter_arrivals)
        ranks = rng.choice(self.num_contexts, size=num_requests, p=self._popularity)
        for index in range(num_requests):
            rank = int(ranks[index])
            yield Request(
                index=index,
                arrival_s=float(arrivals[index]),
                session_id=f"session-{index % self.num_sessions}",
                context_id=self.context_id(rank),
                num_tokens=self.context_tokens(rank),
                question=f"Question {index} about {self.context_id(rank)}?",
            )

"""Consistent-hash ring for context placement.

Contexts are placed on storage nodes by hashing their ids onto a ring of
virtual-node points.  Consistent hashing gives the two properties a growing
cluster needs: placement is computable by any frontend without a directory
service, and adding or removing one node only remaps the keys adjacent to that
node's points (≈ ``1/n`` of the keyspace) instead of reshuffling everything.

Replication walks the ring clockwise from a key's point, collecting the first
``n`` *distinct* physical nodes — the standard successor-list placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["ConsistentHashRing"]


def _hash64(value: str) -> int:
    """Stable 64-bit hash, independent of PYTHONHASHSEED."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A consistent-hash ring over named nodes with virtual-node smoothing.

    Parameters
    ----------
    node_ids:
        Initial physical nodes.
    vnodes:
        Virtual points per physical node.  More points smooth the load split
        at the price of a larger ring (lookup stays O(log ring)).
    """

    def __init__(self, node_ids: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node_id in node_ids:
            self.add_node(node_id)

    # ----------------------------------------------------------------- topology
    @property
    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} is already on the ring")
        self._nodes.add(node_id)
        for i in range(self.vnodes):
            point = _hash64(f"{node_id}#{i}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node_id)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} is not on the ring")
        self._nodes.discard(node_id)
        keep = [i for i, owner in enumerate(self._owners) if owner != node_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # ------------------------------------------------------------------- lookup
    def node_for(self, key: str) -> str:
        """The physical node owning ``key`` (its clockwise successor point)."""
        return self.nodes_for(key, 1)[0]

    def nodes_for(self, key: str, count: int) -> list[str]:
        """Preference-ordered distinct nodes for ``key``.

        The first entry is the primary, the rest are the replica targets in
        ring order.  ``count`` is capped at the number of physical nodes.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if not self._nodes:
            raise RuntimeError("hash ring has no nodes")
        count = min(count, len(self._nodes))
        start = bisect.bisect(self._points, _hash64(key)) % len(self._points)
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen

    def preference_order(self, key: str) -> list[str]:
        """All physical nodes in failover order for ``key``."""
        return self.nodes_for(key, len(self._nodes))

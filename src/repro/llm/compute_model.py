"""Analytical compute / latency model of the GPU serving substrate.

The paper's testbed is an NVIDIA A40 server; TTFT measurements combine the
network transfer of the context (text or KV bitstream), the decode
(decompression) of KV bitstreams, and the prefill computation for whatever
part of the context arrives as text, plus the prefill of the user prompt
itself.  This module provides the FLOPs and delay model for the compute side.

Calibration anchors:

* The paper's introduction cites ~2 seconds of prefill for a 3K-token context
  (a 7B-class model on an A40).
* Figure 14b reports ~250 TFLOPs of prefill compute for a ~9.4K-token LongChat
  context on Mistral-7B, and negligible compute for CacheGen's decode.

Prefill FLOPs follow the standard estimate ``2 * P * T`` for the MLP/attention
projections plus the quadratic attention term; delay divides FLOPs by an
effective throughput (peak throughput x utilisation), shared equally among
concurrent requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model_config import ModelConfig

__all__ = ["GPUSpec", "ComputeModel", "A40", "A100"]


@dataclass(frozen=True)
class GPUSpec:
    """A GPU's compute capability for the latency model.

    Parameters
    ----------
    name:
        GPU model name.
    peak_tflops:
        Peak dense fp16 throughput in TFLOPS.
    prefill_utilization:
        Fraction of peak throughput achieved during prefill (memory- and
        kernel-efficiency losses).  Calibrated so a 3K-token prefill of a
        7B-class model takes about 2 seconds on an A40.
    """

    name: str
    peak_tflops: float
    prefill_utilization: float = 0.18

    @property
    def effective_flops(self) -> float:
        """Sustained prefill throughput in FLOP/s."""
        return self.peak_tflops * 1e12 * self.prefill_utilization


A40 = GPUSpec(name="A40", peak_tflops=150.0, prefill_utilization=0.18)
A100 = GPUSpec(name="A100", peak_tflops=312.0, prefill_utilization=0.22)


class ComputeModel:
    """FLOPs and delay model for prefill, decode, and CacheGen's codec.

    Parameters
    ----------
    model:
        The LLM configuration being served.
    gpu:
        GPU specification; defaults to the paper's A40.

    Example
    -------
    >>> compute = ComputeModel(get_model_config("mistral-7b"))
    >>> compute.prefill_delay(num_tokens=9_600)  # seconds  # doctest: +SKIP
    """

    #: FLOPs spent by CacheGen's GPU arithmetic decoder per KV element.  The
    #: paper reports the decode compute is negligible next to prefill.
    DECODE_FLOPS_PER_ELEMENT = 8.0
    #: FLOPs spent by the encoder per KV element (offline path).
    ENCODE_FLOPS_PER_ELEMENT = 12.0
    #: Effective throughput multiplier of the codec kernels relative to
    #: prefill (they are bandwidth-bound, simple kernels).
    CODEC_UTILIZATION = 0.35

    def __init__(self, model: ModelConfig, gpu: GPUSpec = A40) -> None:
        self.model = model
        self.gpu = gpu

    # ------------------------------------------------------------------ FLOPs
    def prefill_flops(self, num_tokens: int) -> float:
        """FLOPs to prefill ``num_tokens`` of context (or prompt)."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        cfg = self.model
        linear = 2.0 * cfg.num_parameters * num_tokens
        attention = 4.0 * cfg.num_layers * cfg.hidden_size * float(num_tokens) ** 2
        return linear + attention

    def decode_flops(self, num_tokens: int) -> float:
        """FLOPs for CacheGen's GPU bitstream decoder over ``num_tokens``."""
        elements = self.model.kv_elements_per_token * max(num_tokens, 0)
        return self.DECODE_FLOPS_PER_ELEMENT * elements

    def encode_flops(self, num_tokens: int) -> float:
        """FLOPs for CacheGen's offline encoder over ``num_tokens``."""
        elements = self.model.kv_elements_per_token * max(num_tokens, 0)
        return self.ENCODE_FLOPS_PER_ELEMENT * elements

    # ------------------------------------------------------------------ delays
    def prefill_delay(self, num_tokens: int, gpu_share: float = 1.0) -> float:
        """Seconds to prefill ``num_tokens`` given a fraction of the GPU.

        ``gpu_share`` models concurrency: with ``n`` concurrent requests each
        gets ``1/n`` of the GPU (§7.3, Figure 12 left).
        """
        share = self._validate_share(gpu_share)
        return self.prefill_flops(num_tokens) / (self.gpu.effective_flops * share)

    def decode_delay(self, num_tokens: int, gpu_share: float = 1.0) -> float:
        """Seconds for the GPU arithmetic decoder to decode ``num_tokens``."""
        share = self._validate_share(gpu_share)
        throughput = self.gpu.peak_tflops * 1e12 * self.CODEC_UTILIZATION * share
        return self.decode_flops(num_tokens) / throughput

    def encode_delay(self, num_tokens: int, gpu_share: float = 1.0) -> float:
        """Seconds for the offline encoder to encode ``num_tokens``."""
        share = self._validate_share(gpu_share)
        throughput = self.gpu.peak_tflops * 1e12 * self.CODEC_UTILIZATION * share
        return self.encode_flops(num_tokens) / throughput

    def per_token_decode_delay(self, gpu_share: float = 1.0) -> float:
        """Seconds to generate one output token (autoregressive decoding).

        Dominated by reading the model weights once per token; used only to
        model the marginal delay after the first token, which CacheGen does
        not change.
        """
        share = self._validate_share(gpu_share)
        bytes_read = 2.0 * self.model.num_parameters
        memory_bandwidth = 600e9  # A40-class HBM bandwidth, bytes/s
        return bytes_read / (memory_bandwidth * share)

    @staticmethod
    def _validate_share(gpu_share: float) -> float:
        if not 0.0 < gpu_share <= 1.0:
            raise ValueError("gpu_share must be in (0, 1]")
        return gpu_share

"""Synthetic LLM substrate: model configs, KV generation, quality and compute models."""

from .attention import TokenSelection, coverage_of, select_heavy_hitters, select_uniform
from .compute_model import A40, A100, ComputeModel, GPUSpec
from .model_config import (
    LLAMA_3B,
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_34B,
    LLAMA_70B,
    MISTRAL_7B,
    MODELS,
    ModelConfig,
    get_model_config,
)
from .quality import TASK_METRICS, GenerationQuality, QualityModel
from .synthetic_model import GenerationResult, SyntheticLLM
from .tokenizer import SyntheticTokenizer, Tokenization

__all__ = [
    "A100",
    "A40",
    "ComputeModel",
    "GPUSpec",
    "GenerationQuality",
    "GenerationResult",
    "LLAMA_13B",
    "LLAMA_34B",
    "LLAMA_3B",
    "LLAMA_70B",
    "LLAMA_7B",
    "MISTRAL_7B",
    "MODELS",
    "ModelConfig",
    "QualityModel",
    "SyntheticLLM",
    "SyntheticTokenizer",
    "TASK_METRICS",
    "TokenSelection",
    "Tokenization",
    "coverage_of",
    "get_model_config",
    "select_heavy_hitters",
    "select_uniform",
]

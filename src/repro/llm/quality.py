"""Surrogate model of generation quality under KV-cache distortion.

The paper measures generation quality with three task metrics (§7.1):

* **Accuracy** on LongChat (does the answer contain the ground-truth topic),
* **F1 score** on TriviaQA / NarrativeQA question answering,
* **Perplexity** on WikiText next-token prediction.

Running those tasks requires the actual checkpoints, so the reproduction uses
a calibrated surrogate: quality is a monotone function of (a) the per-layer
normalized reconstruction error of the KV cache handed to the model, weighted
by layer sensitivity (shallow layers matter more — Insight 2 / Figure 4), and
(b) the fraction of context tokens retained and the attention mass they cover
(for token-dropping baselines such as H2O and LLMLingua).

Calibration anchors (matching Table 1 and Figures 8-10):

* 8-bit uniform quantization is effectively lossless (accuracy ~1.00).
* CacheGen's default encoding level loses ~2% accuracy.
* 4-bit / 3-bit uniform quantization lose progressively more.
* H2O (drops ~55% of tokens but keeps heavy hitters) lands near 0.97.
* LLMLingua (query-agnostic text pruning) lands near 0.94.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["GenerationQuality", "QualityModel", "TASK_METRICS"]

#: Metric associated with each task, and whether larger values are better.
TASK_METRICS: Mapping[str, tuple[str, bool]] = {
    "qa_accuracy": ("accuracy", True),
    "qa_f1": ("f1", True),
    "perplexity": ("perplexity", False),
}


@dataclass(frozen=True)
class GenerationQuality:
    """Quality of one generation.

    Attributes
    ----------
    task:
        Task name (key of :data:`TASK_METRICS`).
    metric:
        Metric name (``"accuracy"``, ``"f1"`` or ``"perplexity"``).
    value:
        Metric value for this generation.
    base_value:
        Metric value the same model achieves with a lossless KV cache.
    relative_quality:
        ``value / base_value`` for higher-is-better metrics and
        ``base_value / value`` for perplexity, so that 1.0 always means "as
        good as lossless" and smaller means worse.
    """

    task: str
    metric: str
    value: float
    base_value: float
    relative_quality: float

    @property
    def higher_is_better(self) -> bool:
        return TASK_METRICS[self.task][1]


class QualityModel:
    """Maps KV distortion and token retention to task quality.

    Parameters
    ----------
    num_layers:
        Number of (simulated) layers; used to build the sensitivity weights.
    sensitivity_decay:
        Exponential decay rate of layer sensitivity with depth.  Larger values
        concentrate sensitivity in the shallow layers.
    base_values:
        Lossless-cache metric value per task.  Defaults follow the paper's
        reported numbers (accuracy ~1.0 on LongChat with Mistral-7B, F1 in the
        40-95% range, perplexity around 5-10).

    Example
    -------
    >>> quality = QualityModel(num_layers=32)
    >>> quality.layer_sensitivity().shape  # deeper layers tolerate more loss
    (32,)
    """

    #: Linear and quadratic distortion penalties per task, calibrated per the
    #: module docstring.
    _ALPHA = {"qa_accuracy": 1.0, "qa_f1": 0.9, "perplexity": 0.9}
    _BETA = {"qa_accuracy": 1.5, "qa_f1": 1.2, "perplexity": 1.0}

    def __init__(
        self,
        num_layers: int,
        sensitivity_decay: float = 3.0,
        base_values: Mapping[str, float] | None = None,
    ) -> None:
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.num_layers = num_layers
        self.sensitivity_decay = sensitivity_decay
        self.base_values = dict(base_values or {
            "qa_accuracy": 1.0,
            "qa_f1": 0.85,
            "perplexity": 6.0,
        })

    # --------------------------------------------------------------- weights
    def layer_sensitivity(self) -> np.ndarray:
        """Normalized sensitivity weight of each layer (sums to 1).

        Shallow layers carry exponentially larger weights, reproducing the
        paper's Insight 2: losses in early layers propagate and damage the
        higher-level structures later layers extract.
        """
        depth = np.arange(self.num_layers, dtype=np.float64)
        if self.num_layers > 1:
            depth = depth / (self.num_layers - 1)
        weights = np.exp(-self.sensitivity_decay * depth)
        return weights / weights.sum()

    # ----------------------------------------------------------------- scoring
    def effective_distortion(self, layer_distortion: np.ndarray) -> float:
        """Sensitivity-weighted scalar distortion from per-layer distortions."""
        layer_distortion = np.asarray(layer_distortion, dtype=np.float64)
        if layer_distortion.ndim != 1:
            raise ValueError("layer_distortion must be one-dimensional")
        if len(layer_distortion) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} per-layer distortions, got {len(layer_distortion)}"
            )
        if np.any(layer_distortion < 0):
            raise ValueError("distortions must be non-negative")
        return float(np.dot(self.layer_sensitivity(), layer_distortion))

    def token_retention_penalty(
        self, token_keep_fraction: float, important_token_coverage: float
    ) -> float:
        """Multiplicative quality penalty for dropping context tokens.

        ``important_token_coverage`` dominates: dropping tokens that carry
        little attention mass (H2O's heavy-hitter policy) barely hurts, while
        query-agnostic pruning (LLMLingua, Gisting) loses more.
        """
        if not 0.0 < token_keep_fraction <= 1.0:
            raise ValueError("token_keep_fraction must be in (0, 1]")
        if not 0.0 <= important_token_coverage <= 1.0:
            raise ValueError("important_token_coverage must be in [0, 1]")
        penalty = 1.0 - 0.3 * (1.0 - important_token_coverage) - 0.03 * (1.0 - token_keep_fraction)
        return float(max(penalty, 0.0))

    def relative_quality(
        self,
        task: str,
        layer_distortion: np.ndarray,
        token_keep_fraction: float = 1.0,
        important_token_coverage: float = 1.0,
    ) -> float:
        """Relative quality in [0, 1], where 1 means "same as lossless"."""
        if task not in TASK_METRICS:
            raise ValueError(f"unknown task {task!r}; known tasks: {sorted(TASK_METRICS)}")
        d = self.effective_distortion(layer_distortion)
        alpha, beta = self._ALPHA[task], self._BETA[task]
        distortion_mult = float(np.exp(-alpha * d - beta * d * d))
        drop_mult = self.token_retention_penalty(token_keep_fraction, important_token_coverage)
        return max(min(distortion_mult * drop_mult, 1.0), 0.0)

    def score(
        self,
        task: str,
        layer_distortion: np.ndarray,
        token_keep_fraction: float = 1.0,
        important_token_coverage: float = 1.0,
    ) -> GenerationQuality:
        """Produce a :class:`GenerationQuality` for a generation."""
        rel = self.relative_quality(
            task, layer_distortion, token_keep_fraction, important_token_coverage
        )
        metric, higher_better = TASK_METRICS[task]
        base = self.base_values[task]
        if higher_better:
            value = base * rel
        else:
            # Perplexity grows as quality degrades; guard against rel == 0.
            value = base / max(rel, 1e-3)
        return GenerationQuality(
            task=task,
            metric=metric,
            value=float(value),
            base_value=float(base),
            relative_quality=float(rel),
        )

"""A small deterministic tokenizer used by the synthetic LLM substrate.

The real CacheGen operates on token sequences produced by the model's own
(BPE) tokenizer.  For the reproduction we only need a tokenizer that is
deterministic, reversible, and roughly word-level so that context lengths in
tokens track the paper's datasets.  The implementation is a whitespace /
punctuation splitter with a stable hash-based vocabulary assignment.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass

__all__ = ["SyntheticTokenizer", "Tokenization"]

_TOKEN_RE = re.compile(r"\w+|[^\w\s]")


@dataclass(frozen=True)
class Tokenization:
    """Result of tokenizing a piece of text."""

    token_ids: tuple[int, ...]
    tokens: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.token_ids)


class SyntheticTokenizer:
    """Deterministic word-level tokenizer with a fixed-size hashed vocabulary.

    Parameters
    ----------
    vocab_size:
        Size of the hashed vocabulary.  Token ids are in ``[0, vocab_size)``.
    """

    def __init__(self, vocab_size: int = 32_000) -> None:
        if vocab_size < 2:
            raise ValueError("vocab_size must be at least 2")
        self.vocab_size = vocab_size

    def tokenize(self, text: str) -> Tokenization:
        """Split ``text`` into tokens and assign stable ids."""
        tokens = tuple(_TOKEN_RE.findall(text))
        token_ids = tuple(self.token_to_id(tok) for tok in tokens)
        return Tokenization(token_ids=token_ids, tokens=tokens)

    def token_to_id(self, token: str) -> int:
        """Stable hash of a token string into the vocabulary range."""
        return zlib.crc32(token.encode("utf-8")) % self.vocab_size

    def count_tokens(self, text: str) -> int:
        """Number of tokens ``text`` would tokenize into."""
        return len(_TOKEN_RE.findall(text))

    def detokenize(self, tokens: tuple[str, ...]) -> str:
        """Re-join tokens into text (lossy w.r.t. original whitespace)."""
        out: list[str] = []
        for tok in tokens:
            if out and re.match(r"\w", tok):
                out.append(" ")
            out.append(tok)
        return "".join(out)

    def text_bytes_for_tokens(self, num_tokens: int, bytes_per_token: float = 4.5) -> int:
        """Approximate UTF-8 byte length of a ``num_tokens``-token text.

        Used by the streaming adapter to account for the cost of sending a
        chunk in text form instead of as an encoded KV bitstream.  English
        text averages ~4-5 bytes per token.
        """
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return int(round(num_tokens * bytes_per_token))

"""Synthetic transformer substrate that produces KV caches.

The paper's codec design rests on three empirical properties of KV caches
(§5.1):

1. **Token-wise locality** — within a layer and channel, values at nearby
   token positions are similar; the deltas between consecutive tokens have a
   variance 2.4-2.9x lower than the original values.
2. **Layer-wise sensitivity** — output quality is more sensitive to losses in
   shallow layers than deep layers.
3. **Channel/layer grouping** — grouping values by channel or layer yields far
   lower entropy than grouping by token position.

:class:`SyntheticLLM` generates KV caches from an autoregressive (AR(1))
process whose parameters are drawn per layer and channel, which reproduces all
three properties (verified by the tests in ``tests/llm`` and the analysis in
``repro.analysis.insights``).  It also exposes the two interfaces the paper
integrates with serving frameworks through (§6):

* :meth:`SyntheticLLM.calculate_kv` — prefill a context into a KV cache.
* :meth:`SyntheticLLM.generate_with_kv` — generate a response given a
  (possibly lossy) KV cache, returning the response together with its quality.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.signal import lfilter

from ..core.kv_cache import KVCache
from .model_config import ModelConfig, get_model_config
from .quality import GenerationQuality, QualityModel
from .tokenizer import SyntheticTokenizer

__all__ = ["SyntheticLLM", "GenerationResult"]


def _stable_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from arbitrary string-able parts."""
    digest = hashlib.sha256("::".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class GenerationResult:
    """Output of :meth:`SyntheticLLM.generate_with_kv`."""

    text: str
    quality: GenerationQuality
    num_generated_tokens: int


class SyntheticLLM:
    """A synthetic LLM that emits statistically realistic KV caches.

    Parameters
    ----------
    config:
        Model configuration (or model name) determining dimensions.
    token_correlation:
        AR(1) coefficient of the fast per-token component.  Together with the
        static and slowly-drifting components (see :meth:`_generate_tensor`)
        the default reproduces the paper's observation that deltas between
        consecutive tokens have 2.4-2.9x lower variance than the original
        values.
    quality_model:
        Surrogate mapping KV distortion to generation quality.  A default is
        constructed if omitted.

    Example
    -------
    >>> llm = SyntheticLLM("mistral-7b")
    >>> kv = llm.calculate_kv("ctx", num_tokens=2_000)  # deterministic per id
    >>> llm.calculate_kv("ctx", num_tokens=2_000).k.shape == kv.k.shape
    True
    """

    def __init__(
        self,
        config: ModelConfig | str,
        token_correlation: float = 0.25,
        quality_model: Optional[QualityModel] = None,
    ) -> None:
        if isinstance(config, str):
            config = get_model_config(config)
        if not 0.0 <= token_correlation < 1.0:
            raise ValueError("token_correlation must be in [0, 1)")
        self.config = config
        self.token_correlation = token_correlation
        self.quality_model = quality_model or QualityModel(num_layers=config.sim_layers)
        self.tokenizer = SyntheticTokenizer()

    # ----------------------------------------------------------------- prefill
    def calculate_kv(self, context_id: str, num_tokens: int) -> KVCache:
        """Prefill a context into a KV cache (the ``calculate_kv`` interface).

        Parameters
        ----------
        context_id:
            Stable identifier of the context (e.g. a dataset record id).  The
            same id always yields the same cache.
        num_tokens:
            Context length in tokens.

        Returns
        -------
        KVCache
            Simulation-scale KV tensors with full-model metadata attached.
        """
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        cfg = self.config
        # The per-(layer, channel) structure (means and scales) is a property
        # of the *model*: the same channels are consistently large or small
        # across contexts, which is what lets CacheGen profile per-channel
        # symbol distributions offline and reuse them for every context.
        structure_rng = np.random.default_rng(_stable_seed(cfg.name, "channel-structure"))
        context_rng = np.random.default_rng(_stable_seed(cfg.name, context_id, "kv"))

        layers, channels = cfg.sim_layers, cfg.sim_channels
        rho = self.token_correlation

        k = self._generate_tensor(structure_rng, context_rng, layers, num_tokens, channels, rho)
        v = self._generate_tensor(structure_rng, context_rng, layers, num_tokens, channels, rho)
        return KVCache(
            k=k,
            v=v,
            model_name=cfg.name,
            full_layers=cfg.num_layers,
            full_channels=cfg.kv_channels,
        )

    #: Standard deviation (in log space) of the per-channel scale spread.
    #: Larger values mean more heterogeneous channels, which is what makes
    #: per-(layer, channel) probability models pay off (Insight 3).
    CHANNEL_SCALE_SIGMA = 0.85
    #: Relative weights of the per-channel mean offset, the slowly drifting
    #: component and the fast (per-token) component.  Calibrated so that the
    #: variance of deltas between consecutive tokens is 2.4-2.9x lower than
    #: the variance of the original values (Insight 1 / Figure 3) while deltas
    #: against a group anchor up to 9 tokens away remain ~2x smaller.
    MEAN_STD = 1.2
    SLOW_STD = 1.3
    FAST_STD = 1.0
    SLOW_CORRELATION = 0.999

    def _generate_tensor(
        self,
        structure_rng: np.random.Generator,
        context_rng: np.random.Generator,
        layers: int,
        tokens: int,
        channels: int,
        rho: float,
    ) -> np.ndarray:
        """Generate one (layers, tokens, channels) tensor.

        Each (layer, channel) value is ``scale * (mu + slow(t) + fast(t))``:

        * ``mu`` is a static per-channel offset,
        * ``slow(t)`` drifts with near-unit correlation across tokens,
        * ``fast(t)`` is an AR(1) component with coefficient ``rho``.

        The static offset and the slow drift are what anchor-based delta
        encoding removes; the fast component sets the variance of the deltas.
        Per-(layer, channel) scales are log-normal, so channels differ widely
        in magnitude — the property that per-channel probability models (and
        Figure 5's grouping-entropy measurement) rely on.  Scales also grow
        mildly with depth, mirroring that different layers occupy different
        value ranges.  Means and scales come from ``structure_rng`` (seeded by
        the model, shared across contexts); the token series come from
        ``context_rng`` (seeded by the context).
        """
        layer_scale = 0.6 + 0.08 * np.arange(layers, dtype=np.float64)[:, None]
        channel_scale = np.exp(
            structure_rng.normal(0.0, self.CHANNEL_SCALE_SIGMA, size=(layers, channels))
        )
        scale = layer_scale * channel_scale
        mean = structure_rng.normal(0.0, self.MEAN_STD, size=(layers, channels))

        fast = self._stationary_ar1(context_rng, (layers, tokens, channels), rho)
        slow = self._stationary_ar1(context_rng, (layers, tokens, channels), self.SLOW_CORRELATION)

        series = mean[:, None, :] + self.SLOW_STD * slow + self.FAST_STD * fast
        tensor = scale[:, None, :] * series
        return tensor.astype(np.float32)

    @staticmethod
    def _stationary_ar1(
        rng: np.random.Generator, shape: tuple[int, int, int], rho: float
    ) -> np.ndarray:
        """Unit-variance AR(1) process along the token axis, stationary from t=0."""
        layers, tokens, channels = shape
        noise = rng.standard_normal(size=shape)
        series = lfilter([np.sqrt(1.0 - rho * rho)], [1.0, -rho], noise, axis=1)
        # The zero initial condition leaves early tokens with reduced variance;
        # add an independently drawn stationary start decayed by rho**t so the
        # process has unit variance at every position.
        start = rng.standard_normal(size=(layers, 1, channels))
        decay = np.power(rho, np.arange(tokens, dtype=np.float64))[None, :, None]
        return series + start * decay

    # --------------------------------------------------------------- attention
    def attention_scores(self, context_id: str, num_tokens: int) -> np.ndarray:
        """Per-token cumulative attention scores used by token-dropping baselines.

        Returns a probability vector over token positions.  Real attention
        score distributions are heavy tailed with a small set of heavy-hitter
        tokens plus a recency bias, which is exactly what H2O and Scissorhands
        exploit; a Zipf-like draw with a recency ramp reproduces that shape.
        """
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng(_stable_seed(self.config.name, context_id, "attention"))
        heavy_tail = rng.pareto(0.9, size=num_tokens) + 0.05
        recency = 1.0 + 2.0 * np.linspace(0.0, 1.0, num_tokens)
        scores = heavy_tail * recency
        return (scores / scores.sum()).astype(np.float64)

    # -------------------------------------------------------------- generation
    def generate_with_kv(
        self,
        kv: KVCache,
        reference_kv: Optional[KVCache] = None,
        task: str = "qa_accuracy",
        token_keep_fraction: float = 1.0,
        important_token_coverage: float = 1.0,
        max_new_tokens: int = 32,
    ) -> GenerationResult:
        """Generate a response from a (possibly lossy) KV cache.

        Parameters
        ----------
        kv:
            The KV cache handed to the model (after decode / reconstruction).
        reference_kv:
            The lossless cache for the same context.  If given, the quality
            surrogate scores the generation from the per-layer reconstruction
            error between ``kv`` and ``reference_kv``; if omitted the cache is
            assumed lossless.
        task:
            One of the task names understood by :class:`QualityModel`
            (``"qa_accuracy"``, ``"qa_f1"``, ``"perplexity"``).
        token_keep_fraction:
            Fraction of context tokens retained (``< 1`` for token-dropping
            baselines such as H2O / LLMLingua).
        important_token_coverage:
            Fraction of attention mass covered by the retained tokens; 1.0 for
            methods that keep everything or drop only unimportant tokens.
        max_new_tokens:
            Length of the synthetic response.
        """
        if reference_kv is not None:
            distortion = reference_kv.normalized_distortion_per_layer(kv)
        else:
            distortion = np.zeros(kv.num_layers)
        quality = self.quality_model.score(
            task=task,
            layer_distortion=distortion,
            token_keep_fraction=token_keep_fraction,
            important_token_coverage=important_token_coverage,
        )
        text = self._render_response(kv, quality, max_new_tokens)
        return GenerationResult(text=text, quality=quality, num_generated_tokens=max_new_tokens)

    def _render_response(self, kv: KVCache, quality: GenerationQuality, n: int) -> str:
        """Render a deterministic placeholder response string."""
        status = "faithful" if quality.relative_quality > 0.95 else "degraded"
        return (
            f"[{self.config.name}] {status} response generated from a "
            f"{kv.num_tokens}-token context ({n} tokens)."
        )

"""Attention-score utilities for token-dropping baselines.

H2O and Scissorhands drop tokens whose cumulative attention scores are low
("heavy-hitter" policies).  The synthetic LLM exposes a per-token attention
mass vector (:meth:`repro.llm.SyntheticLLM.attention_scores`); this module
provides the selection logic the baselines share: choosing which token
positions to keep for a target keep-fraction, and measuring how much attention
mass the kept tokens cover (which drives the quality surrogate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TokenSelection", "select_heavy_hitters", "select_uniform", "coverage_of"]


@dataclass(frozen=True)
class TokenSelection:
    """Result of selecting a subset of context token positions.

    Attributes
    ----------
    kept_positions:
        Sorted array of kept token indices.
    keep_fraction:
        Fraction of tokens kept.
    attention_coverage:
        Fraction of total attention mass carried by the kept tokens.
    """

    kept_positions: np.ndarray
    keep_fraction: float
    attention_coverage: float

    @property
    def num_kept(self) -> int:
        return int(len(self.kept_positions))


def _validate(scores: np.ndarray, keep_fraction: float) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or len(scores) == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    if np.any(scores < 0):
        raise ValueError("attention scores must be non-negative")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    return scores


def coverage_of(scores: np.ndarray, kept_positions: np.ndarray) -> float:
    """Fraction of attention mass covered by ``kept_positions``."""
    scores = np.asarray(scores, dtype=np.float64)
    total = float(scores.sum())
    if total <= 0:
        return 0.0
    return float(scores[np.asarray(kept_positions, dtype=int)].sum() / total)


def select_heavy_hitters(
    scores: np.ndarray, keep_fraction: float, recent_window_fraction: float = 0.1
) -> TokenSelection:
    """Keep the highest-attention tokens plus a window of the most recent ones.

    This mirrors H2O's policy of retaining heavy-hitter tokens and the local
    (recent) tokens.  ``recent_window_fraction`` of the budget is reserved for
    the most recent tokens regardless of their scores.
    """
    scores = _validate(scores, keep_fraction)
    if not 0.0 <= recent_window_fraction <= 1.0:
        raise ValueError("recent_window_fraction must be in [0, 1]")
    n = len(scores)
    budget = max(int(round(keep_fraction * n)), 1)
    recent_budget = min(int(round(recent_window_fraction * budget)), budget)
    recent = np.arange(n - recent_budget, n) if recent_budget > 0 else np.empty(0, dtype=int)

    remaining_budget = budget - len(recent)
    candidates = np.setdiff1d(np.arange(n), recent, assume_unique=True)
    order = candidates[np.argsort(scores[candidates])[::-1]]
    heavy = order[:remaining_budget]

    kept = np.sort(np.concatenate([recent, heavy]).astype(int))
    return TokenSelection(
        kept_positions=kept,
        keep_fraction=len(kept) / n,
        attention_coverage=coverage_of(scores, kept),
    )


def select_uniform(scores: np.ndarray, keep_fraction: float, seed: int = 0) -> TokenSelection:
    """Keep a uniformly random subset of tokens (query-agnostic pruning).

    Used to model pruning policies that cannot see the query (LLMLingua-style
    text compression in the offline stage) and therefore cover less attention
    mass than heavy-hitter selection at the same keep fraction.
    """
    scores = _validate(scores, keep_fraction)
    n = len(scores)
    budget = max(int(round(keep_fraction * n)), 1)
    rng = np.random.default_rng(seed)
    kept = np.sort(rng.choice(n, size=budget, replace=False))
    return TokenSelection(
        kept_positions=kept.astype(int),
        keep_fraction=budget / n,
        attention_coverage=coverage_of(scores, kept),
    )

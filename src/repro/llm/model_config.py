"""Model configurations for the LLMs the paper evaluates.

The paper evaluates CacheGen on fine-tuned long-context versions of
Mistral-7B, Llama-34B and Llama-70B, and uses Llama-7B/13B for the §5.1
insight studies.  We cannot run those checkpoints here, but the codec and the
latency models only need the model *dimensions*: number of transformer layers,
number of KV heads, head dimension, hidden size and parameter count.

Each :class:`ModelConfig` also carries *simulation-scale* dimensions — the
tensor shape we actually materialise when generating synthetic KV caches.
Compressed sizes measured on the simulation tensors are extrapolated to the
full model via bits-per-element accounting (see ``DESIGN.md``).

The full-model KV byte counts line up with the paper's reported numbers, e.g.
Mistral-7B at ~9.4K tokens is ~1.2 GB in fp16, so its 8-bit-quantized cache is
~620 MB, matching Table 1's 622 MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ModelConfig",
    "MISTRAL_7B",
    "LLAMA_7B",
    "LLAMA_13B",
    "LLAMA_34B",
    "LLAMA_70B",
    "LLAMA_3B",
    "MODELS",
    "get_model_config",
]


@dataclass(frozen=True)
class ModelConfig:
    """Dimensions of a transformer LLM relevant to KV-cache accounting.

    Parameters
    ----------
    name:
        Human readable model name, e.g. ``"mistral-7b"``.
    num_layers:
        Number of transformer layers (each contributes one K and one V tensor).
    num_kv_heads:
        Number of key/value heads.  Models with grouped-query attention (GQA)
        have fewer KV heads than query heads, which shrinks the KV cache.
    head_dim:
        Per-head dimension.
    hidden_size:
        Model hidden size (used by the FLOPs model).
    num_parameters:
        Total parameter count (used by the FLOPs / prefill-delay model).
    max_context:
        Maximum context length of the fine-tuned long-context variant.
    sim_layers, sim_channels:
        Dimensions of the synthetic KV tensors we materialise for this model.

    Example
    -------
    >>> config = get_model_config("mistral-7b")
    >>> config.num_layers, config.head_dim  # doctest: +SKIP
    """

    name: str
    num_layers: int
    num_kv_heads: int
    head_dim: int
    hidden_size: int
    num_parameters: float
    max_context: int = 32_768
    sim_layers: int = field(default=0)
    sim_channels: int = field(default=32)

    def __post_init__(self) -> None:
        if self.sim_layers <= 0:
            object.__setattr__(self, "sim_layers", min(self.num_layers, 32))

    # ------------------------------------------------------------------ sizes
    @property
    def kv_channels(self) -> int:
        """Channels per K (or V) tensor per layer: ``num_kv_heads * head_dim``."""
        return self.num_kv_heads * self.head_dim

    @property
    def kv_elements_per_token(self) -> int:
        """Number of fp elements (K and V) stored per context token."""
        return 2 * self.num_layers * self.kv_channels

    @property
    def kv_bytes_per_token_fp16(self) -> int:
        """Uncompressed fp16 KV bytes per context token."""
        return 2 * self.kv_elements_per_token

    def kv_cache_bytes(self, num_tokens: int, bits_per_element: float = 16.0) -> float:
        """KV cache size in bytes for ``num_tokens`` at ``bits_per_element``."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return self.kv_elements_per_token * num_tokens * bits_per_element / 8.0

    # --------------------------------------------------------------- simulation
    @property
    def sim_scale_factor(self) -> float:
        """Full-model elements per simulated element."""
        return (self.num_layers * self.kv_channels) / (self.sim_layers * self.sim_channels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


MISTRAL_7B = ModelConfig(
    name="mistral-7b",
    num_layers=32,
    num_kv_heads=8,
    head_dim=128,
    hidden_size=4096,
    num_parameters=7.2e9,
    max_context=32_768,
)

LLAMA_7B = ModelConfig(
    name="llama-7b",
    num_layers=32,
    num_kv_heads=32,
    head_dim=128,
    hidden_size=4096,
    num_parameters=6.7e9,
    max_context=16_384,
)

LLAMA_13B = ModelConfig(
    name="llama-13b",
    num_layers=40,
    num_kv_heads=40,
    head_dim=128,
    hidden_size=5120,
    num_parameters=13.0e9,
    max_context=16_384,
)

LLAMA_34B = ModelConfig(
    name="llama-34b",
    num_layers=48,
    num_kv_heads=8,
    head_dim=128,
    hidden_size=8192,
    num_parameters=34.0e9,
    max_context=32_768,
)

LLAMA_70B = ModelConfig(
    name="llama-70b",
    num_layers=80,
    num_kv_heads=8,
    head_dim=128,
    hidden_size=8192,
    num_parameters=70.0e9,
    max_context=32_768,
    sim_layers=32,
)

#: Small model used by the Appendix-B "smaller model" baseline (Figure 18a).
LLAMA_3B = ModelConfig(
    name="llama-3b",
    num_layers=26,
    num_kv_heads=32,
    head_dim=100,
    hidden_size=3200,
    num_parameters=3.4e9,
    max_context=8_192,
    sim_layers=26,
)

MODELS: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (MISTRAL_7B, LLAMA_7B, LLAMA_13B, LLAMA_34B, LLAMA_70B, LLAMA_3B)
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model configuration by name.

    Raises
    ------
    KeyError
        If ``name`` is not one of the known model configurations.

    Example
    -------
    >>> get_model_config("mistral-7b").name
    'mistral-7b'
    """
    try:
        return MODELS[name]
    except KeyError:
        known = ", ".join(sorted(MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None

"""Integer arithmetic coder (Witten-Neal-Cleary style).

CacheGen's bitstreams are produced by an arithmetic coder driven by the
per-(layer, channel) probability models (§5.2).  The paper accelerates coding
with CUDA kernels; this reproduction provides a correct pure-Python integer
implementation used for exact round-trip encoding/decoding, while the
repo-scale experiments use the cross-entropy size model (see
``repro.core.entropy_codec``), which the arithmetic coder attains to within a
few bytes of termination overhead.

The coder is *static*: frequencies come from a pre-computed cumulative table
(optionally a different table per symbol context), exactly like CacheGen's
offline-profiled distributions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ArithmeticEncoder", "ArithmeticDecoder", "encode_symbols", "decode_symbols"]

_PRECISION = 32
_FULL = (1 << _PRECISION) - 1
_HALF = 1 << (_PRECISION - 1)
_QUARTER = 1 << (_PRECISION - 2)
_THREE_QUARTERS = 3 * _QUARTER
#: Maximum admissible total frequency so the coding range never underflows.
MAX_TOTAL_FREQUENCY = _QUARTER


class _BitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0
        self.bit_count = 0

    def write(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        self.bit_count += 1
        if self._filled == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._filled = 0

    def write_with_pending(self, bit: int, pending: int) -> int:
        """Write ``bit`` followed by ``pending`` opposite bits; returns 0."""
        self.write(bit)
        opposite = 1 - bit
        for _ in range(pending):
            self.write(opposite)
        return 0

    def getvalue(self) -> bytes:
        if self._filled:
            self._bytes.append(self._current << (8 - self._filled))
            self._current = 0
            self._filled = 0
        return bytes(self._bytes)


class _BitReader:
    """Reads bits most-significant-first from a byte string (zero-padded)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self) -> int:
        byte_index, bit_index = divmod(self._pos, 8)
        self._pos += 1
        if byte_index >= len(self._data):
            return 0
        return (self._data[byte_index] >> (7 - bit_index)) & 1


def _as_cum_table(cum_freq: np.ndarray) -> np.ndarray:
    cum = np.asarray(cum_freq, dtype=np.int64)
    if cum.ndim == 1:
        cum = cum[None, :]
    if cum.ndim != 2:
        raise ValueError("cumulative frequency table must be 1-D or 2-D")
    if np.any(cum[:, 0] != 0):
        raise ValueError("cumulative frequencies must start at 0")
    if np.any(np.diff(cum, axis=1) <= 0):
        raise ValueError("every symbol must have a strictly positive frequency")
    if np.any(cum[:, -1] > MAX_TOTAL_FREQUENCY):
        raise ValueError("total frequency exceeds the coder's precision budget")
    return cum


class ArithmeticEncoder:
    """Static-model arithmetic encoder.

    Parameters
    ----------
    cum_freq:
        Either a single cumulative frequency table of shape ``(alphabet+1,)``
        or a per-context table of shape ``(num_contexts, alphabet+1)``.
    """

    def __init__(self, cum_freq: np.ndarray) -> None:
        self._cum = _as_cum_table(cum_freq)

    def encode(self, symbols: Sequence[int], contexts: Sequence[int] | None = None) -> bytes:
        """Encode ``symbols`` (alphabet indices) into a byte string.

        ``contexts`` selects the frequency table row per symbol; omit it when
        the encoder was built with a single table.
        """
        cum = self._cum
        symbols = np.asarray(symbols, dtype=np.int64)
        if contexts is None:
            contexts = np.zeros(len(symbols), dtype=np.int64)
        else:
            contexts = np.asarray(contexts, dtype=np.int64)
        if len(contexts) != len(symbols):
            raise ValueError("contexts must have the same length as symbols")
        if len(symbols) and (symbols.min() < 0 or symbols.max() >= cum.shape[1] - 1):
            raise ValueError("symbol out of alphabet range")
        if len(contexts) and (contexts.min() < 0 or contexts.max() >= cum.shape[0]):
            raise ValueError("context out of range")

        writer = _BitWriter()
        low, high, pending = 0, _FULL, 0
        cum_list = cum  # local alias for speed
        for sym, ctx in zip(symbols.tolist(), contexts.tolist()):
            row = cum_list[ctx]
            total = int(row[-1])
            span = high - low + 1
            high = low + (span * int(row[sym + 1])) // total - 1
            low = low + (span * int(row[sym])) // total
            while True:
                if high < _HALF:
                    pending = writer.write_with_pending(0, pending)
                elif low >= _HALF:
                    pending = writer.write_with_pending(1, pending)
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    pending += 1
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low <<= 1
                high = (high << 1) | 1
        # Termination: disambiguate the final interval.
        pending += 1
        if low < _QUARTER:
            writer.write_with_pending(0, pending)
        else:
            writer.write_with_pending(1, pending)
        return writer.getvalue()


class ArithmeticDecoder:
    """Static-model arithmetic decoder matching :class:`ArithmeticEncoder`."""

    def __init__(self, cum_freq: np.ndarray) -> None:
        self._cum = _as_cum_table(cum_freq)

    def decode(
        self,
        data: bytes,
        num_symbols: int,
        contexts: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Decode ``num_symbols`` alphabet indices from ``data``."""
        cum = self._cum
        if contexts is None:
            contexts = np.zeros(num_symbols, dtype=np.int64)
        else:
            contexts = np.asarray(contexts, dtype=np.int64)
        if len(contexts) != num_symbols:
            raise ValueError("contexts must have length num_symbols")

        reader = _BitReader(data)
        value = 0
        for _ in range(_PRECISION):
            value = (value << 1) | reader.read()
        low, high = 0, _FULL
        out = np.empty(num_symbols, dtype=np.int64)
        for i in range(num_symbols):
            row = cum[contexts[i]]
            total = int(row[-1])
            span = high - low + 1
            scaled = ((value - low + 1) * total - 1) // span
            sym = int(np.searchsorted(row, scaled, side="right")) - 1
            out[i] = sym
            high = low + (span * int(row[sym + 1])) // total - 1
            low = low + (span * int(row[sym])) // total
            while True:
                if high < _HALF:
                    pass
                elif low >= _HALF:
                    value -= _HALF
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    value -= _QUARTER
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low <<= 1
                high = (high << 1) | 1
                value = (value << 1) | reader.read()
        return out


def encode_symbols(
    symbols: Sequence[int],
    cum_freq: np.ndarray,
    contexts: Sequence[int] | None = None,
) -> bytes:
    """Convenience wrapper around :class:`ArithmeticEncoder`."""
    return ArithmeticEncoder(cum_freq).encode(symbols, contexts)


def decode_symbols(
    data: bytes,
    num_symbols: int,
    cum_freq: np.ndarray,
    contexts: Sequence[int] | None = None,
) -> np.ndarray:
    """Convenience wrapper around :class:`ArithmeticDecoder`."""
    return ArithmeticDecoder(cum_freq).decode(data, num_symbols, contexts)

"""Symbol probability models for entropy coding of quantized KV tensors.

Arithmetic coding needs a probability distribution over symbols.  Insight 3 of
the paper says that grouping KV values by *channel and layer* yields much
lower entropy than grouping by token position, so CacheGen profiles a separate
symbol distribution for every (layer, channel) pair — offline, once per LLM —
and reuses it for every KV cache that model produces (§5.2, "Arithmetic
coding").  The ablation in §7.5 reports that this grouping shrinks the
bitstream by up to 53% versus a single global distribution.

:class:`SymbolProbabilityModel` supports all the grouping strategies the paper
compares (Figure 5): ``"channel_layer"`` (CacheGen's choice), ``"layer"``,
``"channel"``, ``"token"`` and ``"global"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from .quantization import SYMBOL_CLIP

__all__ = ["SymbolProbabilityModel", "Grouping", "ALPHABET_SIZE", "SYMBOL_OFFSET"]

Grouping = Literal["channel_layer", "layer", "channel", "token", "global"]

#: Symbols live in [-SYMBOL_CLIP, SYMBOL_CLIP]; the alphabet maps them to
#: [0, ALPHABET_SIZE) by adding SYMBOL_OFFSET.
SYMBOL_OFFSET = SYMBOL_CLIP
ALPHABET_SIZE = 2 * SYMBOL_CLIP + 1

_VALID_GROUPINGS = ("channel_layer", "layer", "channel", "token", "global")


def _context_ids(shape: tuple[int, int, int], grouping: Grouping) -> tuple[np.ndarray, int]:
    """Per-element context id grid for a (layers, tokens, channels) tensor."""
    layers, tokens, channels = shape
    if grouping == "channel_layer":
        grid = (np.arange(layers)[:, None, None] * channels + np.arange(channels)[None, None, :])
        grid = np.broadcast_to(grid, shape)
        return grid, layers * channels
    if grouping == "layer":
        grid = np.broadcast_to(np.arange(layers)[:, None, None], shape)
        return grid, layers
    if grouping == "channel":
        grid = np.broadcast_to(np.arange(channels)[None, None, :], shape)
        return grid, channels
    if grouping == "token":
        grid = np.broadcast_to(np.arange(tokens)[None, :, None], shape)
        return grid, tokens
    if grouping == "global":
        return np.zeros(shape, dtype=np.int64), 1
    raise ValueError(f"unknown grouping {grouping!r}; expected one of {_VALID_GROUPINGS}")


def _symbol_counts(symbols: np.ndarray, grouping: Grouping) -> tuple[np.ndarray, int]:
    """Joint (context, symbol) counts for a symbol tensor."""
    symbols = np.asarray(symbols)
    if symbols.ndim != 3:
        raise ValueError("symbols must be 3-D (layers, tokens, channels)")
    if symbols.min() < -SYMBOL_CLIP or symbols.max() > SYMBOL_CLIP:
        raise ValueError(f"symbols must lie in [-{SYMBOL_CLIP}, {SYMBOL_CLIP}]")
    ctx, num_ctx = _context_ids(symbols.shape, grouping)
    flat = ctx.astype(np.int64).ravel() * ALPHABET_SIZE + (symbols.ravel().astype(np.int64) + SYMBOL_OFFSET)
    counts = np.bincount(flat, minlength=num_ctx * ALPHABET_SIZE).reshape(num_ctx, ALPHABET_SIZE)
    return counts.astype(np.float64), num_ctx


@dataclass
class SymbolProbabilityModel:
    """Per-context categorical distribution over quantized symbols.

    Build one with :meth:`fit` from one or more symbol tensors, then use
    :meth:`cross_entropy_bits` to measure the ideal (arithmetic-coding) code
    length of new data, or :meth:`cumulative_counts` to drive the exact
    arithmetic coder.

    Attributes
    ----------
    grouping:
        Which tensor dimensions define a context.
    counts:
        Smoothed (context, symbol) counts, shape ``(num_contexts, ALPHABET_SIZE)``.
    shape:
        The (layers, tokens, channels) shape the model was fit on.  Only the
        dimensions participating in the grouping must match at scoring time.
    """

    grouping: Grouping
    counts: np.ndarray
    shape: tuple[int, int, int]
    smoothing: float = 0.1
    _log_probs: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ build
    @classmethod
    def fit(
        cls,
        symbol_tensors: list[np.ndarray] | np.ndarray,
        grouping: Grouping = "channel_layer",
        smoothing: float = 0.1,
    ) -> "SymbolProbabilityModel":
        """Fit a probability model from one or more symbol tensors.

        All tensors must share layer/channel dimensions; token counts may vary
        (token-grouped models require identical token counts).
        """
        if isinstance(symbol_tensors, np.ndarray):
            symbol_tensors = [symbol_tensors]
        if not symbol_tensors:
            raise ValueError("at least one symbol tensor is required")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")

        total_counts: np.ndarray | None = None
        shape = tuple(symbol_tensors[0].shape)
        for tensor in symbol_tensors:
            counts, _ = _symbol_counts(tensor, grouping)
            if total_counts is None:
                total_counts = counts
            else:
                if counts.shape != total_counts.shape:
                    raise ValueError("all symbol tensors must induce the same context set")
                total_counts = total_counts + counts
        assert total_counts is not None
        return cls(
            grouping=grouping,
            counts=total_counts + smoothing,
            shape=shape,  # type: ignore[arg-type]
            smoothing=smoothing,
        )

    # ------------------------------------------------------------------ props
    @property
    def num_contexts(self) -> int:
        return self.counts.shape[0]

    def probabilities(self) -> np.ndarray:
        """Normalized per-context probabilities."""
        return self.counts / self.counts.sum(axis=1, keepdims=True)

    def log2_probabilities(self) -> np.ndarray:
        if self._log_probs is None:
            self._log_probs = np.log2(self.probabilities())
        return self._log_probs

    # ----------------------------------------------------------------- scoring
    def cross_entropy_bits(self, symbols: np.ndarray) -> float:
        """Ideal total code length (bits) of ``symbols`` under this model.

        This is the length an arithmetic coder driven by this model attains up
        to a few bytes of termination overhead.
        """
        data_counts, num_ctx = _symbol_counts(symbols, self.grouping)
        if num_ctx != self.num_contexts:
            raise ValueError(
                f"symbol tensor induces {num_ctx} contexts but model has {self.num_contexts}"
            )
        return float(-(data_counts * self.log2_probabilities()).sum())

    def bits_per_element(self, symbols: np.ndarray) -> float:
        """Average ideal code length per symbol."""
        symbols = np.asarray(symbols)
        return self.cross_entropy_bits(symbols) / symbols.size

    def entropy_bits_per_symbol(self) -> float:
        """Average entropy (bits/symbol) of the fitted distributions.

        Contexts are weighted by their observed mass, matching the Figure 5
        "bits per element" measurement.
        """
        probs = self.probabilities()
        ctx_mass = self.counts.sum(axis=1)
        ctx_weights = ctx_mass / ctx_mass.sum()
        with np.errstate(divide="ignore", invalid="ignore"):
            per_ctx = -(probs * np.log2(np.where(probs > 0, probs, 1.0))).sum(axis=1)
        return float((ctx_weights * per_ctx).sum())

    # -------------------------------------------------------- arithmetic coding
    def cumulative_counts(self, quantize_total: int = 1 << 16) -> np.ndarray:
        """Integer cumulative frequency tables for the arithmetic coder.

        Returns an array of shape ``(num_contexts, ALPHABET_SIZE + 1)`` where
        row ``c`` is the cumulative frequency of symbols under context ``c``,
        scaled so every symbol has frequency >= 1 and the total is at most
        ``quantize_total``.
        """
        if quantize_total < 2 * ALPHABET_SIZE:
            raise ValueError("quantize_total too small for the alphabet")
        probs = self.probabilities()
        freqs = np.maximum(np.rint(probs * (quantize_total - ALPHABET_SIZE)).astype(np.int64), 0) + 1
        cum = np.zeros((self.num_contexts, ALPHABET_SIZE + 1), dtype=np.int64)
        np.cumsum(freqs, axis=1, out=cum[:, 1:])
        return cum

    def context_ids_for(self, shape: tuple[int, int, int]) -> np.ndarray:
        """Per-element context ids for a tensor of ``shape`` under this grouping."""
        ctx, num_ctx = _context_ids(shape, self.grouping)
        if num_ctx != self.num_contexts:
            raise ValueError(
                f"shape {shape} induces {num_ctx} contexts but model has {self.num_contexts}"
            )
        return ctx

"""The CacheGen KV cache encoder.

The encoder implements §5.2 of the paper: change-based (anchor/delta)
encoding, layer-wise quantization of the delta tensors, 8-bit vectorwise
quantization of the anchor tokens, and arithmetic coding driven by
per-(layer, channel) probability distributions profiled offline for the
serving model.

The encoder is *fit once per model* on a handful of sample KV caches
(:meth:`CacheGenEncoder.fit`), mirroring the paper's offline profiling, and
then encodes any KV cache (typically one context chunk at a time) at any of
the configured encoding levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .config import CacheGenConfig, EncodingLevel
from .delta import anchor_positions, compute_deltas
from .entropy_codec import EntropyCodec, EntropyEncodedPayload
from .kv_cache import KVCache
from .probability_model import SymbolProbabilityModel
from .quantization import QuantizedTensor, bin_quantize, layer_bin_sizes, vectorwise_quantize

__all__ = ["CacheGenEncoder", "EncodedKV", "EncodedTensorStream", "LevelCodecModel"]


@dataclass
class EncodedTensorStream:
    """Encoded representation of a single K or V tensor.

    Holds everything the decoder needs: the entropy-coded delta payload, the
    per-(layer, channel) dequantization scales, and (when delta encoding is
    on) the separately coded anchor payload and scales.
    """

    delta_payload: EntropyEncodedPayload
    delta_scale: np.ndarray
    delta_bins: np.ndarray
    anchor_payload: EntropyEncodedPayload | None
    anchor_scale: np.ndarray | None
    anchor_bits: int | None

    @property
    def payload_bits(self) -> float:
        bits = self.delta_payload.bits
        if self.anchor_payload is not None:
            bits += self.anchor_payload.bits
        return bits

    @property
    def metadata_bytes(self) -> int:
        """Side-information bytes: fp16 scales for deltas and anchors."""
        count = self.delta_scale.size
        if self.anchor_scale is not None:
            count += self.anchor_scale.size
        return 2 * count


@dataclass
class EncodedKV:
    """One KV cache (or chunk) encoded into CacheGen bitstreams."""

    model_name: str
    level: EncodingLevel
    num_tokens: int
    group_size: int
    k_stream: EncodedTensorStream
    v_stream: EncodedTensorStream
    sim_shape: tuple[int, int, int]
    scale_factor: float
    full_layers: int
    full_channels: int

    @property
    def payload_bits(self) -> float:
        return self.k_stream.payload_bits + self.v_stream.payload_bits

    @property
    def sim_metadata_bytes(self) -> int:
        return self.k_stream.metadata_bytes + self.v_stream.metadata_bytes

    @property
    def sim_compressed_bytes(self) -> float:
        """Compressed size of the simulation-scale tensors, in bytes."""
        return self.payload_bits / 8.0 + self.sim_metadata_bytes

    @property
    def compressed_bytes(self) -> float:
        """Compressed size extrapolated to the full model, in bytes."""
        return self.sim_compressed_bytes * self.scale_factor

    @property
    def sim_num_elements(self) -> int:
        layers, tokens, channels = self.sim_shape
        return 2 * layers * tokens * channels

    @property
    def bits_per_element(self) -> float:
        """Average compressed bits per KV element (metadata amortised)."""
        return self.sim_compressed_bytes * 8.0 / self.sim_num_elements


@dataclass
class LevelCodecModel:
    """Probability models fitted for one encoding level."""

    level: EncodingLevel
    delta_model: SymbolProbabilityModel
    anchor_model: SymbolProbabilityModel | None


class CacheGenEncoder:
    """Encodes KV caches into compact bitstream representations.

    Parameters
    ----------
    config:
        Codec configuration; the default reproduces the paper's settings.

    Usage
    -----
    >>> encoder = CacheGenEncoder()
    >>> encoder.fit([sample_kv_1, sample_kv_2])
    >>> encoded = encoder.encode(kv_chunk)          # default level
    >>> encoded_low = encoder.encode(kv_chunk, "low")
    """

    def __init__(self, config: CacheGenConfig | None = None) -> None:
        self.config = config or CacheGenConfig()
        self._models: dict[str, LevelCodecModel] = {}

    # -------------------------------------------------------------------- fit
    @property
    def is_fitted(self) -> bool:
        return bool(self._models)

    @property
    def level_models(self) -> Mapping[str, LevelCodecModel]:
        return dict(self._models)

    def fit(self, sample_caches: list[KVCache]) -> "CacheGenEncoder":
        """Profile per-(layer, channel) symbol distributions from sample caches.

        The paper profiles one distribution per channel-layer combination of
        the delta tensors, plus one for the anchor tensors, per LLM, and then
        reuses them for every KV cache that model produces.
        """
        if not sample_caches:
            raise ValueError("at least one sample KV cache is required to fit the encoder")
        cfg = self.config
        grouping = cfg.probability_grouping
        for level in cfg.levels:
            delta_symbols: list[np.ndarray] = []
            anchor_symbols: list[np.ndarray] = []
            for kv in sample_caches:
                for tensor in (kv.k, kv.v):
                    delta_q, anchor_q = self._quantize_tensor(tensor, level)
                    delta_symbols.append(delta_q.symbols)
                    if anchor_q is not None:
                        anchor_symbols.append(anchor_q.symbols)
            delta_model = SymbolProbabilityModel.fit(delta_symbols, grouping=grouping)
            anchor_model = (
                SymbolProbabilityModel.fit(anchor_symbols, grouping=grouping)
                if anchor_symbols
                else None
            )
            self._models[level.name] = LevelCodecModel(
                level=level, delta_model=delta_model, anchor_model=anchor_model
            )
        return self

    # ----------------------------------------------------------------- encode
    def encode(self, kv: KVCache, level: EncodingLevel | str | int | None = None) -> EncodedKV:
        """Encode a KV cache (or chunk) at the given encoding level."""
        self._require_fitted()
        cfg = self.config
        if level is None:
            level = cfg.default_level
        level_obj = cfg.levels[cfg.level_index(level)]
        models = self._models[level_obj.name]

        streams = []
        for tensor in (kv.k, kv.v):
            delta_q, anchor_q = self._quantize_tensor(tensor, level_obj)
            streams.append(self._encode_stream(delta_q, anchor_q, models, level_obj))
        k_stream, v_stream = streams
        return EncodedKV(
            model_name=kv.model_name,
            level=level_obj,
            num_tokens=kv.num_tokens,
            group_size=cfg.group_size,
            k_stream=k_stream,
            v_stream=v_stream,
            sim_shape=kv.shape,
            scale_factor=kv.scale_factor,
            full_layers=kv.full_layers,
            full_channels=kv.full_channels,
        )

    def encode_all_levels(self, kv: KVCache) -> dict[str, EncodedKV]:
        """Encode a KV cache at every configured level (offline preparation)."""
        return {level.name: self.encode(kv, level) for level in self.config.levels}

    # ------------------------------------------------------------ inner pieces
    def _quantize_tensor(
        self, tensor: np.ndarray, level: EncodingLevel
    ) -> tuple[QuantizedTensor, QuantizedTensor | None]:
        """Quantize one tensor into (delta symbols, anchor symbols)."""
        cfg = self.config
        num_layers = tensor.shape[0]
        bins = self._effective_bins(num_layers, level)

        if cfg.use_delta:
            decomposition = compute_deltas(tensor, cfg.group_size)
            positions = anchor_positions(decomposition.num_tokens, cfg.group_size)
            mask = np.ones(decomposition.num_tokens, dtype=bool)
            mask[positions] = False
            deltas = decomposition.deltas[:, mask, :]
            delta_q = bin_quantize(deltas, bins)
            anchor_q = vectorwise_quantize(decomposition.anchors, level.anchor_bits)
            return delta_q, anchor_q
        delta_q = bin_quantize(tensor, bins)
        return delta_q, None

    def _effective_bins(self, num_layers: int, level: EncodingLevel) -> np.ndarray:
        cfg = self.config
        if cfg.use_layerwise_quant:
            return layer_bin_sizes(num_layers, level.delta_bins)
        mean_bin = float(np.mean(level.delta_bins))
        return np.full(num_layers, mean_bin)

    def _encode_stream(
        self,
        delta_q: QuantizedTensor,
        anchor_q: QuantizedTensor | None,
        models: LevelCodecModel,
        level: EncodingLevel,
    ) -> EncodedTensorStream:
        cfg = self.config
        delta_payload = self._entropy_encode(delta_q, models.delta_model, bits_fallback=None)
        anchor_payload = None
        anchor_scale = None
        anchor_bits = None
        if anchor_q is not None:
            anchor_payload = self._entropy_encode(
                anchor_q, models.anchor_model, bits_fallback=level.anchor_bits
            )
            anchor_scale = anchor_q.scale
            anchor_bits = level.anchor_bits
        return EncodedTensorStream(
            delta_payload=delta_payload,
            delta_scale=delta_q.scale,
            delta_bins=np.asarray(delta_q.bin_sizes),
            anchor_payload=anchor_payload,
            anchor_scale=anchor_scale,
            anchor_bits=anchor_bits,
        )

    def _entropy_encode(
        self,
        quantized: QuantizedTensor,
        model: SymbolProbabilityModel | None,
        bits_fallback: float | None,
    ) -> EntropyEncodedPayload:
        """Entropy-code a quantized tensor, honouring the AC ablation switch."""
        cfg = self.config
        symbols = quantized.symbols
        if cfg.use_arithmetic_coding and model is not None:
            codec = EntropyCodec(model, exact=cfg.exact_entropy_coding)
            return codec.encode(symbols)
        # Quantization-only: store fixed-width symbols (no entropy coding).
        if bits_fallback is None:
            max_symbol = max(int(np.abs(symbols).max()), 1)
            bits_fallback = float(np.ceil(np.log2(2 * max_symbol + 1)))
        return EntropyEncodedPayload(
            bits=float(bits_fallback) * symbols.size,
            shape=tuple(symbols.shape),
            exact=False,
            symbols=symbols.copy(),
        )

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(
                "CacheGenEncoder is not fitted; call fit() with sample KV caches first"
            )

    # ----------------------------------------------------------------- helpers
    def model_for_level(self, level: EncodingLevel | str | int) -> LevelCodecModel:
        """Return the probability models fitted for a level."""
        self._require_fitted()
        level_obj = self.config.levels[self.config.level_index(level)]
        return self._models[level_obj.name]

"""Quantization primitives for KV tensors.

CacheGen uses two flavours of quantization (§5.2):

* **Vectorwise (bit-width) quantization** for anchor tokens and for the
  uniform-quantization baseline: each (layer, channel) vector is scaled by its
  max absolute value and quantized to a fixed number of bits.
* **Bin-size quantization** for delta tensors: deltas are normalised by a
  per-(layer, channel) standard deviation and rounded to a quantization bin
  whose size depends on the *layer group* — earlier layers get smaller bins
  (less loss) per Insight 2.  The paper's default bin sizes are 0.5 / 1.0 /
  1.5 for the first / middle / last third of layers (§C.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "QuantizedTensor",
    "vectorwise_quantize",
    "vectorwise_dequantize",
    "bin_quantize",
    "bin_dequantize",
    "layer_bin_sizes",
    "SYMBOL_CLIP",
]

#: Quantized symbols are clipped to this magnitude so the entropy-coding
#: alphabet stays bounded (9-bit signed alphabet).
SYMBOL_CLIP = 255


@dataclass
class QuantizedTensor:
    """A quantized (layers, tokens, channels) tensor plus its dequantization data.

    Attributes
    ----------
    symbols:
        Integer symbols, same shape as the original tensor.
    scale:
        Per-(layer, channel) scale, shape ``(layers, channels)``.  The
        dequantized value is ``symbol * scale`` (bin quantization folds the
        bin size into the scale).
    mode:
        Either ``"vectorwise"`` or ``"bin"``; informational.
    num_bits:
        Bit width used for vectorwise quantization, ``None`` for bin mode.
    bin_sizes:
        Per-layer bin sizes used for bin quantization, ``None`` for vectorwise.
    """

    symbols: np.ndarray
    scale: np.ndarray
    mode: str
    num_bits: int | None = None
    bin_sizes: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.symbols.shape

    def dequantize(self) -> np.ndarray:
        """Recover the (lossy) floating-point tensor."""
        return self.symbols.astype(np.float32) * self.scale[:, None, :].astype(np.float32)

    def metadata_bytes(self) -> int:
        """Bytes of side information (scales stored as fp16)."""
        return 2 * self.scale.size


def _validate_tensor(tensor: np.ndarray) -> np.ndarray:
    tensor = np.asarray(tensor, dtype=np.float32)
    if tensor.ndim != 3:
        raise ValueError("tensor must be 3-D (layers, tokens, channels)")
    return tensor


def vectorwise_quantize(tensor: np.ndarray, num_bits: int) -> QuantizedTensor:
    """Symmetric per-(layer, channel) quantization to ``num_bits`` bits.

    The scale of each (layer, channel) vector is its max absolute value over
    tokens divided by the largest representable symbol.  This is the
    "vectorwise" scheme of LLM.int8() referenced by the paper, applied along
    the token dimension.
    """
    if not 2 <= num_bits <= 16:
        raise ValueError("num_bits must be between 2 and 16")
    tensor = _validate_tensor(tensor)
    max_symbol = float(2 ** (num_bits - 1) - 1)
    max_abs = np.abs(tensor).max(axis=1)  # (layers, channels)
    scale = np.where(max_abs > 0, max_abs / max_symbol, 1.0).astype(np.float32)
    symbols = np.rint(tensor / scale[:, None, :]).astype(np.int32)
    symbols = np.clip(symbols, -int(max_symbol), int(max_symbol))
    return QuantizedTensor(symbols=symbols, scale=scale, mode="vectorwise", num_bits=num_bits)


def vectorwise_dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Inverse of :func:`vectorwise_quantize` (lossy)."""
    return quantized.dequantize()


def layer_bin_sizes(num_layers: int, group_bins: Sequence[float] = (0.5, 1.0, 1.5)) -> np.ndarray:
    """Expand per-layer-group bin sizes into a per-layer array.

    The paper splits the layers into three equal groups (earliest / middle /
    last third) and assigns each group one bin size, growing with depth.
    ``group_bins`` may have any length >= 1; layers are split into
    ``len(group_bins)`` equal groups.
    """
    if num_layers <= 0:
        raise ValueError("num_layers must be positive")
    group_bins = np.asarray(list(group_bins), dtype=np.float64)
    if len(group_bins) == 0 or np.any(group_bins <= 0):
        raise ValueError("group_bins must be a non-empty sequence of positive bin sizes")
    groups = np.minimum(
        (np.arange(num_layers) * len(group_bins)) // num_layers, len(group_bins) - 1
    )
    return group_bins[groups]


def bin_quantize(
    tensor: np.ndarray,
    bin_sizes: np.ndarray | Sequence[float],
    reference: np.ndarray | None = None,
) -> QuantizedTensor:
    """Quantize a (delta) tensor with per-layer bin sizes.

    Values are first normalised by a *per-layer* standard deviation (computed
    from ``reference`` if given, else from ``tensor`` itself — the paper
    normalises per layer because "the values in the different layers have
    different ranges"), then rounded to multiples of the layer's bin size.
    Normalisation is deliberately **not** per channel: channels differ widely
    in magnitude, and it is exactly that heterogeneity that the per-(layer,
    channel) arithmetic-coding distributions exploit to shrink the bitstream.
    """
    tensor = _validate_tensor(tensor)
    num_layers = tensor.shape[0]
    bin_sizes = np.asarray(bin_sizes, dtype=np.float64)
    if bin_sizes.ndim == 0:
        bin_sizes = np.full(num_layers, float(bin_sizes))
    if bin_sizes.shape != (num_layers,):
        raise ValueError(f"bin_sizes must have shape ({num_layers},), got {bin_sizes.shape}")
    if np.any(bin_sizes <= 0):
        raise ValueError("bin sizes must be positive")

    basis = _validate_tensor(reference) if reference is not None else tensor
    std = basis.std(axis=(1, 2), keepdims=False)[:, None]  # (layers, 1)
    std = np.where(std > 1e-8, std, 1.0)
    scale = (std * bin_sizes[:, None]).astype(np.float32)

    symbols = np.rint(tensor / scale[:, None, :]).astype(np.int32)
    symbols = np.clip(symbols, -SYMBOL_CLIP, SYMBOL_CLIP)
    return QuantizedTensor(
        symbols=symbols,
        scale=scale,
        mode="bin",
        bin_sizes=bin_sizes.astype(np.float64),
    )


def bin_dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Inverse of :func:`bin_quantize` (lossy)."""
    return quantized.dequantize()

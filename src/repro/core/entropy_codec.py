"""Entropy-coding backend bridging the probability model and the bitstream.

Two backends are provided (see ``DESIGN.md``):

* **Exact** — drive the integer arithmetic coder with the probability model's
  cumulative tables and produce/parse real bitstreams.  Used by the tests and
  by anything that needs actual bytes.
* **Estimated** — compute the ideal code length (the model cross-entropy) of
  the symbol stream, which is what the arithmetic coder achieves up to a few
  bytes of termination overhead.  Used by the repo-scale experiments, where
  encoding hundreds of millions of symbols through a pure-Python per-symbol
  loop would be pointless.

Both backends consume the same :class:`~repro.core.probability_model.SymbolProbabilityModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arithmetic_coder import ArithmeticDecoder, ArithmeticEncoder
from .probability_model import SYMBOL_OFFSET, SymbolProbabilityModel

__all__ = ["EntropyCodec", "EntropyEncodedPayload"]


@dataclass
class EntropyEncodedPayload:
    """An entropy-coded symbol tensor.

    Attributes
    ----------
    bits:
        Size of the payload in bits.  For exact encoding this is the length of
        ``data``; for estimated encoding it is the model cross-entropy.
    shape:
        Shape of the symbol tensor, needed to decode.
    exact:
        Whether ``data`` holds a real arithmetic-coded bitstream.
    data:
        The bitstream (exact mode) or ``None`` (estimated mode).
    symbols:
        In estimated mode the symbols are carried through unchanged so the
        decode path remains lossless; ``None`` in exact mode.
    """

    bits: float
    shape: tuple[int, int, int]
    exact: bool
    data: bytes | None = None
    symbols: np.ndarray | None = None

    @property
    def num_bytes(self) -> float:
        return self.bits / 8.0


class EntropyCodec:
    """Encode/decode quantized symbol tensors with a probability model.

    Parameters
    ----------
    model:
        The fitted symbol probability model (typically channel/layer grouped).
    exact:
        If True, run the real arithmetic coder; otherwise carry symbols and
        report the ideal code length.
    """

    def __init__(self, model: SymbolProbabilityModel, exact: bool = False) -> None:
        self.model = model
        self.exact = exact
        self._cum_cache: np.ndarray | None = None

    def _cumulative(self) -> np.ndarray:
        if self._cum_cache is None:
            self._cum_cache = self.model.cumulative_counts()
        return self._cum_cache

    # ----------------------------------------------------------------- encode
    def encode(self, symbols: np.ndarray) -> EntropyEncodedPayload:
        """Entropy-code a (layers, tokens, channels) symbol tensor."""
        symbols = np.asarray(symbols)
        if symbols.ndim != 3:
            raise ValueError("symbols must be 3-D (layers, tokens, channels)")
        shape = tuple(symbols.shape)
        if self.exact:
            contexts = self.model.context_ids_for(shape).ravel()
            alphabet_symbols = symbols.ravel().astype(np.int64) + SYMBOL_OFFSET
            data = ArithmeticEncoder(self._cumulative()).encode(alphabet_symbols, contexts)
            return EntropyEncodedPayload(
                bits=float(len(data) * 8), shape=shape, exact=True, data=data
            )
        bits = self.model.cross_entropy_bits(symbols)
        # Symbols are clipped to +/-255, so int16 carries them losslessly at
        # half the memory of int32 — relevant when many chunk encodings at
        # several levels are kept alive by the streamer.
        return EntropyEncodedPayload(
            bits=bits, shape=shape, exact=False, symbols=symbols.astype(np.int16)
        )

    # ----------------------------------------------------------------- decode
    def decode(self, payload: EntropyEncodedPayload) -> np.ndarray:
        """Recover the symbol tensor from an encoded payload (lossless)."""
        if payload.exact:
            if payload.data is None:
                raise ValueError("exact payload is missing its bitstream")
            contexts = self.model.context_ids_for(payload.shape).ravel()
            decoded = ArithmeticDecoder(self._cumulative()).decode(
                payload.data, int(np.prod(payload.shape)), contexts
            )
            return (decoded - SYMBOL_OFFSET).reshape(payload.shape).astype(np.int32)
        if payload.symbols is None:
            raise ValueError("estimated payload is missing its symbols")
        return payload.symbols.astype(np.int32)

"""The CacheGen KV cache decoder.

Decoding reverses the encoder's pipeline: entropy-decode the delta and anchor
symbol streams, dequantize them, and reconstruct the KV tensors by adding each
token's delta back onto its group's anchor token.  The result is a
:class:`~repro.core.kv_cache.KVCache` that differs from the original only by
the quantization error of the chosen encoding level.

In the paper the decoder runs as CUDA kernels pipelined with the network
transfer; the corresponding latency accounting lives in
:class:`repro.llm.ComputeModel` and :mod:`repro.streaming.streamer`.
"""

from __future__ import annotations

import numpy as np

from .config import CacheGenConfig
from .delta import DeltaDecomposition, anchor_positions, reconstruct_from_deltas
from .encoder import CacheGenEncoder, EncodedKV, EncodedTensorStream, LevelCodecModel
from .entropy_codec import EntropyCodec
from .kv_cache import KVCache

__all__ = ["CacheGenDecoder"]


class CacheGenDecoder:
    """Decodes CacheGen bitstreams back into KV caches.

    Parameters
    ----------
    encoder:
        The fitted encoder whose probability models produced the bitstreams.
        The decoder shares the encoder's configuration and models, exactly as
        the paper's receiver shares the offline-profiled distributions.

    Example
    -------
    >>> encoder = CacheGenEncoder(CacheGenConfig())
    >>> encoder.fit([reference_kv])  # doctest: +SKIP
    >>> decoder = CacheGenDecoder(encoder)
    >>> kv = decoder.decode(encoder.encode(reference_kv, level="high"))  # doctest: +SKIP
    """

    def __init__(self, encoder: CacheGenEncoder) -> None:
        self._encoder = encoder

    @property
    def config(self) -> CacheGenConfig:
        return self._encoder.config

    # ----------------------------------------------------------------- decode
    def decode(self, encoded: EncodedKV) -> KVCache:
        """Reconstruct a KV cache from an encoded chunk."""
        models = self._encoder.model_for_level(encoded.level)
        k = self._decode_stream(encoded.k_stream, encoded, models)
        v = self._decode_stream(encoded.v_stream, encoded, models)
        return KVCache(
            k=k,
            v=v,
            model_name=encoded.model_name,
            full_layers=encoded.full_layers,
            full_channels=encoded.full_channels,
        )

    def decode_many(self, encoded_chunks: list[EncodedKV]) -> KVCache:
        """Decode several chunks and concatenate them along the token dimension.

        Chunks sent at different encoding levels decode independently and are
        concatenated to reconstruct the full context's KV cache (§5.3).
        """
        if not encoded_chunks:
            raise ValueError("no encoded chunks to decode")
        return KVCache.concat([self.decode(chunk) for chunk in encoded_chunks])

    # ------------------------------------------------------------ inner pieces
    def _decode_stream(
        self,
        stream: EncodedTensorStream,
        encoded: EncodedKV,
        models: LevelCodecModel,
    ) -> np.ndarray:
        cfg = self.config
        delta_symbols = self._entropy_decode(stream, models, anchors=False)
        delta_values = delta_symbols.astype(np.float32) * stream.delta_scale[:, None, :]

        if stream.anchor_payload is None:
            return delta_values

        anchor_symbols = self._entropy_decode(stream, models, anchors=True)
        anchor_scale = stream.anchor_scale
        assert anchor_scale is not None
        anchor_values = anchor_symbols.astype(np.float32) * anchor_scale[:, None, :]

        num_tokens = encoded.num_tokens
        positions = anchor_positions(num_tokens, encoded.group_size)
        mask = np.ones(num_tokens, dtype=bool)
        mask[positions] = False

        layers, _, channels = delta_values.shape
        full_deltas = np.zeros((layers, num_tokens, channels), dtype=np.float32)
        full_deltas[:, mask, :] = delta_values

        decomposition = DeltaDecomposition(
            anchors=anchor_values,
            deltas=full_deltas,
            group_size=encoded.group_size,
            num_tokens=num_tokens,
        )
        return reconstruct_from_deltas(decomposition)

    def _entropy_decode(
        self,
        stream: EncodedTensorStream,
        models: LevelCodecModel,
        anchors: bool,
    ) -> np.ndarray:
        payload = stream.anchor_payload if anchors else stream.delta_payload
        model = models.anchor_model if anchors else models.delta_model
        assert payload is not None
        if payload.symbols is not None and not payload.exact:
            # Estimated-size payloads carry the symbols verbatim (lossless).
            return payload.symbols.astype(np.int32)
        if model is None:
            raise ValueError("exact payload requires a fitted probability model to decode")
        codec = EntropyCodec(model, exact=True)
        return codec.decode(payload)

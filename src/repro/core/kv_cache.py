"""KV cache data model.

The KV cache produced by a transformer prefill is, per layer, a key tensor and
a value tensor of shape ``(num_tokens, num_channels)`` where ``num_channels``
is ``num_kv_heads * head_dim``.  CacheGen treats the whole cache as a pair of
three-dimensional tensors indexed by ``(layer, token, channel)``.

This module defines :class:`KVCache`, the in-memory representation used
throughout the reproduction, together with the byte-accounting helpers that
translate between the *simulation-scale* tensors we actually materialise and
the *full-model* sizes the paper reports (see ``DESIGN.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["KVCache"]

#: Bytes per element of an uncompressed KV cache.  The paper (and common
#: serving stacks) keep KV caches in fp16, i.e. two bytes per element.
FP16_BYTES_PER_ELEMENT = 2


@dataclass
class KVCache:
    """A KV cache as a pair of ``(layers, tokens, channels)`` tensors.

    Parameters
    ----------
    k, v:
        Key and value tensors.  Both must share the same shape
        ``(num_layers, num_tokens, num_channels)`` and be floating point.
    model_name:
        Optional name of the model that produced this cache.  Carried along so
        that codecs can look up full-model dimensions for size accounting.
    full_layers, full_channels:
        Dimensions of the *full* model.  When the cache was generated at
        simulation scale (fewer layers/channels than the real model), these
        record the real dimensions so compressed sizes can be extrapolated.
        They default to the simulated dimensions.

    Example
    -------
    >>> kv = SyntheticLLM("mistral-7b").calculate_kv("ctx", num_tokens=2_000)
    >>> kv.shape  # (layers, tokens, channels)  # doctest: +SKIP
    >>> [chunk.num_tokens for chunk in kv.split_tokens(1_500)]  # doctest: +SKIP
    [1500, 500]
    """

    k: np.ndarray
    v: np.ndarray
    model_name: str = "unknown"
    full_layers: int = field(default=0)
    full_channels: int = field(default=0)

    def __post_init__(self) -> None:
        self.k = np.asarray(self.k, dtype=np.float32)
        self.v = np.asarray(self.v, dtype=np.float32)
        if self.k.shape != self.v.shape:
            raise ValueError(
                f"K and V must have identical shapes, got {self.k.shape} vs {self.v.shape}"
            )
        if self.k.ndim != 3:
            raise ValueError(f"KV tensors must be 3-D (layers, tokens, channels), got {self.k.ndim}-D")
        if self.full_layers <= 0:
            self.full_layers = self.num_layers
        if self.full_channels <= 0:
            self.full_channels = self.num_channels

    # ------------------------------------------------------------------ shape
    @property
    def num_layers(self) -> int:
        """Number of (simulated) transformer layers in the cache."""
        return self.k.shape[0]

    @property
    def num_tokens(self) -> int:
        """Number of context tokens the cache covers."""
        return self.k.shape[1]

    @property
    def num_channels(self) -> int:
        """Number of (simulated) channels, i.e. ``kv_heads * head_dim``."""
        return self.k.shape[2]

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.k.shape

    # ------------------------------------------------------------------ sizes
    @property
    def num_elements(self) -> int:
        """Total number of floating point elements (K and V together)."""
        return 2 * self.k.size

    @property
    def full_num_elements(self) -> int:
        """Element count of the equivalent full-model KV cache."""
        return 2 * self.full_layers * self.num_tokens * self.full_channels

    @property
    def nbytes(self) -> int:
        """Uncompressed fp16 size of the *simulated* cache in bytes."""
        return self.num_elements * FP16_BYTES_PER_ELEMENT

    @property
    def full_nbytes(self) -> int:
        """Uncompressed fp16 size of the *full-model* cache in bytes."""
        return self.full_num_elements * FP16_BYTES_PER_ELEMENT

    @property
    def scale_factor(self) -> float:
        """Ratio of full-model elements to simulated elements."""
        return self.full_num_elements / self.num_elements

    # -------------------------------------------------------------- operations
    def slice_tokens(self, start: int, stop: int) -> "KVCache":
        """Return a view-like cache covering tokens ``[start, stop)``."""
        if not 0 <= start <= stop <= self.num_tokens:
            raise IndexError(
                f"token slice [{start}, {stop}) out of range for {self.num_tokens} tokens"
            )
        return KVCache(
            k=self.k[:, start:stop, :],
            v=self.v[:, start:stop, :],
            model_name=self.model_name,
            full_layers=self.full_layers,
            full_channels=self.full_channels,
        )

    def split_tokens(self, chunk_tokens: int) -> list["KVCache"]:
        """Split along the token dimension into chunks of ``chunk_tokens``.

        The final chunk may be shorter.  ``chunk_tokens`` must be positive.
        """
        if chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        chunks = []
        for start in range(0, self.num_tokens, chunk_tokens):
            chunks.append(self.slice_tokens(start, min(start + chunk_tokens, self.num_tokens)))
        return chunks

    def iter_token_groups(self, group_size: int) -> Iterator["KVCache"]:
        """Iterate over token groups of ``group_size`` (anchor-group granularity)."""
        yield from self.split_tokens(group_size)

    @staticmethod
    def concat(caches: Sequence["KVCache"]) -> "KVCache":
        """Concatenate caches along the token dimension.

        All caches must agree on layer/channel counts and metadata.
        """
        if not caches:
            raise ValueError("cannot concatenate an empty sequence of caches")
        first = caches[0]
        for other in caches[1:]:
            if other.num_layers != first.num_layers or other.num_channels != first.num_channels:
                raise ValueError("all caches must share layer and channel dimensions")
        return KVCache(
            k=np.concatenate([c.k for c in caches], axis=1),
            v=np.concatenate([c.v for c in caches], axis=1),
            model_name=first.model_name,
            full_layers=first.full_layers,
            full_channels=first.full_channels,
        )

    def copy(self) -> "KVCache":
        """Deep copy of the cache."""
        return KVCache(
            k=self.k.copy(),
            v=self.v.copy(),
            model_name=self.model_name,
            full_layers=self.full_layers,
            full_channels=self.full_channels,
        )

    # ------------------------------------------------------------------ errors
    def mse_per_layer(self, other: "KVCache") -> np.ndarray:
        """Mean squared error against ``other`` for each layer (K and V pooled)."""
        self._check_compatible(other)
        diff_k = (self.k - other.k) ** 2
        diff_v = (self.v - other.v) ** 2
        return (diff_k.mean(axis=(1, 2)) + diff_v.mean(axis=(1, 2))) / 2.0

    def variance_per_layer(self) -> np.ndarray:
        """Per-layer variance of the cache values (K and V pooled)."""
        return (self.k.var(axis=(1, 2)) + self.v.var(axis=(1, 2))) / 2.0

    def normalized_distortion_per_layer(self, other: "KVCache") -> np.ndarray:
        """Per-layer MSE normalised by per-layer variance (dimensionless)."""
        var = np.maximum(self.variance_per_layer(), 1e-12)
        return self.mse_per_layer(other) / var

    def _check_compatible(self, other: "KVCache") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    # ------------------------------------------------------------------ dunder
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KVCache(model={self.model_name!r}, layers={self.num_layers}, "
            f"tokens={self.num_tokens}, channels={self.num_channels}, "
            f"full_size={self.full_nbytes / 1e6:.1f} MB)"
        )

"""Change-based (delta) encoding of KV tensors.

CacheGen exploits token-wise locality (Insight 1) by splitting the context
into groups of consecutive tokens.  The first token of each group is the
*anchor token*; its KV values are encoded independently, while every other
token in the group is encoded as the *delta* from the anchor (Figure 6).
Referencing the same anchor for the whole group (rather than chaining
consecutive deltas) lets encoding and decoding run in parallel per token.

This module implements the pure tensor transformation; quantization and
entropy coding of the anchors/deltas live in their own modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeltaDecomposition", "anchor_positions", "compute_deltas", "reconstruct_from_deltas"]

DEFAULT_GROUP_SIZE = 10


def anchor_positions(num_tokens: int, group_size: int = DEFAULT_GROUP_SIZE) -> np.ndarray:
    """Token indices of the anchor tokens (the first token of every group)."""
    if num_tokens <= 0:
        raise ValueError("num_tokens must be positive")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    return np.arange(0, num_tokens, group_size)


@dataclass
class DeltaDecomposition:
    """Anchor values and per-token deltas of one (layers, tokens, channels) tensor.

    Attributes
    ----------
    anchors:
        Tensor of shape ``(layers, num_groups, channels)`` holding the anchor
        token values.
    deltas:
        Tensor of shape ``(layers, num_tokens, channels)`` where position ``t``
        holds ``x[t] - x[anchor(t)]``.  Anchor positions hold zeros.
    group_size:
        Number of tokens per anchor group.
    num_tokens:
        Original number of tokens (needed to reconstruct exactly).
    """

    anchors: np.ndarray
    deltas: np.ndarray
    group_size: int
    num_tokens: int

    @property
    def num_groups(self) -> int:
        return self.anchors.shape[1]


def compute_deltas(tensor: np.ndarray, group_size: int = DEFAULT_GROUP_SIZE) -> DeltaDecomposition:
    """Decompose a ``(layers, tokens, channels)`` tensor into anchors and deltas.

    Parameters
    ----------
    tensor:
        Input K or V tensor.
    group_size:
        Number of consecutive tokens sharing one anchor (the paper uses 10).
    """
    tensor = np.asarray(tensor)
    if tensor.ndim != 3:
        raise ValueError("tensor must be 3-D (layers, tokens, channels)")
    num_tokens = tensor.shape[1]
    positions = anchor_positions(num_tokens, group_size)

    anchors = tensor[:, positions, :].copy()
    # Broadcast each anchor over its group and subtract.
    group_index = np.minimum(np.arange(num_tokens) // group_size, len(positions) - 1)
    deltas = tensor - anchors[:, group_index, :]
    return DeltaDecomposition(
        anchors=anchors,
        deltas=deltas,
        group_size=group_size,
        num_tokens=num_tokens,
    )


def reconstruct_from_deltas(decomposition: DeltaDecomposition) -> np.ndarray:
    """Reconstruct the original tensor from (possibly lossy) anchors and deltas."""
    anchors = np.asarray(decomposition.anchors)
    deltas = np.asarray(decomposition.deltas)
    group_size = decomposition.group_size
    num_tokens = decomposition.num_tokens
    if deltas.shape[1] != num_tokens:
        raise ValueError("delta tensor token dimension does not match num_tokens")

    positions = anchor_positions(num_tokens, group_size)
    if anchors.shape[1] != len(positions):
        raise ValueError("anchor tensor group dimension does not match num_tokens/group_size")

    group_index = np.minimum(np.arange(num_tokens) // group_size, len(positions) - 1)
    reconstructed = anchors[:, group_index, :] + deltas
    # Anchor positions are reproduced exactly from the anchors themselves.
    reconstructed[:, positions, :] = anchors
    return reconstructed


def consecutive_delta_variance_ratio(tensor: np.ndarray) -> float:
    """Ratio of original-value variance to consecutive-token delta variance.

    This is the Insight 1 / Figure 3 measurement: the paper reports deltas
    between every pair of consecutive tokens to have 2.4-2.9x lower variance
    than the original values for Llama-7B/13B on LongChat.
    """
    tensor = np.asarray(tensor)
    if tensor.ndim != 3:
        raise ValueError("tensor must be 3-D (layers, tokens, channels)")
    if tensor.shape[1] < 2:
        raise ValueError("need at least two tokens to compute consecutive deltas")
    deltas = np.diff(tensor, axis=1)
    original_var = float(np.var(tensor))
    delta_var = float(np.var(deltas))
    if delta_var <= 0:
        return float("inf")
    return original_var / delta_var


def delta_variance_ratio(tensor: np.ndarray, group_size: int = DEFAULT_GROUP_SIZE) -> float:
    """Ratio of original-value variance to anchor-group delta variance.

    This measures the locality the codec actually exploits: deltas are taken
    against the group's anchor token (up to ``group_size - 1`` positions
    away), so the ratio is somewhat smaller than the consecutive-token ratio
    of Figure 3 but must remain well above 1 for change-based encoding to pay
    off.
    """
    decomposition = compute_deltas(tensor, group_size)
    positions = anchor_positions(decomposition.num_tokens, group_size)
    mask = np.ones(decomposition.num_tokens, dtype=bool)
    mask[positions] = False
    deltas = decomposition.deltas[:, mask, :]
    original_var = float(np.var(tensor))
    delta_var = float(np.var(deltas))
    if delta_var <= 0:
        return float("inf")
    return original_var / delta_var

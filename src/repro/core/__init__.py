"""CacheGen's core contribution: the KV cache codec.

This subpackage contains the KV cache data model and the encoder/decoder
pipeline of §5.2: change-based (anchor/delta) encoding, layer-wise
quantization, per-(layer, channel) probability models and arithmetic coding.
"""

from .arithmetic_coder import ArithmeticDecoder, ArithmeticEncoder, decode_symbols, encode_symbols
from .config import DEFAULT_LEVELS, CacheGenConfig, EncodingLevel
from .decoder import CacheGenDecoder
from .delta import (
    DeltaDecomposition,
    anchor_positions,
    compute_deltas,
    consecutive_delta_variance_ratio,
    delta_variance_ratio,
    reconstruct_from_deltas,
)
from .encoder import CacheGenEncoder, EncodedKV, EncodedTensorStream, LevelCodecModel
from .entropy_codec import EntropyCodec, EntropyEncodedPayload
from .kv_cache import KVCache
from .probability_model import ALPHABET_SIZE, SYMBOL_OFFSET, SymbolProbabilityModel
from .quantization import (
    SYMBOL_CLIP,
    QuantizedTensor,
    bin_dequantize,
    bin_quantize,
    layer_bin_sizes,
    vectorwise_dequantize,
    vectorwise_quantize,
)

__all__ = [
    "ALPHABET_SIZE",
    "ArithmeticDecoder",
    "ArithmeticEncoder",
    "CacheGenConfig",
    "CacheGenDecoder",
    "CacheGenEncoder",
    "DEFAULT_LEVELS",
    "DeltaDecomposition",
    "EncodedKV",
    "EncodedTensorStream",
    "EncodingLevel",
    "EntropyCodec",
    "EntropyEncodedPayload",
    "KVCache",
    "LevelCodecModel",
    "QuantizedTensor",
    "SYMBOL_CLIP",
    "SYMBOL_OFFSET",
    "SymbolProbabilityModel",
    "anchor_positions",
    "bin_dequantize",
    "bin_quantize",
    "compute_deltas",
    "decode_symbols",
    "encode_symbols",
    "layer_bin_sizes",
    "reconstruct_from_deltas",
    "vectorwise_dequantize",
    "vectorwise_quantize",
]

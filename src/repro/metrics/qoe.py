"""Quality-of-experience (QoE) model for the user study of Figure 16.

The paper runs an IRB-approved MTurk study where users rate the same response
delivered with different TTFTs on a 1-5 mean-opinion-score (MOS) scale, and
finds that CacheGen's shorter TTFT yields consistently higher MOS.  We cannot
run a user study, so the reproduction uses a monotone TTFT-to-MOS mapping in
line with the interactivity literature the paper cites: satisfaction is flat
for sub-second responses and decays roughly logarithmically as the wait grows,
and is further scaled by the response's generation quality.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mean_opinion_score"]

#: MOS scale bounds.
MOS_MIN = 1.0
MOS_MAX = 5.0


def mean_opinion_score(
    ttft_s: float,
    relative_quality: float = 1.0,
    tolerance_s: float = 0.6,
    sensitivity: float = 1.1,
) -> float:
    """Mean opinion score (1-5) for a response with a given TTFT and quality.

    Parameters
    ----------
    ttft_s:
        Time-to-first-token experienced by the user.
    relative_quality:
        Generation quality relative to a lossless cache (1.0 = identical).
    tolerance_s:
        Wait below which users barely notice the delay.
    sensitivity:
        MOS points lost per doubling of the wait beyond the tolerance.
    """
    if ttft_s < 0:
        raise ValueError("ttft_s must be non-negative")
    if not 0.0 <= relative_quality <= 1.0:
        raise ValueError("relative_quality must be in [0, 1]")
    if ttft_s <= tolerance_s:
        delay_score = MOS_MAX
    else:
        delay_score = MOS_MAX - sensitivity * np.log2(ttft_s / tolerance_s)
    score = delay_score - 2.5 * (1.0 - relative_quality)
    return float(np.clip(score, MOS_MIN, MOS_MAX))

"""Quality, system, entropy, QoE and cluster metrics used by the harness."""

from .cluster import (
    EMPTY_LATENCY_SUMMARY,
    LatencySummary,
    NodeSummary,
    hit_ratio,
    slo_attainment,
    summarize_latencies,
)
from .entropy import empirical_entropy_bits, grouped_entropy, grouping_entropy_comparison
from .qoe import mean_opinion_score
from .quality import QualitySummary, accuracy, f1_score, perplexity, summarize_quality
from .stats import percentiles
from .system import (
    QueueingTTFTBreakdown,
    TTFTBreakdown,
    size_reduction,
    slo_violation_rate,
    speedup,
)

__all__ = [
    "EMPTY_LATENCY_SUMMARY",
    "LatencySummary",
    "NodeSummary",
    "QualitySummary",
    "QueueingTTFTBreakdown",
    "TTFTBreakdown",
    "accuracy",
    "empirical_entropy_bits",
    "f1_score",
    "grouped_entropy",
    "grouping_entropy_comparison",
    "hit_ratio",
    "mean_opinion_score",
    "percentiles",
    "perplexity",
    "size_reduction",
    "slo_attainment",
    "slo_violation_rate",
    "speedup",
    "summarize_quality",
    "summarize_latencies",
]

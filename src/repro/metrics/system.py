"""System metrics: TTFT breakdowns, KV cache sizes and SLO violation rates.

The paper reports two system metrics (§7.1): the size of the (compressed) KV
cache, which measures bandwidth demand, and the time-to-first-token (TTFT),
which combines the loading delay of the context (network + decode/prefill)
with the prefill of the user's new question.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "TTFTBreakdown",
    "QueueingTTFTBreakdown",
    "slo_violation_rate",
    "size_reduction",
    "speedup",
]


@dataclass(frozen=True)
class TTFTBreakdown:
    """Time-to-first-token decomposed the way Figure 14a reports it.

    Attributes
    ----------
    network_s:
        Time spent transferring the context (text or KV bitstreams).
    decode_s:
        Receiver-side bitstream decode time not hidden by the transfer.
    compute_s:
        Prefill compute time (text chunks and the user prompt).
    """

    network_s: float
    decode_s: float
    compute_s: float

    def __post_init__(self) -> None:
        if min(self.network_s, self.decode_s, self.compute_s) < 0:
            raise ValueError("delay components must be non-negative")

    @property
    def total_s(self) -> float:
        return self.network_s + self.decode_s + self.compute_s


@dataclass(frozen=True)
class QueueingTTFTBreakdown(TTFTBreakdown):
    """TTFT under concurrency: the shared-resource wait is a first-class part.

    The event-driven serving engine decomposes a request's latency into the
    three activity components plus ``queueing_s`` — the time spent waiting for
    admission, for the network link, and for the GPU run queue.  Under no
    contention ``queueing_s`` is zero and the breakdown degenerates to the
    sequential :class:`TTFTBreakdown`.
    """

    queueing_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.queueing_s < 0:
            raise ValueError("queueing_s must be non-negative")

    @property
    def total_s(self) -> float:
        return self.network_s + self.decode_s + self.compute_s + self.queueing_s


def slo_violation_rate(ttfts: Sequence[float], slo_s: float) -> float:
    """Fraction of requests whose TTFT exceeded the SLO (Figure 13 metric).

    Zero samples mean zero observed violations: the rate is 0.0 (with a
    warning), so SLO accounting over an idle resource or a fully-shed run
    degrades to "nothing violated" instead of crashing report generation.
    """
    if slo_s <= 0:
        raise ValueError("slo_s must be positive")
    ttfts = np.asarray(list(ttfts), dtype=np.float64)
    if ttfts.size == 0:
        warnings.warn(
            "slo_violation_rate: no TTFT samples; reporting a 0.0 rate",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0.0
    return float(np.mean(ttfts > slo_s))


def size_reduction(baseline_bytes: float, compressed_bytes: float) -> float:
    """Size-reduction factor ("CacheGen reduces KV cache size by 3.5-4.3x")."""
    if baseline_bytes <= 0 or compressed_bytes <= 0:
        raise ValueError("sizes must be positive")
    return baseline_bytes / compressed_bytes


def speedup(baseline_seconds: float, new_seconds: float) -> float:
    """Delay-reduction factor ("3.2-3.7x faster than the quantization baseline")."""
    if baseline_seconds <= 0 or new_seconds <= 0:
        raise ValueError("delays must be positive")
    return baseline_seconds / new_seconds

"""Aggregation helpers for generation-quality metrics.

The per-generation scores come from :class:`repro.llm.QualityModel`; the
experiment harness aggregates them per method / dataset / model the same way
the paper does: mean accuracy, mean F1, mean perplexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..llm.quality import GenerationQuality

__all__ = ["QualitySummary", "summarize_quality", "accuracy", "f1_score", "perplexity"]


@dataclass(frozen=True)
class QualitySummary:
    """Mean quality of a set of generations sharing a task."""

    task: str
    metric: str
    mean_value: float
    mean_relative: float
    count: int

    @property
    def higher_is_better(self) -> bool:
        return self.metric != "perplexity"


def summarize_quality(qualities: Sequence[GenerationQuality]) -> QualitySummary:
    """Aggregate generation qualities (all must share the same task)."""
    if not qualities:
        raise ValueError("no qualities to summarise")
    tasks = {q.task for q in qualities}
    if len(tasks) != 1:
        raise ValueError(f"cannot aggregate mixed tasks: {sorted(tasks)}")
    values = np.array([q.value for q in qualities])
    relatives = np.array([q.relative_quality for q in qualities])
    first = qualities[0]
    return QualitySummary(
        task=first.task,
        metric=first.metric,
        mean_value=float(values.mean()),
        mean_relative=float(relatives.mean()),
        count=len(qualities),
    )


def accuracy(predictions: Iterable[bool]) -> float:
    """Exact-match accuracy of boolean match indicators (LongChat metric)."""
    predictions = list(predictions)
    if not predictions:
        raise ValueError("no predictions")
    return float(np.mean([1.0 if p else 0.0 for p in predictions]))


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (TriviaQA / NarrativeQA metric)."""
    if not 0 <= precision <= 1 or not 0 <= recall <= 1:
        raise ValueError("precision and recall must be in [0, 1]")
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def perplexity(log_likelihoods: Sequence[float]) -> float:
    """Perplexity from per-token natural-log likelihoods (WikiText metric)."""
    if len(log_likelihoods) == 0:
        raise ValueError("no log likelihoods")
    return float(np.exp(-np.mean(log_likelihoods)))

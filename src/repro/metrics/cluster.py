"""Cluster-level aggregate metrics.

The single-request metrics in :mod:`repro.metrics.system` (TTFT breakdowns,
SLO violations) describe one query; a cluster run produces thousands of them
plus per-node cache behaviour.  This module provides the aggregates the
:class:`~repro.cluster.simulator.ClusterSimulator` reports: latency
percentiles, SLO attainment, and per-node hit/eviction summaries.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .stats import percentiles
from .system import slo_violation_rate

__all__ = [
    "EMPTY_LATENCY_SUMMARY",
    "LatencySummary",
    "NodeSummary",
    "TierState",
    "summarize_latencies",
    "slo_attainment",
    "hit_ratio",
    "tier_hit_ratios",
    "tier_state",
    "storage_cost_per_request",
]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of a latency sample (seconds)."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean_s:.3f}s p50={self.p50_s:.3f}s "
            f"p95={self.p95_s:.3f}s p99={self.p99_s:.3f}s max={self.max_s:.3f}s"
        )


@dataclass(frozen=True)
class NodeSummary:
    """Cache behaviour of one storage node over a cluster run.

    The tier fields stay zero for single-tier nodes: ``hits`` then equals
    ``hot_hits`` and ``evictions`` counts outright drops.  On a tiered node
    ``evictions`` counts only cold-tier drops (true losses); hot-tier
    capacity pressure shows up as ``demotions`` instead.
    """

    node_id: str
    requests_routed: int
    hits: int
    evictions: int
    bytes_served: float
    stored_bytes: float
    contexts_resident: int
    up: bool
    hot_hits: int = 0
    cold_hits: int = 0
    demotions: int = 0
    promotions: int = 0
    hot_bytes: float = 0.0
    cold_bytes: float = 0.0

    @property
    def hit_ratio(self) -> float:
        return hit_ratio(self.hits, self.requests_routed)

    @property
    def hot_hit_ratio(self) -> float:
        """Fraction of routed requests served from the hot tier."""
        return hit_ratio(self.hot_hits, self.requests_routed)

    @property
    def cold_hit_ratio(self) -> float:
        """Fraction of routed requests served off the cold tier."""
        return hit_ratio(self.cold_hits, self.requests_routed)


@dataclass(frozen=True)
class TierState:
    """Cumulative tier counters and resident bytes of a set of storage nodes.

    Single-tier nodes contribute their resident bytes as hot; their demotion
    and promotion counts are zero by construction.
    """

    demotions: int
    promotions: int
    hot_bytes: float
    cold_bytes: float


def tier_state(nodes) -> TierState:
    """Aggregate the tier counters/bytes across nodes (duck-typed).

    Accepts anything iterable of :class:`~repro.cluster.node.StorageNode`-like
    objects (``tiered``, ``store``); both the legacy
    :class:`~repro.cluster.simulator.ClusterSimulator` and the unified
    :class:`~repro.serving.api.RunReport` assembly report through this one
    helper, so the two report shapes can never drift on tier accounting.
    """
    demotions = promotions = 0
    hot = cold = 0.0
    for node in nodes:
        if node.tiered:
            demotions += node.store.demotion_count
            promotions += node.store.promotion_count
            hot += node.store.hot_bytes()
            cold += node.store.cold_bytes()
        else:
            hot += float(node.store.storage_bytes())
    return TierState(
        demotions=demotions, promotions=promotions, hot_bytes=hot, cold_bytes=cold
    )


#: The summary of zero samples: all-zero percentiles with ``count == 0``.
#: What :func:`summarize_latencies` returns for empty input, shared by every
#: report assembly that wants to pre-build it without triggering the warning.
EMPTY_LATENCY_SUMMARY = LatencySummary(
    count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0, p99_s=0.0, max_s=0.0
)


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Latency percentiles over a sample of TTFTs (or any delays).

    Empty input yields :data:`EMPTY_LATENCY_SUMMARY` (with a warning) rather
    than raising: an idle resource or a fully-shed run has a well-defined
    summary — nothing happened — and report generation must not crash on it.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        warnings.warn(
            "summarize_latencies: no samples; returning an empty summary",
            RuntimeWarning,
            stacklevel=2,
        )
        return EMPTY_LATENCY_SUMMARY
    if np.any(arr < 0):
        raise ValueError("latencies must be non-negative")
    p50, p95, p99 = percentiles(arr, (50.0, 95.0, 99.0))
    return LatencySummary(
        count=int(arr.size),
        mean_s=float(arr.mean()),
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        max_s=float(arr.max()),
    )


def slo_attainment(ttfts: Sequence[float], slo_s: float) -> float:
    """Fraction of requests that met the TTFT SLO (complement of Figure 13's
    violation rate)."""
    return 1.0 - slo_violation_rate(ttfts, slo_s)


def hit_ratio(hits: int, total: int) -> float:
    """Cache hit ratio; 0.0 for an unused cache rather than a division error."""
    if hits < 0 or total < 0 or hits > total:
        raise ValueError("need 0 <= hits <= total")
    if total == 0:
        return 0.0
    return hits / total


def tier_hit_ratios(hot_hits: int, cold_hits: int, num_requests: int) -> tuple[float, float]:
    """Per-tier hit ratios of a run (hot, cold) over all requests."""
    return (
        hit_ratio(hot_hits, num_requests),
        hit_ratio(cold_hits, num_requests),
    )


def storage_cost_per_request(
    hot_bytes: float,
    cold_bytes: float,
    num_requests: int,
    reprefill_fraction: float = 0.0,
    mean_context_tokens: int = 0,
    cost_model=None,
) -> float:
    """$/GB-derived serving cost per request of a cluster run.

    Treats the run's request count as one month of traffic against the bytes
    resident when it ended: storage dollars amortise over the requests, and
    every full miss re-pays Appendix E's recompute price for the mean context.
    ``cost_model`` defaults to :class:`~repro.storage.cost.TieredCostModel`'s
    reference prices.
    """
    from ..storage.cost import TieredCostModel

    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    model = cost_model or TieredCostModel()
    return model.cost_per_request(
        hot_bytes=hot_bytes,
        cold_bytes=cold_bytes,
        requests_per_month=float(num_requests),
        reprefill_fraction=reprefill_fraction,
        num_tokens=mean_context_tokens,
    )

"""Entropy measurements over KV caches (Insight 3 / Figure 5).

The paper quantifies how much each grouping strategy (by token position, by
channel, by layer, or by channel-and-layer) lowers the entropy of the
quantized KV values.  These helpers quantize a KV tensor the same way the
codec's front end does and compute the per-grouping entropy in bits per
element, which is exactly what Figure 5 plots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.probability_model import Grouping, SymbolProbabilityModel
from ..core.quantization import bin_quantize

__all__ = ["grouped_entropy", "grouping_entropy_comparison", "empirical_entropy_bits"]

_DEFAULT_GROUPINGS: tuple[Grouping, ...] = ("global", "token", "channel", "layer", "channel_layer")


def empirical_entropy_bits(values: np.ndarray) -> float:
    """Empirical Shannon entropy (bits/symbol) of an integer symbol array."""
    values = np.asarray(values).ravel()
    if values.size == 0:
        raise ValueError("no symbols")
    _, counts = np.unique(values, return_counts=True)
    probs = counts / counts.sum()
    return float(-(probs * np.log2(probs)).sum())


def grouped_entropy(
    tensor: np.ndarray,
    grouping: Grouping,
    quantization_bin: float = 0.5,
) -> float:
    """Entropy (bits/element) of a KV tensor's quantized values under a grouping.

    The tensor is quantized with a uniform bin (relative to the per-layer
    standard deviation, like the codec front end) and the entropy is the
    average over groups of each group's empirical symbol entropy — the Figure
    5 measurement.
    """
    quantized = bin_quantize(np.asarray(tensor, dtype=np.float32), quantization_bin)
    model = SymbolProbabilityModel.fit(quantized.symbols, grouping=grouping, smoothing=1e-6)
    return model.entropy_bits_per_symbol()


def grouping_entropy_comparison(
    tensor: np.ndarray,
    groupings: Sequence[Grouping] = _DEFAULT_GROUPINGS,
    quantization_bin: float = 0.5,
) -> Mapping[str, float]:
    """Entropy per grouping strategy, keyed by grouping name."""
    return {
        grouping: grouped_entropy(tensor, grouping, quantization_bin) for grouping in groupings
    }

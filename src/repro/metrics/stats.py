"""Shared distribution statistics.

Percentile math used to be hand-rolled in three places — the cluster latency
summaries, the dataset length statistics and (now) the telemetry histograms —
each with its own ``np.percentile`` call and its own empty-input behaviour.
:func:`percentiles` is the one implementation they all share.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["percentiles"]


def percentiles(
    samples: Sequence[float], qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> tuple[float, ...]:
    """The requested percentiles of a sample, as plain floats.

    Empty input returns zeros (one per requested percentile) instead of
    raising: summaries of idle resources — a link that never carried a
    transfer, a histogram nothing observed — must render as empty, not crash
    the report.

    Parameters
    ----------
    samples:
        The observations (any iterable of numbers).
    qs:
        Percentile ranks in [0, 100], e.g. ``(50, 95, 99)``.
    """
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile ranks must be in [0, 100], got {q}")
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return tuple(0.0 for _ in qs)
    values = np.atleast_1d(np.percentile(arr, list(qs)))
    return tuple(float(v) for v in values)

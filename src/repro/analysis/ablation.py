"""Codec ablation: the contribution of each encoder idea (Figure 15).

Starting from the uniform-quantization strawman, the paper progressively adds
(1) arithmetic coding with per-(channel, layer) probability models, (2)
change-based (anchor/delta) encoding, and (3) layer-wise quantization, and
plots the size-quality point of each variant.  The encoder exposes each idea
as a configuration switch, so the ablation is a configuration sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import CacheGenConfig
from ..core.decoder import CacheGenDecoder
from ..core.encoder import CacheGenEncoder
from ..core.kv_cache import KVCache
from ..llm.quality import QualityModel

__all__ = ["AblationPoint", "codec_ablation", "ABLATION_VARIANTS"]

#: Ablation variants in the order Figure 15 presents them.
ABLATION_VARIANTS: dict[str, CacheGenConfig] = {
    "default-quant": CacheGenConfig(
        use_delta=False, use_layerwise_quant=False, use_arithmetic_coding=False
    ),
    "quant+ac": CacheGenConfig(use_delta=False, use_layerwise_quant=False),
    "quant+ac+change": CacheGenConfig(use_layerwise_quant=False),
    "cachegen": CacheGenConfig(),
}


@dataclass(frozen=True)
class AblationPoint:
    """Size-quality point of one ablation variant."""

    variant: str
    bits_per_element: float
    relative_size: float
    quality: float
    relative_quality: float


def codec_ablation(
    kv: KVCache,
    sample_caches: list[KVCache],
    quality_model: QualityModel,
    task: str = "qa_accuracy",
    level: str = "medium",
) -> list[AblationPoint]:
    """Evaluate every ablation variant on one KV cache.

    Parameters
    ----------
    kv:
        The KV cache being encoded.
    sample_caches:
        Offline profiling caches used to fit each variant's encoder.
    quality_model:
        Quality surrogate for the evaluated task.
    task, level:
        Task name and encoding level.
    """
    points: list[AblationPoint] = []
    baseline_bpe: float | None = None
    for variant, config in ABLATION_VARIANTS.items():
        encoder = CacheGenEncoder(config)
        encoder.fit(sample_caches)
        decoder = CacheGenDecoder(encoder)
        encoded = encoder.encode(kv, level)
        decoded = decoder.decode(encoded)
        distortion = kv.normalized_distortion_per_layer(decoded)
        quality = quality_model.score(task=task, layer_distortion=distortion)
        if baseline_bpe is None:
            baseline_bpe = encoded.bits_per_element
        points.append(
            AblationPoint(
                variant=variant,
                bits_per_element=encoded.bits_per_element,
                relative_size=encoded.bits_per_element / baseline_bpe,
                quality=quality.value,
                relative_quality=quality.relative_quality,
            )
        )
    return points

"""Analyses of KV-cache properties (§5.1 insights) and codec ablations."""

from .ablation import ABLATION_VARIANTS, AblationPoint, codec_ablation
from .insights import (
    ValueDistribution,
    delta_value_distribution,
    grouping_entropy_study,
    layer_sensitivity_study,
)

__all__ = [
    "ABLATION_VARIANTS",
    "AblationPoint",
    "ValueDistribution",
    "codec_ablation",
    "delta_value_distribution",
    "grouping_entropy_study",
    "layer_sensitivity_study",
]

"""Reproductions of the §5.1 empirical insights (Figures 3, 4 and 5).

These analyses run on the synthetic LLM substrate and verify that the three
distributional properties CacheGen's encoder is designed around hold for the
KV caches this reproduction generates:

* Figure 3 — deltas between consecutive tokens are far more concentrated than
  the original values (token-wise locality).
* Figure 4 — applying the same data loss to shallow layers hurts accuracy far
  more than applying it to deep layers (layer-wise sensitivity).
* Figure 5 — grouping values by channel or layer reduces entropy much more
  than grouping by token position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.delta import consecutive_delta_variance_ratio
from ..core.kv_cache import KVCache
from ..llm.synthetic_model import SyntheticLLM
from ..metrics.entropy import grouping_entropy_comparison

__all__ = [
    "ValueDistribution",
    "delta_value_distribution",
    "layer_sensitivity_study",
    "grouping_entropy_study",
]


@dataclass(frozen=True)
class ValueDistribution:
    """CDF data of original vs delta absolute values (Figure 3)."""

    original_abs: np.ndarray
    delta_abs: np.ndarray
    variance_ratio: float

    def cdf(self, which: str, points: Sequence[float]) -> np.ndarray:
        """Empirical CDF of the chosen value set at the given points."""
        values = self.original_abs if which == "original" else self.delta_abs
        sorted_values = np.sort(values)
        return np.searchsorted(sorted_values, np.asarray(points)) / len(sorted_values)


def delta_value_distribution(
    kv: KVCache, layer: int | None = None, max_samples: int = 200_000
) -> ValueDistribution:
    """Original-vs-delta absolute value distributions for one KV cache.

    Mirrors Figure 3's methodology: a single layer of the K tensor is used
    (values in different layers have different ranges), and deltas are taken
    between consecutive tokens.
    """
    layer_index = kv.num_layers // 2 if layer is None else layer
    if not 0 <= layer_index < kv.num_layers:
        raise IndexError("layer index out of range")
    tensor = kv.k[layer_index]  # (tokens, channels)
    deltas = np.diff(tensor, axis=0)

    original_abs = np.abs(tensor).ravel()
    delta_abs = np.abs(deltas).ravel()
    rng = np.random.default_rng(0)
    if original_abs.size > max_samples:
        original_abs = rng.choice(original_abs, size=max_samples, replace=False)
    if delta_abs.size > max_samples:
        delta_abs = rng.choice(delta_abs, size=max_samples, replace=False)
    ratio = consecutive_delta_variance_ratio(kv.k)
    return ValueDistribution(
        original_abs=np.sort(original_abs), delta_abs=np.sort(delta_abs), variance_ratio=ratio
    )


def layer_sensitivity_study(
    llm: SyntheticLLM,
    kv: KVCache,
    num_groups: int = 6,
    loss_bin: float = 3.0,
    task: str = "qa_accuracy",
) -> list[dict[str, float]]:
    """Accuracy when a rounding loss is applied to one layer group at a time.

    Reproduces Figure 4: the same data loss (coarse rounding, ``loss_bin``
    standard deviations wide) is applied to each group of layers in turn and
    the resulting response quality is recorded.
    """
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    quality_model = llm.quality_model
    layers = kv.num_layers
    group_edges = np.linspace(0, layers, num_groups + 1, dtype=int)
    results = []
    for group_index in range(num_groups):
        start, stop = group_edges[group_index], group_edges[group_index + 1]
        if start == stop:
            continue
        lossy = kv.copy()
        for tensor in (lossy.k, lossy.v):
            segment = tensor[start:stop]
            std = segment.std(axis=(1, 2), keepdims=True)
            bin_width = loss_bin * np.where(std > 1e-8, std, 1.0)
            tensor[start:stop] = np.rint(segment / bin_width) * bin_width
        distortion = kv.normalized_distortion_per_layer(lossy)
        quality = quality_model.score(task=task, layer_distortion=distortion)
        results.append(
            {
                "layer_group": group_index,
                "layer_start": int(start),
                "layer_end": int(stop - 1),
                "quality": quality.value,
                "relative_quality": quality.relative_quality,
            }
        )
    return results


def grouping_entropy_study(kv: KVCache, quantization_bin: float = 0.5) -> Mapping[str, float]:
    """Entropy (bits/element) under each grouping strategy (Figure 5)."""
    return grouping_entropy_comparison(kv.k, quantization_bin=quantization_bin)

"""Self-healing policies answering injected (or organic) faults.

The recovery machinery lives in one :class:`ResilienceManager` the cluster's
sharded store consults on every replica lookup:

* :class:`RetryPolicy` — a modeled per-attempt timeout with exponential
  backoff and *seeded* jitter.  A replica whose modeled service time exceeds
  the timeout counts as a failed attempt: the read pays the timeout plus the
  backoff and retries the next-best replica, until the attempt or time budget
  runs out — at which point the request **degrades** (cheapest codec level or
  text re-prefill) instead of failing;
* :class:`HedgePolicy` — hedged replica reads: when the chosen replica's
  modeled service exceeds the running p99 of observed services, a hedge is
  launched against the next replica after that delay and the faster one wins;
* :class:`BreakerPolicy` — a per-node circuit breaker that trips after
  consecutive failures, rejects routing to the node while open, and
  half-opens on a timer to probe recovery;
* background **re-replication** — an anti-entropy sweep at segment boundaries
  re-copies under-replicated contexts onto live nodes, FIFO-serialized per
  target link so repairs contend for real link time; a repaired replica
  becomes readable once its transfer has finished.

Everything is computed from modeled quantities on the simulated clock — the
same schedule, spec and seed replay to identical
:class:`ResilienceReport` objects.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

__all__ = [
    "RetryPolicy",
    "HedgePolicy",
    "BreakerPolicy",
    "ResiliencePolicy",
    "CircuitBreaker",
    "ReadOutcome",
    "FaultOutcome",
    "ResilienceReport",
    "ResilienceManager",
]

#: Bounded window of observed modeled service times feeding the hedge delay.
_SERVICE_WINDOW = 256


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + retry budget of a cluster read.

    An attempt whose modeled service time exceeds ``timeout_s`` is treated as
    failed: the read pays the timeout, backs off
    ``backoff_s * multiplier ** attempt`` (plus up to ``jitter`` of itself,
    drawn from a seeded RNG keyed on the context id so replays and reordered
    replays agree), and retries the next replica.  ``max_attempts`` and
    ``budget_s`` bound the loop; exhausting either degrades the request
    instead of failing it.

    Example
    -------
    >>> RetryPolicy(max_attempts=2, timeout_s=0.5).timeout_s
    0.5
    """

    max_attempts: int = 3
    timeout_s: float = 0.75
    backoff_s: float = 0.02
    multiplier: float = 2.0
    jitter: float = 0.5
    budget_s: float = 3.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget_s <= 0:
            raise ValueError("budget_s must be positive")


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged replica reads after a quantile-derived delay.

    The hedge delay is the ``quantile`` of the modeled service times observed
    so far (``initial_delay_s`` until ``min_samples`` have been seen).  When
    the chosen replica's modeled service exceeds the delay and another
    replica holds the context, a hedge is launched after the delay; the
    faster path serves the request.

    Example
    -------
    >>> HedgePolicy(quantile=0.95).quantile
    0.95
    """

    quantile: float = 0.99
    min_samples: int = 16
    initial_delay_s: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.initial_delay_s < 0:
            raise ValueError("initial_delay_s must be non-negative")


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-node circuit breaker settings.

    Example
    -------
    >>> BreakerPolicy(failure_threshold=5).failure_threshold
    5
    """

    failure_threshold: int = 3
    reset_after_s: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")


@dataclass(frozen=True)
class ResiliencePolicy:
    """The complete self-healing configuration of a serving spec.

    ``retry`` / ``hedge`` / ``breaker`` may each be ``None`` to disable that
    mechanism; ``repair`` enables background re-replication; ``degrade_level``
    names the codec level degraded requests drop to (``None`` picks the
    cheapest stored level per context).  ``seed`` feeds the retry jitter.

    Example
    -------
    >>> policy = ResiliencePolicy(hedge=None, seed=7)
    >>> policy.retry.max_attempts, policy.hedge
    (3, None)
    """

    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    hedge: HedgePolicy | None = field(default_factory=HedgePolicy)
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    repair: bool = True
    degrade_level: str | None = None
    seed: int = 0


# --------------------------------------------------------------------- breaker
class CircuitBreaker:
    """Classic closed -> open -> half-open breaker on the simulated clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s = 0.0
        self.trips = 0

    def allows(self, now_s: float) -> bool:
        """Whether a read may route to this node at ``now_s``.

        An open breaker rejects until ``reset_after_s`` has elapsed, then
        half-opens: the next read is the probe (success closes, failure
        reopens the window).
        """
        if self.state == self.OPEN:
            if now_s - self.opened_at_s >= self.policy.reset_after_s:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now_s: float) -> bool:
        """Count a failure; returns True when this one trips the breaker."""
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open, timer restarted.
            self.state = self.OPEN
            self.opened_at_s = now_s
            return False
        self.consecutive_failures += 1
        if self.state == self.CLOSED and (
            self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = self.OPEN
            self.opened_at_s = now_s
            self.trips += 1
            return True
        return False


# --------------------------------------------------------------------- results
@dataclass(frozen=True)
class ReadOutcome:
    """What the retry/hedge evaluation decided for one replica read."""

    node_id: str
    extra_delay_s: float = 0.0
    retries: int = 0
    hedged: bool = False
    degraded: bool = False


@dataclass
class FaultOutcome:
    """Lifecycle of one injected fault, for MTTR accounting."""

    fault_id: str
    kind: str
    target: str
    injected_at_s: float
    cleared_at_s: float | None = None

    @property
    def mttr_s(self) -> float | None:
        """Time from injection to recovery (``None`` while still open)."""
        if self.cleared_at_s is None:
            return None
        return self.cleared_at_s - self.injected_at_s


@dataclass(frozen=True)
class ResilienceReport:
    """Resilience outcome of one run (rides on ``RunReport.resilience``).

    ``served`` counts every answered request, ``degraded`` the subset that
    was answered off the degraded path (text re-prefill of a known context,
    or a retry-exhausted read at a cheaper codec level).  Goodput is
    ``served - degraded``; availability counts any answer, because graceful
    degradation never leaves a request unserved unless admission shed it.

    Example
    -------
    >>> report = ResilienceReport(offered=10, served=8, degraded=2,
    ...                           shed=2, failed=0)
    >>> report.availability, report.goodput
    (1.0, 6)
    """

    offered: int
    served: int
    degraded: int
    shed: int
    failed: int
    retries: int = 0
    timeouts: int = 0
    hedged_reads: int = 0
    hedge_wins: int = 0
    breaker_trips: int = 0
    breaker_blocked: int = 0
    corruptions_detected: int = 0
    repairs_completed: int = 0
    repairs_failed: int = 0
    repair_bytes: float = 0.0
    faults: tuple[FaultOutcome, ...] = ()

    # ------------------------------------------------------------------ ratios
    @property
    def goodput(self) -> int:
        """Requests served at full fidelity (served minus degraded)."""
        return self.served - self.degraded

    @property
    def availability(self) -> float:
        """Fraction of non-shed offered requests that got an answer."""
        eligible = self.offered - self.shed
        return self.served / eligible if eligible > 0 else 1.0

    @property
    def degraded_ratio(self) -> float:
        return self.degraded / self.served if self.served else 0.0

    @property
    def mttr_s(self) -> dict[str, float]:
        """Recovery time per cleared fault, keyed by fault id."""
        return {
            fault.fault_id: fault.mttr_s
            for fault in self.faults
            if fault.mttr_s is not None
        }

    @property
    def mean_mttr_s(self) -> float | None:
        cleared = [fault.mttr_s for fault in self.faults if fault.mttr_s is not None]
        return sum(cleared) / len(cleared) if cleared else None

    # ------------------------------------------------------------------ output
    def format_table(self) -> str:
        """Human-readable resilience summary."""
        lines = [
            f"availability      {self.availability * 100.0:.1f}% "
            f"(goodput={self.goodput}, degraded={self.degraded}, "
            f"failed={self.failed}, shed={self.shed})",
            f"retries           {self.retries} "
            f"({self.timeouts} timeouts, {self.hedged_reads} hedged reads, "
            f"{self.hedge_wins} hedge wins)",
            f"breaker           {self.breaker_trips} trips, "
            f"{self.breaker_blocked} reads blocked",
            f"repair            {self.repairs_completed} replicas re-replicated "
            f"({self.repair_bytes / 1e6:.1f} MB, {self.repairs_failed} failed), "
            f"{self.corruptions_detected} corruptions detected",
        ]
        for fault in self.faults:
            recovered = (
                f"recovered in {fault.mttr_s:.2f}s"
                if fault.mttr_s is not None
                else "not recovered in-run"
            )
            lines.append(
                f"  {fault.fault_id:<9} {fault.kind:<10} {fault.target:<18} "
                f"injected {fault.injected_at_s:.2f}s, {recovered}"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------- manager
@dataclass
class _PendingRepair:
    finish_s: float
    node_id: str
    context_id: str
    target: object
    stored: object
    num_bytes: float


class ResilienceManager:
    """Run-scoped state of the self-healing layer.

    Attached to a :class:`~repro.cluster.sharded_store.ShardedKVStore` as its
    ``resilience`` hook; the store consults it during :meth:`locate` (breaker
    gating, corruption detection, retry/hedge evaluation) and the driver
    drives :meth:`sweep` at fault boundaries (repair commits + scheduling).
    ``policy=None`` builds a bare manager — fault bookkeeping only, no
    retry/hedge/breaker/repair — which is what a :class:`~repro.faults.
    schedule.FaultSchedule` without a spec-level policy gets.
    """

    def __init__(self, policy: ResiliencePolicy | None, seed: int | None = None) -> None:
        self.policy = policy
        self.seed = policy.seed if policy is not None else (seed or 0)
        #: Simulated "now" — maintained by the driver/backends at each arrival
        #: and fault boundary; breaker timers and repair queues key off it.
        self.now = 0.0
        self._breakers: dict[str, CircuitBreaker] = {}
        self._service_samples: list[float] = []
        #: context_id -> fault_id of an injected corruption (MTTR clearing).
        self._corruption_faults: dict[str, str] = {}
        #: context_id -> simulated time its corruption was detected on read.
        self.corruption_detected_at: dict[str, float] = {}
        #: fault_id -> simulated clear time, resolved through repair commits.
        self.repair_cleared: dict[str, float] = {}
        self._pending_repairs: list[_PendingRepair] = []
        self._repair_busy_until: dict[str, float] = {}
        self.last_repair_commit_s: float | None = None
        # Counters (all modeled — deterministic across replays).
        self.retries = 0
        self.timeouts = 0
        self.hedged_reads = 0
        self.hedge_wins = 0
        self.breaker_blocked = 0
        self.corruptions_detected = 0
        self.repairs_completed = 0
        self.repairs_failed = 0
        self.repair_bytes = 0.0

    def counters(self) -> dict[str, float]:
        """Snapshot of the run counters (keys match :class:`ResilienceReport`).

        The driver diffs a before/after pair so a reused manager (one spec,
        several :meth:`~repro.serving.api.driver.Driver.run` calls) reports
        per-run counts.
        """
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "hedged_reads": self.hedged_reads,
            "hedge_wins": self.hedge_wins,
            "breaker_trips": self.breaker_trips,
            "breaker_blocked": self.breaker_blocked,
            "corruptions_detected": self.corruptions_detected,
            "repairs_completed": self.repairs_completed,
            "repairs_failed": self.repairs_failed,
            "repair_bytes": self.repair_bytes,
        }

    # ----------------------------------------------------------------- breaker
    def _breaker(self, node_id: str) -> CircuitBreaker | None:
        if self.policy is None or self.policy.breaker is None:
            return None
        breaker = self._breakers.get(node_id)
        if breaker is None:
            breaker = self._breakers[node_id] = CircuitBreaker(self.policy.breaker)
        return breaker

    @property
    def breaker_trips(self) -> int:
        return sum(breaker.trips for breaker in self._breakers.values())

    def breaker_state(self, node_id: str) -> str:
        breaker = self._breakers.get(node_id)
        return breaker.state if breaker is not None else CircuitBreaker.CLOSED

    def node_allowed(self, node_id: str) -> bool:
        """Breaker gate consulted during replica lookup (counts rejections)."""
        breaker = self._breaker(node_id)
        if breaker is None:
            return True
        if not breaker.allows(self.now):
            self.breaker_blocked += 1
            return False
        return True

    # ---------------------------------------------------------------- read path
    @property
    def active(self) -> bool:
        """Whether the read path has any policy to evaluate."""
        return self.policy is not None and (
            self.policy.retry is not None or self.policy.hedge is not None
        )

    def _jitter(self, context_id: str, attempt: int) -> float:
        """Seeded, order-independent jitter draw in [0, 1).

        Keyed on (seed, context id, attempt) rather than a shared stream so
        a permuted-but-equivalent request order draws identical values —
        the event-order race detector depends on that.
        """
        key = zlib.crc32(context_id.encode("utf-8")) ^ (self.seed * 0x9E3779B1) ^ attempt
        return random.Random(key).random()

    def backoff_s(self, context_id: str, attempt: int) -> float:
        retry = self.policy.retry if self.policy is not None else None
        if retry is None:
            return 0.0
        base = retry.backoff_s * (retry.multiplier**attempt)
        return base * (1.0 + retry.jitter * self._jitter(context_id, attempt))

    def hedge_delay_s(self) -> float | None:
        hedge = self.policy.hedge if self.policy is not None else None
        if hedge is None:
            return None
        samples = self._service_samples
        if len(samples) < hedge.min_samples:
            return hedge.initial_delay_s
        ordered = sorted(samples)
        index = min(int(hedge.quantile * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def observe_service(self, service_s: float) -> None:
        self._service_samples.append(service_s)
        if len(self._service_samples) > _SERVICE_WINDOW:
            del self._service_samples[0]

    def evaluate_read(
        self,
        context_id: str,
        primary: str,
        service_s: float,
        alternates: list[tuple[str, float]],
    ) -> ReadOutcome:
        """Apply the retry and hedge policies to one modeled replica read.

        ``alternates`` lists the other live replicas (node id, modeled
        service) in increasing modeled-service order.  Returns which node
        serves, the extra delay charged into the request's TTFT, and whether
        the read degraded (retry budget exhausted against slow replicas).
        """
        retry = self.policy.retry if self.policy is not None else None
        chosen, chosen_service = primary, service_s
        extra = 0.0
        retries = 0
        degraded = False
        hedged = False
        if retry is not None and chosen_service > retry.timeout_s:
            remaining = list(alternates)
            attempt = 0
            while True:
                # The in-flight attempt timed out on the simulated clock.
                self.timeouts += 1
                breaker = self._breaker(chosen)
                if breaker is not None:
                    breaker.record_failure(self.now)
                extra += retry.timeout_s + self.backoff_s(context_id, attempt)
                attempt += 1
                if attempt >= retry.max_attempts or extra > retry.budget_s or not remaining:
                    # Budget exhausted: degrade rather than fail — the caller
                    # serves the fastest remaining replica at a cheaper codec
                    # level (or falls through to the text path).
                    degraded = True
                    break
                self.retries += 1
                retries += 1
                chosen, chosen_service = remaining.pop(0)
                if chosen_service <= retry.timeout_s:
                    break
        elif alternates:
            hedge_delay = self.hedge_delay_s()
            if hedge_delay is not None and service_s > hedge_delay:
                self.hedged_reads += 1
                hedged = True
                alt, alt_service = alternates[0]
                if hedge_delay + alt_service < service_s:
                    self.hedge_wins += 1
                    chosen, chosen_service = alt, alt_service
                    extra += hedge_delay
        breaker = self._breaker(chosen)
        if breaker is not None and not degraded:
            breaker.record_success()
        self.observe_service(chosen_service)
        return ReadOutcome(
            node_id=chosen,
            extra_delay_s=extra,
            retries=retries,
            hedged=hedged,
            degraded=degraded,
        )

    # -------------------------------------------------------------- corruption
    def register_corruption(self, context_id: str, fault_id: str) -> None:
        """Remember which injected fault a corrupted context belongs to."""
        self._corruption_faults[context_id] = fault_id

    def on_corruption_detected(self, node_id: str, context_id: str) -> None:
        """The store detected (and evicted) a corrupted replica."""
        self.corruptions_detected += 1
        self.corruption_detected_at.setdefault(context_id, self.now)
        breaker = self._breaker(node_id)
        if breaker is not None:
            breaker.record_failure(self.now)

    # ------------------------------------------------------------------ repair
    def sweep(self, cluster, now_s: float, tracer=None) -> None:
        """Anti-entropy pass: commit finished repairs, schedule new ones.

        Called by the driver at fault/topology boundaries and at end of run.
        Scheduling walks the under-replicated contexts in deterministic
        (sorted) order; each repair copies the already-encoded bitstreams
        from a surviving replica onto the next live node in ring order,
        FIFO-serialized per target node's link so repairs queue behind each
        other for real link time.  A repaired replica becomes readable at
        the first sweep after its transfer finishes.
        """
        self.now = max(self.now, now_s)
        self._commit_repairs(now_s, tracer)
        if self.policy is None or not self.policy.repair:
            return
        pending_contexts = {repair.context_id for repair in self._pending_repairs}
        for context_id in cluster.under_replicated():
            if context_id in pending_contexts:
                continue
            plan = cluster.plan_repair(context_id)
            if plan is None:
                continue
            target, stored = plan
            num_bytes = stored.total_bytes()
            start = max(now_s, self._repair_busy_until.get(target.node_id, 0.0))
            finish = start + target.link.estimate_transfer_time(num_bytes)
            self._repair_busy_until[target.node_id] = finish
            self._pending_repairs.append(
                _PendingRepair(
                    finish_s=finish,
                    node_id=target.node_id,
                    context_id=context_id,
                    target=target,
                    stored=stored,
                    num_bytes=num_bytes,
                )
            )

    def _commit_repairs(self, now_s: float, tracer=None) -> None:
        from ..storage.kv_store import CapacityError

        due = [repair for repair in self._pending_repairs if repair.finish_s <= now_s]
        if not due:
            return
        self._pending_repairs = [
            repair for repair in self._pending_repairs if repair.finish_s > now_s
        ]
        for repair in sorted(due, key=lambda r: (r.finish_s, r.node_id, r.context_id)):
            try:
                repair.target.store.store_prepared(repair.stored)
            except CapacityError:
                self.repairs_failed += 1
                continue
            self.repairs_completed += 1
            self.repair_bytes += repair.num_bytes
            self.last_repair_commit_s = repair.finish_s
            fault_id = self._corruption_faults.get(repair.context_id)
            if fault_id is not None:
                self.repair_cleared.setdefault(fault_id, repair.finish_s)
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    "repair complete",
                    track="faults",
                    at_s=repair.finish_s,
                    category="fault",
                    context_id=repair.context_id,
                    node=repair.node_id,
                    bytes=repair.num_bytes,
                )

    @property
    def pending_repairs(self) -> int:
        return len(self._pending_repairs)

    def drain(self, cluster, now_s: float, tracer=None) -> None:
        """Run repair to completion after the arrival stream ends.

        Repairs in flight when the run drains still complete at their modeled
        finish times; follow-up sweeps re-replicate anything still lost until
        the cluster converges (or no further repair is possible).
        """
        self.sweep(cluster, now_s, tracer)
        for _ in range(64):  # converges in one pass per lost replica wave
            if not self._pending_repairs:
                break
            horizon = max(repair.finish_s for repair in self._pending_repairs)
            self._commit_repairs(horizon, tracer)
            self.sweep(cluster, horizon, tracer)

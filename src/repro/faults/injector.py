"""Applies a compiled :class:`~repro.faults.schedule.FaultSchedule` to a backend.

The :class:`FaultInjector` is driven by the
:class:`~repro.serving.api.driver.Driver`: at every arrival whose time passes
the next compiled event, the driver closes the current simulation segment and
the injector mutates the backend in place — marking nodes down/up, swapping a
link's bandwidth trace for a :class:`ScaledTrace`, swapping the engine's
compute model for a :class:`_StragglerCompute` proxy, or poisoning a stored
replica so its next read fails the integrity check.  Everything is an in-place
swap of a modeled component, so with no schedule attached the serving stack
runs byte-identically to a fault-free build.
"""

from __future__ import annotations

from ..network.bandwidth import BandwidthTrace
from .resilience import FaultOutcome, ResilienceManager
from .schedule import (
    CORRUPT,
    GPU_NORMAL,
    GPU_SLOW,
    LINK_DEGRADE,
    LINK_RESTORE,
    NODE_DOWN,
    NODE_UP,
    Corruption,
    FaultEvent,
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
)

__all__ = ["ScaledTrace", "FaultInjector"]


class ScaledTrace(BandwidthTrace):
    """A bandwidth trace scaled to ``factor`` of its base (link degradation)."""

    def __init__(self, base: BandwidthTrace, factor: float) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.base = base
        self.factor = factor

    def bandwidth_at(self, time_s: float) -> float:
        return self.base.bandwidth_at(time_s) * self.factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScaledTrace({self.base!r}, factor={self.factor})"


class _StragglerCompute:
    """Delay-scaling proxy over a :class:`~repro.llm.compute_model.ComputeModel`.

    Every modeled GPU delay is multiplied by ``slowdown``; everything else
    (flops accounting, specs) delegates to the base model untouched.
    """

    def __init__(self, base, slowdown: float) -> None:
        if slowdown <= 1.0:
            raise ValueError("slowdown must be above 1.0")
        self.base = base
        self.slowdown = slowdown

    def prefill_delay(self, num_tokens: int, gpu_share: float = 1.0) -> float:
        return self.base.prefill_delay(num_tokens, gpu_share) * self.slowdown

    def decode_delay(self, num_tokens: int, gpu_share: float = 1.0) -> float:
        return self.base.decode_delay(num_tokens, gpu_share) * self.slowdown

    def encode_delay(self, num_tokens: int, gpu_share: float = 1.0) -> float:
        return self.base.encode_delay(num_tokens, gpu_share) * self.slowdown

    def per_token_decode_delay(self, gpu_share: float = 1.0) -> float:
        return self.base.per_token_decode_delay(gpu_share) * self.slowdown

    def __getattr__(self, name):
        return getattr(self.base, name)


class FaultInjector:
    """Replays compiled fault events against a built serving backend.

    Parameters
    ----------
    schedule:
        The compiled :class:`FaultSchedule`.
    backend:
        Any unified-API backend.  Corruption faults and per-node link faults
        require the cluster backend; a node crash against a single-node
        backend takes the one store dark (queries degrade to text).
    manager:
        The run's :class:`ResilienceManager` (fault bookkeeping, repair).
    tracer:
        Optional tracer — every applied event emits an instant on the
        ``"faults"`` track.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        backend,
        manager: ResilienceManager,
        tracer=None,
    ) -> None:
        self.schedule = schedule
        self.backend = backend
        self.manager = manager
        self.tracer = tracer
        self._events = list(schedule.events())
        self._next = 0
        self._cluster = getattr(getattr(backend, "frontend", None), "cluster", None)
        self._engine = getattr(backend, "engine", None) or getattr(
            backend, "frontend", None
        )
        if self._engine is None:
            raise ValueError("the backend exposes neither an engine nor a frontend")
        self._base_traces: dict[int, tuple[object, BandwidthTrace]] = {}
        self._base_compute = None
        self.outcomes: dict[str, FaultOutcome] = {}
        self._validate()

    # ---------------------------------------------------------------- validate
    def _validate(self) -> None:
        cluster = self._cluster
        for fault in self.schedule:
            if isinstance(fault, Corruption) and cluster is None:
                raise ValueError(
                    "corruption faults target stored replicas and require a "
                    "cluster backend"
                )
            if isinstance(fault, (NodeCrash, LinkDegradation, Corruption)):
                if cluster is not None and fault.node_id is not None:
                    cluster.node(fault.node_id)  # raises KeyError on unknown nodes

    # ------------------------------------------------------------------ timing
    def due(self, now_s: float) -> bool:
        """Whether any unapplied event is at or before ``now_s``."""
        return self._next < len(self._events) and self._events[self._next].at_s <= now_s

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._events)

    def apply_due(self, now_s: float) -> list[FaultEvent]:
        """Apply every event at or before ``now_s``; returns those applied."""
        applied: list[FaultEvent] = []
        while self.due(now_s):
            event = self._events[self._next]
            self._next += 1
            self._apply(event)
            applied.append(event)
        return applied

    def drain(self) -> list[FaultEvent]:
        """Apply every remaining event (run ended before they were reached)."""
        return self.apply_due(float("inf"))

    # ------------------------------------------------------------------- apply
    def _apply(self, event: FaultEvent) -> None:
        self.manager.now = max(self.manager.now, event.at_s)
        if event.action == NODE_DOWN:
            self._mark(event.node_id, down=True)
        elif event.action == NODE_UP:
            self._mark(event.node_id, down=False)
        elif event.action == LINK_DEGRADE:
            for link in self._links(event.node_id):
                base = self._base_traces.setdefault(id(link), (link, link.trace))[1]
                link.trace = ScaledTrace(base, event.factor)
        elif event.action == LINK_RESTORE:
            for link in self._links(event.node_id):
                entry = self._base_traces.get(id(link))
                if entry is not None:
                    link.trace = entry[1]
        elif event.action == GPU_SLOW:
            if self._base_compute is None:
                self._base_compute = self._engine._parts.compute
            self._engine._parts.compute = _StragglerCompute(
                self._base_compute, event.factor
            )
        elif event.action == GPU_NORMAL:
            if self._base_compute is not None:
                self._engine._parts.compute = self._base_compute
        elif event.action == CORRUPT:
            self._corrupt(event)
        else:  # pragma: no cover - the schedule compiler owns the vocabulary
            raise ValueError(f"unknown fault action {event.action!r}")
        self._record(event)
        self._instant(event)

    def _mark(self, node_id: str | None, down: bool) -> None:
        backend = self.backend
        if down:
            backend.mark_down(node_id)
        else:
            backend.mark_up(node_id)

    def _links(self, node_id: str | None) -> list:
        """Links a (link) fault targets.

        On a cluster, a node id picks that node's serving link and ``None``
        degrades every node link (a cluster-wide WAN event).  On single-node
        backends there is exactly one serving link.
        """
        cluster = self._cluster
        if cluster is None:
            return [self._engine.link]
        if node_id is not None:
            return [cluster.node(node_id).link]
        return [node.link for node in cluster.nodes.values()]

    def _corrupt(self, event: FaultEvent) -> None:
        cluster = self._cluster
        context_id = event.context_id
        assert cluster is not None and context_id is not None
        node_id = event.node_id
        if node_id is None:
            replicas = cluster.replicas_for(context_id)
            if not replicas:
                return  # nothing stored to corrupt — the fault is a no-op
            node_id = replicas[0]
        cluster.corrupted_replicas.add((node_id, context_id))
        self.manager.register_corruption(context_id, event.fault_id)

    # --------------------------------------------------------------- reporting
    def _record(self, event: FaultEvent) -> None:
        outcome = self.outcomes.get(event.fault_id)
        if event.injects:
            if outcome is None:
                fault = self.schedule.fault(event.fault_id)
                self.outcomes[event.fault_id] = FaultOutcome(
                    fault_id=event.fault_id,
                    kind=fault.kind,
                    target=fault.target,
                    injected_at_s=event.at_s,
                )
            else:
                # A flap re-degraded the link: the fault is open again.
                outcome.cleared_at_s = None
        elif outcome is not None:
            outcome.cleared_at_s = event.at_s

    def _instant(self, event: FaultEvent) -> None:
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        args = {"fault_id": event.fault_id}
        if event.node_id is not None:
            args["node"] = event.node_id
        if event.context_id is not None:
            args["context_id"] = event.context_id
        if event.factor != 1.0:
            args["factor"] = event.factor
        tracer.instant(
            event.action, track="faults", at_s=event.at_s, category="fault", **args
        )

    # ---------------------------------------------------------------- finalize
    def finalize(self) -> tuple[FaultOutcome, ...]:
        """Resolve the per-fault recovery instants after the run drained.

        Node crashes without a recovery event clear when re-replication has
        restored full replication; corruptions clear at repair commit (or at
        detection when repair is off).  Faults still open stay uncleared —
        their MTTR is censored, not zero.
        """
        manager = self.manager
        cluster = self._cluster
        for fault_id, outcome in self.outcomes.items():
            if outcome.cleared_at_s is not None:
                continue
            fault = self.schedule.fault(fault_id)
            if isinstance(fault, Corruption):
                cleared = manager.repair_cleared.get(fault_id)
                if cleared is None:
                    cleared = manager.corruption_detected_at.get(fault.context_id)
                outcome.cleared_at_s = cleared
            elif (
                isinstance(fault, NodeCrash)
                and cluster is not None
                and manager.last_repair_commit_s is not None
                and not cluster.under_replicated()
            ):
                outcome.cleared_at_s = manager.last_repair_commit_s
        return tuple(
            self.outcomes[fault_id]
            for fault_id in sorted(
                self.outcomes, key=lambda fid: int(fid.rsplit("-", 1)[1])
            )
        )

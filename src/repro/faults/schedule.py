"""Declarative, deterministic fault schedules for the serving simulation.

A :class:`FaultSchedule` is a set of fault specifications — node crashes,
link degradation (with optional flapping), straggler GPUs, corrupted stored
contexts — compiled into a sorted stream of :class:`FaultEvent` clock events.
Every event carries a simulated-time instant; the
:class:`~repro.serving.api.driver.Driver` applies events at arrival-order
boundaries, so the same schedule against the same spec and workload replays
identically (there is no wall-clock or hidden RNG anywhere in the layer).

The four fault kinds map onto the failure domains of the serving stack:

* :class:`NodeCrash` — a storage node goes down (its contents stay, like a
  reboot) and optionally recovers later;
* :class:`LinkDegradation` — a link's bandwidth is cut to ``factor`` of its
  provisioned trace for a window; ``flaps > 0`` splits the window into
  alternating degraded/healthy sub-windows (route flapping);
* :class:`GpuStraggler` — the GPU compute model slows down by ``slowdown``
  for a window (a straggling worker, thermal throttling, a noisy neighbour);
* :class:`Corruption` — a stored replica of a context fails its integrity
  check on the next read (bit rot, a truncated object), forcing failover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

__all__ = [
    "NodeCrash",
    "LinkDegradation",
    "GpuStraggler",
    "Corruption",
    "FaultSpec",
    "FaultEvent",
    "FaultSchedule",
]

# Event actions (the compiled vocabulary the injector dispatches on).
NODE_DOWN = "node_down"
NODE_UP = "node_up"
LINK_DEGRADE = "link_degrade"
LINK_RESTORE = "link_restore"
GPU_SLOW = "gpu_slow"
GPU_NORMAL = "gpu_normal"
CORRUPT = "corrupt"

#: Actions that inject a fault (the rest clear one).
_INJECT_ACTIONS = frozenset({NODE_DOWN, LINK_DEGRADE, GPU_SLOW, CORRUPT})


def _require_window(at_s: float, until_s: float) -> None:
    if at_s < 0:
        raise ValueError("at_s must be non-negative")
    if until_s <= at_s:
        raise ValueError("until_s must be after at_s")


@dataclass(frozen=True)
class NodeCrash:
    """A storage node crashes at ``at_s`` and optionally recovers later.

    Cluster backends mark the named node down (reads fail over along the hash
    ring); single-node backends treat any crash as their one store going dark
    (queries degrade to the text re-prefill path until recovery).

    Example
    -------
    >>> crash = NodeCrash("node-0", at_s=10.0, recover_at_s=40.0)
    >>> crash.kind, crash.target
    ('crash', 'node-0')
    """

    node_id: str
    at_s: float
    recover_at_s: float | None = None

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.recover_at_s is not None and self.recover_at_s <= self.at_s:
            raise ValueError("recover_at_s must be after at_s")

    @property
    def kind(self) -> str:
        return "crash"

    @property
    def target(self) -> str:
        return self.node_id


@dataclass(frozen=True)
class LinkDegradation:
    """A link's bandwidth drops to ``factor`` of its trace for a window.

    ``node_id=None`` targets the single-topology serving link; a node id
    targets that storage node's link.  ``flaps > 0`` splits the window into
    ``2 * flaps + 1`` equal sub-windows alternating degraded/healthy — the
    degraded sub-windows come first and last, modeling a flapping route.

    Example
    -------
    >>> slow = LinkDegradation(at_s=20.0, until_s=30.0, factor=0.25, flaps=2)
    >>> slow.kind, slow.target
    ('link', 'serving-link')
    """

    at_s: float
    until_s: float
    factor: float
    node_id: str | None = None
    flaps: int = 0

    def __post_init__(self) -> None:
        _require_window(self.at_s, self.until_s)
        if not 0.0 < self.factor < 1.0:
            raise ValueError("factor must be in (0, 1) — the remaining bandwidth fraction")
        if self.flaps < 0:
            raise ValueError("flaps must be non-negative")

    @property
    def kind(self) -> str:
        return "link"

    @property
    def target(self) -> str:
        return self.node_id or "serving-link"


@dataclass(frozen=True)
class GpuStraggler:
    """The GPU compute model runs ``slowdown`` times slower for a window.

    Example
    -------
    >>> straggler = GpuStraggler(at_s=5.0, until_s=15.0, slowdown=4.0)
    >>> straggler.kind
    'gpu'
    """

    at_s: float
    until_s: float
    slowdown: float

    def __post_init__(self) -> None:
        _require_window(self.at_s, self.until_s)
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must be above 1.0")

    @property
    def kind(self) -> str:
        return "gpu"

    @property
    def target(self) -> str:
        return "gpu"


@dataclass(frozen=True)
class Corruption:
    """A stored replica of ``context_id`` fails its integrity check.

    From ``at_s`` on, the first read that routes to the corrupted replica
    detects the bad copy, evicts it and fails over to another replica (or the
    text path).  ``node_id=None`` corrupts the first replica in ring order at
    injection time.  Cluster backends only.

    Example
    -------
    >>> bitrot = Corruption("ctx-0000", at_s=12.0)
    >>> bitrot.kind, bitrot.target
    ('corruption', 'ctx-0000@replica')
    """

    context_id: str
    at_s: float
    node_id: str | None = None

    def __post_init__(self) -> None:
        if not self.context_id:
            raise ValueError("context_id must be non-empty")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")

    @property
    def kind(self) -> str:
        return "corruption"

    @property
    def target(self) -> str:
        where = self.node_id or "replica"
        return f"{self.context_id}@{where}"


FaultSpec = Union[NodeCrash, LinkDegradation, GpuStraggler, Corruption]


@dataclass(frozen=True)
class FaultEvent:
    """One compiled clock event of a schedule."""

    at_s: float
    action: str
    fault_id: str
    node_id: str | None = None
    context_id: str | None = None
    factor: float = 1.0

    @property
    def injects(self) -> bool:
        """True for events that inject a fault (False for recoveries)."""
        return self.action in _INJECT_ACTIONS


def _compile(fault: FaultSpec, fault_id: str) -> list[FaultEvent]:
    if isinstance(fault, NodeCrash):
        events = [
            FaultEvent(fault.at_s, NODE_DOWN, fault_id, node_id=fault.node_id)
        ]
        if fault.recover_at_s is not None:
            events.append(
                FaultEvent(fault.recover_at_s, NODE_UP, fault_id, node_id=fault.node_id)
            )
        return events
    if isinstance(fault, LinkDegradation):
        # 2*flaps + 1 equal sub-windows; even-indexed ones are degraded.
        slots = 2 * fault.flaps + 1
        width = (fault.until_s - fault.at_s) / slots
        events = []
        for slot in range(slots):
            start = fault.at_s + slot * width
            if slot % 2 == 0:
                events.append(
                    FaultEvent(
                        start,
                        LINK_DEGRADE,
                        fault_id,
                        node_id=fault.node_id,
                        factor=fault.factor,
                    )
                )
            else:
                events.append(
                    FaultEvent(start, LINK_RESTORE, fault_id, node_id=fault.node_id)
                )
        events.append(FaultEvent(fault.until_s, LINK_RESTORE, fault_id, node_id=fault.node_id))
        return events
    if isinstance(fault, GpuStraggler):
        return [
            FaultEvent(fault.at_s, GPU_SLOW, fault_id, factor=fault.slowdown),
            FaultEvent(fault.until_s, GPU_NORMAL, fault_id),
        ]
    if isinstance(fault, Corruption):
        return [
            FaultEvent(
                fault.at_s,
                CORRUPT,
                fault_id,
                node_id=fault.node_id,
                context_id=fault.context_id,
            )
        ]
    raise TypeError(f"unknown fault specification: {fault!r}")


class FaultSchedule:
    """An immutable, compiled schedule of deterministic faults.

    Parameters
    ----------
    faults:
        The fault specifications (:class:`NodeCrash`, :class:`LinkDegradation`,
        :class:`GpuStraggler`, :class:`Corruption`).
    seed:
        Seed of the resilience layer's jitter RNG when the driver builds one
        implicitly (a spec-level :class:`~repro.faults.resilience.
        ResiliencePolicy` carries its own seed and wins).  The schedule itself
        is fully explicit — the seed never moves a fault.

    Example
    -------
    >>> schedule = FaultSchedule([NodeCrash("node-0", at_s=1.0, recover_at_s=4.0)])
    >>> [event.action for event in schedule.events()]
    ['node_down', 'node_up']
    """

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.faults: tuple[FaultSpec, ...] = tuple(faults)
        self.seed = seed
        compiled: list[FaultEvent] = []
        for index, fault in enumerate(self.faults):
            compiled.extend(_compile(fault, f"fault-{index}"))
        # Stable sort: same-instant events keep declaration order.
        self._events = tuple(sorted(compiled, key=lambda event: event.at_s))
        by_id: dict[str, FaultSpec] = {}
        for index, fault in enumerate(self.faults):
            by_id[f"fault-{index}"] = fault
        self._by_id = by_id

    # ------------------------------------------------------------------ access
    def events(self) -> tuple[FaultEvent, ...]:
        """All compiled clock events, sorted by simulated time."""
        return self._events

    def fault(self, fault_id: str) -> FaultSpec:
        """The specification a compiled event's ``fault_id`` refers to."""
        return self._by_id[fault_id]

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f"{fault.kind}@{fault.at_s:g}s" for fault in self.faults)
        return f"FaultSchedule([{kinds}], seed={self.seed})"

"""Deterministic fault injection and self-healing serving.

Declare *what goes wrong* with a :class:`FaultSchedule` (node crashes, link
degradation and flapping, straggler GPUs, corrupted replicas — all on the
simulated clock), thread it through ``Driver(faults=...)``, and configure *how
the system answers* with a :class:`ResiliencePolicy` on the serving spec
(retries with seeded-jitter backoff, hedged replica reads, per-node circuit
breakers, background re-replication, graceful degradation).  The run's
:class:`ResilienceReport` rides on ``RunReport.resilience``.
"""

from .injector import FaultInjector, ScaledTrace
from .resilience import (
    BreakerPolicy,
    CircuitBreaker,
    FaultOutcome,
    HedgePolicy,
    ReadOutcome,
    ResilienceManager,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
)
from .schedule import (
    Corruption,
    FaultEvent,
    FaultSchedule,
    FaultSpec,
    GpuStraggler,
    LinkDegradation,
    NodeCrash,
)

__all__ = [
    "NodeCrash",
    "LinkDegradation",
    "GpuStraggler",
    "Corruption",
    "FaultSpec",
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "HedgePolicy",
    "BreakerPolicy",
    "ResiliencePolicy",
    "CircuitBreaker",
    "ReadOutcome",
    "FaultOutcome",
    "ResilienceReport",
    "ResilienceManager",
    "FaultInjector",
    "ScaledTrace",
]

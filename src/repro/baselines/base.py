"""Common interface of the context-loading methods the paper compares.

Every method — CacheGen itself, the quantization baseline, the text-context
baseline, and the context-compression baselines (H2O, LLMLingua,
Scissorhands, Gisting, smaller models) — answers the same question: *given a
reusable context, what does it cost to make the LLM ready to answer a new
query about it?*  The cost has two halves the paper measures (§7.1):

* the bytes that must cross the network (the KV cache size / bandwidth), and
* the time-to-first-token, i.e. loading delay plus the prefill of the query.

:class:`ContextLoadingMethod` is the abstract interface; :class:`LoadRequest`
bundles everything a method may need; :class:`MethodResult` is the uniform
result consumed by the experiment harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.kv_cache import KVCache
from ..datasets.base import ContextRecord
from ..llm.compute_model import ComputeModel
from ..llm.quality import GenerationQuality, QualityModel
from ..llm.synthetic_model import SyntheticLLM
from ..metrics.system import TTFTBreakdown
from ..network.link import NetworkLink

__all__ = ["LoadRequest", "MethodResult", "ContextLoadingMethod"]


@dataclass
class LoadRequest:
    """One context-loading request to be evaluated by a method.

    Attributes
    ----------
    record:
        The dataset record (context id, length, task, prompt length).
    llm:
        The serving model's synthetic substrate.
    reference_kv:
        The lossless KV cache of the context (the output of ``calculate_kv``),
        used both as the decode reference and to quantify quality loss.
    link:
        Network link between the storage server and the GPU server.
    compute_model:
        GPU latency model.
    quality_model:
        Quality surrogate configured with the dataset's base quality.
    gpu_share:
        Fraction of the GPU available to this request (1/n with n concurrent
        requests).
    concurrency:
        Number of concurrent requests sharing the network link.
    slo_s:
        Optional TTFT SLO (used by adaptive streaming).
    """

    record: ContextRecord
    llm: SyntheticLLM
    reference_kv: KVCache
    link: NetworkLink
    compute_model: ComputeModel
    quality_model: QualityModel
    gpu_share: float = 1.0
    concurrency: int = 1
    slo_s: float | None = None

    @property
    def num_tokens(self) -> int:
        return self.record.num_tokens

    @property
    def task(self) -> str:
        return self.record.task


@dataclass
class MethodResult:
    """Uniform result of evaluating a context-loading method on one request."""

    method: str
    transmitted_bytes: float
    breakdown: TTFTBreakdown
    quality: GenerationQuality
    extras: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ttft_s(self) -> float:
        return self.breakdown.total_s

    @property
    def kv_size_bytes(self) -> float:
        """Size of the (compressed) KV representation that was transmitted."""
        return self.transmitted_bytes


class ContextLoadingMethod(abc.ABC):
    """Abstract base class of all context-loading methods."""

    #: Human-readable method name used in experiment tables.
    name: str = "method"

    @abc.abstractmethod
    def evaluate(self, request: LoadRequest) -> MethodResult:
        """Evaluate the method on one request."""

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def prompt_prefill_delay(request: LoadRequest) -> float:
        """Prefill delay of the user's new question (common to every method)."""
        return request.compute_model.prefill_delay(request.record.prompt_tokens, request.gpu_share)

    @staticmethod
    def lossless_quality(request: LoadRequest) -> GenerationQuality:
        """Quality achieved with an exact KV cache."""
        import numpy as np

        return request.quality_model.score(
            task=request.task,
            layer_distortion=np.zeros(request.reference_kv.num_layers),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

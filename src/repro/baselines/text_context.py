"""The "text context" baseline: ship the text, recompute the KV cache.

This is the design that minimises bytes on the wire at the cost of the full
prefill computation (Figure 2a).  The paper runs it on vLLM with xFormers
kernels; here the prefill delay comes from the calibrated
:class:`~repro.llm.compute_model.ComputeModel`.  Because nothing lossy happens
to the context, generation quality equals the lossless baseline.
"""

from __future__ import annotations

from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["TextContextBaseline"]


class TextContextBaseline(ContextLoadingMethod):
    """Fetch the context as text and prefill it on the GPU.

    Parameters
    ----------
    bytes_per_token:
        Average UTF-8 bytes per token of the context text.
    """

    name = "text"

    def __init__(self, bytes_per_token: float = 4.5) -> None:
        if bytes_per_token <= 0:
            raise ValueError("bytes_per_token must be positive")
        self.bytes_per_token = bytes_per_token

    def evaluate(self, request: LoadRequest) -> MethodResult:
        text_bytes = request.num_tokens * self.bytes_per_token
        transfer = request.link.transfer(text_bytes * request.concurrency, 0.0)
        context_prefill = request.compute_model.prefill_delay(
            request.num_tokens, request.gpu_share
        )
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=context_prefill + self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=text_bytes,
            breakdown=breakdown,
            quality=self.lossless_quality(request),
            extras={"prefill_flops": request.compute_model.prefill_flops(request.num_tokens)},
        )

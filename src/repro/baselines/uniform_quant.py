"""The "default quantization" baseline: uniform per-tensor quantization.

The paper's main baseline applies the same quantization level (8, 4 or 3
bits) to every layer of the KV cache and ships the fixed-width tensors over
the network.  The tensors keep their shape, so no entropy coding or decoding
is involved; the receiver only rescales the integers, whose cost is
negligible.
"""

from __future__ import annotations

from ..core.kv_cache import KVCache
from ..core.quantization import vectorwise_quantize
from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["UniformQuantizationBaseline"]


class UniformQuantizationBaseline(ContextLoadingMethod):
    """Uniform ``num_bits`` quantization of the whole KV cache.

    Parameters
    ----------
    num_bits:
        Quantization bit width applied to every layer (the paper uses 8, 4
        and 3).
    """

    def __init__(self, num_bits: int = 8) -> None:
        if not 2 <= num_bits <= 16:
            raise ValueError("num_bits must be between 2 and 16")
        self.num_bits = num_bits
        self.name = f"quant-{num_bits}bit"

    # ------------------------------------------------------------------ pieces
    def quantized_cache(self, reference_kv: KVCache) -> tuple[KVCache, float]:
        """Quantize/dequantize the cache; return the lossy cache and its bytes."""
        q_k = vectorwise_quantize(reference_kv.k, self.num_bits)
        q_v = vectorwise_quantize(reference_kv.v, self.num_bits)
        lossy = KVCache(
            k=q_k.dequantize(),
            v=q_v.dequantize(),
            model_name=reference_kv.model_name,
            full_layers=reference_kv.full_layers,
            full_channels=reference_kv.full_channels,
        )
        payload_bytes = reference_kv.full_num_elements * self.num_bits / 8.0
        # Per-(layer, channel) fp16 scales, extrapolated to the full model.
        metadata_bytes = 2.0 * 2 * reference_kv.full_layers * reference_kv.full_channels
        return lossy, payload_bytes + metadata_bytes

    def evaluate(self, request: LoadRequest) -> MethodResult:
        lossy, num_bytes = self.quantized_cache(request.reference_kv)
        transfer = request.link.transfer(num_bytes * request.concurrency, 0.0)
        distortion = request.reference_kv.normalized_distortion_per_layer(lossy)
        quality = request.quality_model.score(task=request.task, layer_distortion=distortion)
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=num_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={"bits_per_element": self.num_bits},
        )

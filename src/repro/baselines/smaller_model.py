"""The "smaller model" baseline (Figure 18a).

Instead of compressing the big model's KV cache, one can serve a smaller LLM
whose prefill is faster and whose KV cache is smaller — at the cost of
intrinsically worse generation quality.  The baseline quantizes the smaller
model's KV cache at a configurable bit width, like the uniform baseline.
"""

from __future__ import annotations

from ..core.quantization import vectorwise_quantize
from ..core.kv_cache import KVCache
from ..llm.model_config import LLAMA_3B, ModelConfig
from ..llm.quality import QualityModel
from ..llm.synthetic_model import SyntheticLLM
from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["SmallerModelBaseline"]


class SmallerModelBaseline(ContextLoadingMethod):
    """Replace the serving LLM with a smaller one and quantize its KV cache.

    Parameters
    ----------
    small_model:
        Configuration of the replacement model (default Llama-3B-class).
    num_bits:
        Quantization bit width for the smaller model's KV cache.
    base_quality:
        Lossless-cache quality of the *smaller* model on the evaluated task
        (intrinsically worse than the large model's).
    """

    def __init__(
        self,
        small_model: ModelConfig = LLAMA_3B,
        num_bits: int = 8,
        base_quality: float | None = None,
    ) -> None:
        if not 2 <= num_bits <= 16:
            raise ValueError("num_bits must be between 2 and 16")
        self.small_model = small_model
        self.num_bits = num_bits
        self.base_quality = base_quality
        self.name = f"smaller-model-{num_bits}bit"

    def evaluate(self, request: LoadRequest) -> MethodResult:
        small_llm = SyntheticLLM(self.small_model)
        small_kv = small_llm.calculate_kv(request.record.context_id, request.num_tokens)

        q_k = vectorwise_quantize(small_kv.k, self.num_bits)
        q_v = vectorwise_quantize(small_kv.v, self.num_bits)
        lossy = KVCache(
            k=q_k.dequantize(),
            v=q_v.dequantize(),
            model_name=small_kv.model_name,
            full_layers=small_kv.full_layers,
            full_channels=small_kv.full_channels,
        )
        num_bytes = small_kv.full_num_elements * self.num_bits / 8.0
        transfer = request.link.transfer(num_bytes * request.concurrency, 0.0)

        quality_model = self._small_quality_model(request)
        distortion = small_kv.normalized_distortion_per_layer(lossy)
        quality = quality_model.score(task=request.task, layer_distortion=distortion)

        compute = request.compute_model.__class__(self.small_model, request.compute_model.gpu)
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=compute.prefill_delay(request.record.prompt_tokens, request.gpu_share),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=num_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={"small_model": self.small_model.name, "bits_per_element": self.num_bits},
        )

    def _small_quality_model(self, request: LoadRequest) -> QualityModel:
        """Quality model anchored at the smaller model's base quality."""
        base_values = dict(request.quality_model.base_values)
        if self.base_quality is not None:
            base_values[request.task] = self.base_quality
        else:
            # The smaller model is intrinsically worse: degrade higher-is-better
            # metrics and inflate perplexity relative to the big model's base.
            if request.task == "perplexity":
                base_values[request.task] = base_values[request.task] * 1.6
            else:
                base_values[request.task] = base_values[request.task] * 0.72
        return QualityModel(
            num_layers=self.small_model.sim_layers,
            sensitivity_decay=request.quality_model.sensitivity_decay,
            base_values=base_values,
        )

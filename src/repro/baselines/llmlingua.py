"""LLMLingua / LongLLMLingua: query-agnostic prompt (text) compression.

LLMLingua drops tokens from the *text* of the context using a small language
model, without seeing the eventual query.  The LLM then prefills the shortened
context, producing a proportionally smaller KV cache; for transmission the
paper quantizes that cache like the uniform baseline.  Because the pruning is
query-agnostic it covers less of the attention mass than heavy-hitter
selection at the same keep fraction, costing more quality (Table 1: 0.94 vs
H2O's 0.97).
"""

from __future__ import annotations

import zlib

from ..core.kv_cache import KVCache
from ..core.quantization import vectorwise_quantize
from ..llm.attention import TokenSelection, select_uniform
from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["LLMLinguaBaseline"]


class LLMLinguaBaseline(ContextLoadingMethod):
    """Query-agnostic text pruning followed by uniform quantization.

    Parameters
    ----------
    keep_fraction:
        Fraction of context tokens the compressor keeps (the paper's setting
        corresponds to roughly 79% on LongChat: 492 MB vs 622 MB in Table 1).
    num_bits:
        Quantization bit width applied to the shortened context's KV cache.
    """

    name = "llmlingua"

    def __init__(self, keep_fraction: float = 0.79, num_bits: int = 8) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if not 2 <= num_bits <= 16:
            raise ValueError("num_bits must be between 2 and 16")
        self.keep_fraction = keep_fraction
        self.num_bits = num_bits

    # ------------------------------------------------------------------ pieces
    def select_tokens(self, request: LoadRequest) -> TokenSelection:
        """Pick the surviving token positions (query-agnostic)."""
        scores = request.llm.attention_scores(request.record.context_id, request.num_tokens)
        seed = zlib.crc32(request.record.context_id.encode("utf-8"))
        return select_uniform(scores, self.keep_fraction, seed=seed)

    def compressed_cache(
        self, request: LoadRequest
    ) -> tuple[KVCache, KVCache, TokenSelection, float]:
        """Return (kept lossless KV, kept lossy KV, selection, transmitted bytes)."""
        selection = self.select_tokens(request)
        kept = KVCache(
            k=request.reference_kv.k[:, selection.kept_positions, :],
            v=request.reference_kv.v[:, selection.kept_positions, :],
            model_name=request.reference_kv.model_name,
            full_layers=request.reference_kv.full_layers,
            full_channels=request.reference_kv.full_channels,
        )
        q_k = vectorwise_quantize(kept.k, self.num_bits)
        q_v = vectorwise_quantize(kept.v, self.num_bits)
        lossy = KVCache(
            k=q_k.dequantize(),
            v=q_v.dequantize(),
            model_name=kept.model_name,
            full_layers=kept.full_layers,
            full_channels=kept.full_channels,
        )
        payload_bytes = kept.full_num_elements * self.num_bits / 8.0
        metadata_bytes = 2.0 * 2 * kept.full_layers * kept.full_channels
        return kept, lossy, selection, payload_bytes + metadata_bytes

    def evaluate(self, request: LoadRequest) -> MethodResult:
        kept, lossy, selection, num_bytes = self.compressed_cache(request)
        transfer = request.link.transfer(num_bytes * request.concurrency, 0.0)
        distortion = kept.normalized_distortion_per_layer(lossy)
        quality = request.quality_model.score(
            task=request.task,
            layer_distortion=distortion,
            token_keep_fraction=selection.keep_fraction,
            important_token_coverage=selection.attention_coverage,
        )
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=num_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={
                "kept_tokens": selection.num_kept,
                "keep_fraction": selection.keep_fraction,
                "attention_coverage": selection.attention_coverage,
            },
        )

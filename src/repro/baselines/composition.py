"""CacheGen composed with context-compression baselines (Figure 10, Table 1).

H2O and LLMLingua prune tokens but keep the surviving KV cache as
floating-point tensors, so CacheGen can encode what remains into bitstreams
and shrink it a further 3-4x.  This module implements that composition: the
inner method selects the surviving tokens, then the CacheGen encoder encodes
the surviving KV cache at its default level.
"""

from __future__ import annotations

from ..core.decoder import CacheGenDecoder
from ..core.encoder import CacheGenEncoder
from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult
from .h2o import H2OBaseline
from .llmlingua import LLMLinguaBaseline

__all__ = ["CacheGenOnCompressionBaseline"]


class CacheGenOnCompressionBaseline(ContextLoadingMethod):
    """Apply CacheGen's encoder on top of a token-dropping baseline.

    Parameters
    ----------
    inner:
        The context-compression baseline (H2O or LLMLingua) whose surviving
        tokens are encoded.
    encoder:
        Fitted CacheGen encoder for the serving model.
    level:
        Encoding level used for the surviving KV cache.
    """

    def __init__(
        self,
        inner: H2OBaseline | LLMLinguaBaseline,
        encoder: CacheGenEncoder,
        level: str | None = None,
    ) -> None:
        self.inner = inner
        self.encoder = encoder
        self.decoder = CacheGenDecoder(encoder)
        self.level = level or encoder.config.default_level.name
        self.name = f"cachegen+{inner.name}"

    def evaluate(self, request: LoadRequest) -> MethodResult:
        kept, _, selection, _ = self.inner.compressed_cache(request)
        encoded = self.encoder.encode(kept, self.level)
        decoded = self.decoder.decode(encoded)

        num_bytes = encoded.compressed_bytes
        transfer = request.link.transfer(num_bytes * request.concurrency, 0.0)
        decode_delay = request.compute_model.decode_delay(kept.num_tokens, request.gpu_share)

        distortion = kept.normalized_distortion_per_layer(decoded)
        quality = request.quality_model.score(
            task=request.task,
            layer_distortion=distortion,
            token_keep_fraction=selection.keep_fraction,
            important_token_coverage=selection.attention_coverage,
        )
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=decode_delay,
            compute_s=self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=num_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={
                "kept_tokens": selection.num_kept,
                "bits_per_element": encoded.bits_per_element,
                "inner_method": self.inner.name,
            },
        )

"""H2O: heavy-hitter-oracle KV cache compression (token dropping).

H2O keeps the tokens whose cumulative attention scores are highest (the
"heavy hitters") plus the most recent tokens, and drops the rest of the KV
cache.  It needs the query's attention scores, which are not available in the
offline compression stage; like the paper (§7.2) we evaluate an *idealized*
H2O that is allowed to use them.  The surviving KV cache keeps its tensor
shape, so for transmission it is quantized like the uniform baseline — and can
be further encoded by CacheGen (see
:class:`repro.baselines.composition.CacheGenOnCompressionBaseline`).
"""

from __future__ import annotations

import numpy as np

from ..core.kv_cache import KVCache
from ..core.quantization import vectorwise_quantize
from ..llm.attention import TokenSelection, select_heavy_hitters
from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["H2OBaseline"]


class H2OBaseline(ContextLoadingMethod):
    """Heavy-hitter token dropping followed by uniform quantization.

    Parameters
    ----------
    keep_fraction:
        Fraction of context tokens retained (the paper's configuration keeps
        roughly 45% on LongChat, matching Table 1's 282 MB vs 622 MB).
    num_bits:
        Quantization bit width applied to the surviving tokens' KV.
    idealized:
        Kept for documentation purposes: the offline stage is allowed to use
        the prompt's attention scores (always True in this reproduction,
        matching the paper's idealized comparison).
    """

    name = "h2o"

    def __init__(self, keep_fraction: float = 0.45, num_bits: int = 8, idealized: bool = True) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if not 2 <= num_bits <= 16:
            raise ValueError("num_bits must be between 2 and 16")
        self.keep_fraction = keep_fraction
        self.num_bits = num_bits
        self.idealized = idealized

    # ------------------------------------------------------------------ pieces
    def select_tokens(self, request: LoadRequest) -> TokenSelection:
        """Choose which token positions survive."""
        scores = request.llm.attention_scores(request.record.context_id, request.num_tokens)
        return select_heavy_hitters(scores, self.keep_fraction)

    def compressed_cache(
        self, request: LoadRequest
    ) -> tuple[KVCache, KVCache, TokenSelection, float]:
        """Return (kept lossless KV, kept lossy KV, selection, transmitted bytes)."""
        selection = self.select_tokens(request)
        kept = KVCache(
            k=request.reference_kv.k[:, selection.kept_positions, :],
            v=request.reference_kv.v[:, selection.kept_positions, :],
            model_name=request.reference_kv.model_name,
            full_layers=request.reference_kv.full_layers,
            full_channels=request.reference_kv.full_channels,
        )
        q_k = vectorwise_quantize(kept.k, self.num_bits)
        q_v = vectorwise_quantize(kept.v, self.num_bits)
        lossy = KVCache(
            k=q_k.dequantize(),
            v=q_v.dequantize(),
            model_name=kept.model_name,
            full_layers=kept.full_layers,
            full_channels=kept.full_channels,
        )
        payload_bytes = kept.full_num_elements * self.num_bits / 8.0
        metadata_bytes = 2.0 * 2 * kept.full_layers * kept.full_channels
        return kept, lossy, selection, payload_bytes + metadata_bytes

    def evaluate(self, request: LoadRequest) -> MethodResult:
        kept, lossy, selection, num_bytes = self.compressed_cache(request)
        transfer = request.link.transfer(num_bytes * request.concurrency, 0.0)
        distortion = kept.normalized_distortion_per_layer(lossy)
        quality = request.quality_model.score(
            task=request.task,
            layer_distortion=distortion,
            token_keep_fraction=selection.keep_fraction,
            important_token_coverage=selection.attention_coverage,
        )
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=num_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={
                "kept_tokens": selection.num_kept,
                "keep_fraction": selection.keep_fraction,
                "attention_coverage": selection.attention_coverage,
            },
        )


class ScissorhandsBaseline(H2OBaseline):
    """Scissorhands: persistence-of-importance token dropping.

    Behaviourally equivalent to the idealized H2O policy for our purposes
    (keep the most-attended tokens); it appears separately in the Figure 18
    comparison, typically at more aggressive keep fractions.
    """

    name = "scissorhands"

    def __init__(self, keep_fraction: float = 0.3, num_bits: int = 8) -> None:
        super().__init__(keep_fraction=keep_fraction, num_bits=num_bits, idealized=True)


__all__.append("ScissorhandsBaseline")

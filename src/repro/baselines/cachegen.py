"""CacheGen as a context-loading method.

This wraps the codec (:mod:`repro.core`) and the streamer
(:mod:`repro.streaming`) behind the same :class:`ContextLoadingMethod`
interface as the baselines, so every experiment compares methods uniformly.
Offline work (chunking and encoding at every level) is not part of TTFT; the
evaluated delay covers streaming, pipelined decoding, and the prefill of the
user's new question.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.decoder import CacheGenDecoder
from ..core.encoder import CacheGenEncoder
from ..metrics.system import TTFTBreakdown
from ..streaming.adaptation import FixedLevelPolicy, SLOAwareAdapter
from ..streaming.chunking import PreparedChunk, prepare_chunks
from ..streaming.streamer import KVStreamer
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["CacheGenMethod"]


class CacheGenMethod(ContextLoadingMethod):
    """The full CacheGen pipeline: offline encoding + adaptive streaming.

    Parameters
    ----------
    encoder:
        Fitted :class:`CacheGenEncoder` for the serving model.
    adaptive:
        Use the SLO-aware adapter of §5.3.  When False (the "CacheGen w/o
        adaptation" baseline of Figure 13) every chunk is streamed at
        ``fixed_level``.
    fixed_level:
        Level used when not adapting (defaults to the paper's default level).
    name:
        Override the method name shown in result tables.
    """

    #: Number of recently prepared contexts kept in memory.  Bandwidth sweeps
    #: re-evaluate the same context many times; caching avoids re-encoding it.
    _CACHE_SIZE = 2

    def __init__(
        self,
        encoder: CacheGenEncoder,
        adaptive: bool = True,
        fixed_level: str | None = None,
        name: str | None = None,
    ) -> None:
        self.encoder = encoder
        self.decoder = CacheGenDecoder(encoder)
        self.adaptive = adaptive
        self.fixed_level = fixed_level or encoder.config.default_level.name
        self.name = name or ("cachegen" if adaptive else "cachegen-static")
        self._prepared_cache: OrderedDict[tuple[str, str, int], list[PreparedChunk]] = OrderedDict()

    # ---------------------------------------------------------------- evaluate
    def evaluate(self, request: LoadRequest) -> MethodResult:
        prepared = self._prepared_chunks(request)
        streamer = KVStreamer(
            decoder=self.decoder,
            compute_model=request.compute_model,
            initial_throughput_bps=request.link.trace.bandwidth_at(0.0),
        )
        policy = self._policy(request)
        streamed = streamer.stream(
            prepared,
            link=request.link,
            policy=policy,
            slo_s=request.slo_s,
            gpu_share=request.gpu_share,
            concurrency=request.concurrency,
            reconstruct=True,
        )
        assert streamed.kv is not None
        distortion = request.reference_kv.normalized_distortion_per_layer(streamed.kv)
        quality = request.quality_model.score(task=request.task, layer_distortion=distortion)

        breakdown = TTFTBreakdown(
            network_s=streamed.network_time_s,
            decode_s=max(streamed.total_time_s - streamed.network_time_s, 0.0),
            compute_s=self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=streamed.total_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={
                "configs": streamed.configs,
                "slo_violated": streamed.slo_violated,
                "loading_delay_s": streamed.total_time_s,
                "decode_flops": request.compute_model.decode_flops(request.num_tokens),
            },
        )

    # ------------------------------------------------------------------ pieces
    def _policy(self, request: LoadRequest):
        # Adaptation only has a deadline to work against when an SLO is set
        # (Figures 7 and 13); the paper's headline results stream every chunk
        # at the default encoding level.
        if self.adaptive and request.slo_s is not None:
            level_names = [level.name for level in self.encoder.config.levels]
            return SLOAwareAdapter(level_names=level_names)
        return FixedLevelPolicy(level_name=self.fixed_level)

    def _prepared_chunks(self, request: LoadRequest) -> list[PreparedChunk]:
        key = (
            request.reference_kv.model_name,
            request.record.context_id,
            request.num_tokens,
        )
        if key in self._prepared_cache:
            self._prepared_cache.move_to_end(key)
            return self._prepared_cache[key]
        prepared = prepare_chunks(request.reference_kv, self.encoder)
        self._prepared_cache[key] = prepared
        while len(self._prepared_cache) > self._CACHE_SIZE:
            self._prepared_cache.popitem(last=False)
        return prepared

    # --------------------------------------------------------------- accessors
    def default_level_bytes(self, request: LoadRequest) -> float:
        """Compressed bytes of the context at the default encoding level."""
        prepared = self._prepared_chunks(request)
        return sum(chunk.bytes_for_level(self.fixed_level) for chunk in prepared)

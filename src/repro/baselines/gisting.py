"""Gisting: compressing contexts into a few learned "gist" tokens (Figure 18c).

Gisting retrains the LLM's attention so that an arbitrarily long context can
be condensed into a handful of gist tokens whose KV cache stands in for the
whole context.  The transmitted KV cache is therefore tiny, but quality drops
as the compression ratio grows, and the method requires model retraining
(unlike CacheGen).  The public pre-trained gisting model only accepts up to
512 tokens, which is why the paper evaluates it on a short-context QA dataset
(PIQA); the same applies here.
"""

from __future__ import annotations

import numpy as np

from ..metrics.system import TTFTBreakdown
from .base import ContextLoadingMethod, LoadRequest, MethodResult

__all__ = ["GistingBaseline"]


class GistingBaseline(ContextLoadingMethod):
    """Context condensed into ``num_tokens / compression_ratio`` gist tokens.

    Parameters
    ----------
    compression_ratio:
        How many context tokens are folded into one gist token.
    retrain_quality_factor:
        Multiplicative quality penalty for running the retrained (gist)
        attention instead of the original model.
    """

    name = "gisting"

    def __init__(self, compression_ratio: float = 8.0, retrain_quality_factor: float = 0.97) -> None:
        if compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        if not 0.0 < retrain_quality_factor <= 1.0:
            raise ValueError("retrain_quality_factor must be in (0, 1]")
        self.compression_ratio = compression_ratio
        self.retrain_quality_factor = retrain_quality_factor

    def evaluate(self, request: LoadRequest) -> MethodResult:
        cfg = request.llm.config
        gist_tokens = max(int(np.ceil(request.num_tokens / self.compression_ratio)), 1)
        # Gist KV stays in fp16 tensor form.
        num_bytes = cfg.kv_elements_per_token * gist_tokens * 2.0
        transfer = request.link.transfer(num_bytes * request.concurrency, 0.0)

        keep_fraction = min(gist_tokens / request.num_tokens, 1.0)
        coverage = float(min(1.0, (1.0 / self.compression_ratio) ** 0.25))
        quality = request.quality_model.score(
            task=request.task,
            layer_distortion=np.zeros(request.reference_kv.num_layers),
            token_keep_fraction=keep_fraction,
            important_token_coverage=coverage * self.retrain_quality_factor,
        )
        breakdown = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=self.prompt_prefill_delay(request),
        )
        return MethodResult(
            method=self.name,
            transmitted_bytes=num_bytes,
            breakdown=breakdown,
            quality=quality,
            extras={"gist_tokens": gist_tokens, "compression_ratio": self.compression_ratio},
        )

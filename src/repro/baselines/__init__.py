"""Context-loading methods: CacheGen and every baseline the paper compares."""

from .base import ContextLoadingMethod, LoadRequest, MethodResult
from .cachegen import CacheGenMethod
from .composition import CacheGenOnCompressionBaseline
from .gisting import GistingBaseline
from .h2o import H2OBaseline, ScissorhandsBaseline
from .llmlingua import LLMLinguaBaseline
from .smaller_model import SmallerModelBaseline
from .text_context import TextContextBaseline
from .uniform_quant import UniformQuantizationBaseline

__all__ = [
    "CacheGenMethod",
    "CacheGenOnCompressionBaseline",
    "ContextLoadingMethod",
    "GistingBaseline",
    "H2OBaseline",
    "LLMLinguaBaseline",
    "LoadRequest",
    "MethodResult",
    "ScissorhandsBaseline",
    "SmallerModelBaseline",
    "TextContextBaseline",
    "UniformQuantizationBaseline",
]

"""repro — a from-scratch reproduction of CacheGen (SIGCOMM 2024).

CacheGen is a fast context-loading module for LLM serving: it encodes the KV
cache of a reusable long context into compact bitstreams (change-based
encoding, layer-wise quantization, arithmetic coding with channel/layer
probability models) and streams those bitstreams with bandwidth adaptation so
that the time-to-first-token stays within an SLO.

Public entry points
-------------------
* :class:`repro.serving.ContextLoadingEngine` — end-to-end engine: ingest a
  context once, then answer queries with CacheGen streaming underneath.
* :class:`repro.core.CacheGenEncoder` / :class:`repro.core.CacheGenDecoder` —
  the codec itself.
* :class:`repro.streaming.KVStreamer` — SLO-aware streaming of encoded chunks.
* :mod:`repro.baselines` — every method the paper compares against.
* :mod:`repro.experiments` — one module per table/figure of the evaluation.
* :mod:`repro.cluster` — sharded, replicated, capacity-bounded KV-cache
  cluster with a multi-tenant serving frontend and workload simulator.
"""

from .cluster import ClusterFrontend, ClusterSimulator, WorkloadGenerator
from .core import CacheGenConfig, CacheGenDecoder, CacheGenEncoder, EncodingLevel, KVCache
from .llm import ComputeModel, ModelConfig, QualityModel, SyntheticLLM, get_model_config
from .network import ConstantTrace, NetworkLink, RandomTrace, StepTrace, gbps
from .serving import ContextLoadingEngine
from .streaming import KVStreamer, SLOAwareAdapter, prepare_chunks

__version__ = "1.0.0"

__all__ = [
    "CacheGenConfig",
    "CacheGenDecoder",
    "CacheGenEncoder",
    "ClusterFrontend",
    "ClusterSimulator",
    "ComputeModel",
    "ConstantTrace",
    "ContextLoadingEngine",
    "EncodingLevel",
    "KVCache",
    "KVStreamer",
    "ModelConfig",
    "NetworkLink",
    "QualityModel",
    "RandomTrace",
    "SLOAwareAdapter",
    "StepTrace",
    "SyntheticLLM",
    "WorkloadGenerator",
    "__version__",
    "gbps",
    "get_model_config",
    "prepare_chunks",
]

"""repro — a from-scratch reproduction of CacheGen (SIGCOMM 2024).

CacheGen is a fast context-loading module for LLM serving: it encodes the KV
cache of a reusable long context into compact bitstreams (change-based
encoding, layer-wise quantization, arithmetic coding with channel/layer
probability models) and streams those bitstreams with bandwidth adaptation so
that the time-to-first-token stays within an SLO.

Public entry points
-------------------
* :class:`repro.ServingSpec` / :func:`repro.serve` — the unified serving API:
  declare the deployment (codec levels, store topology single/tiered/cluster,
  node count, replication, concurrency, admission) once, then drive any
  backend with the same requests and get one :class:`repro.RunReport` shape.
* :class:`repro.core.CacheGenEncoder` / :class:`repro.core.CacheGenDecoder` —
  the codec itself.
* :class:`repro.streaming.KVStreamer` — SLO-aware streaming of encoded chunks.
* :class:`repro.Tracer` / :func:`repro.write_chrome_trace` — full-run
  telemetry: per-request spans, resource timelines, a metrics registry, and
  Perfetto-loadable trace export (``serve(..., tracer=Tracer())``).
* :class:`repro.SLOObjective` / :func:`repro.write_dashboard` — operational
  observability: windowed time-series on every ``RunReport``
  (``report.timeseries``), burn-rate SLO alerting (``report.alerts``), and a
  self-contained HTML run dashboard.
* :class:`repro.FaultSchedule` / :class:`repro.ResiliencePolicy` — fault
  injection and self-healing: deterministic simulated-time fault schedules
  (``serve(..., faults=...)``) answered by retries, hedged reads, circuit
  breakers, background re-replication and graceful degradation, reported on
  ``report.resilience``.
* :class:`repro.GpuWorkerPool` / :class:`repro.AutoscaleSpec` — multi-GPU
  fleet serving: set ``gpu_workers`` / ``dispatch_policy`` / ``autoscale`` on
  the spec and the event engine dispatches across a pool of GPU workers.
* :mod:`repro.baselines` — every method the paper compares against.
* :mod:`repro.experiments` — one module per table/figure of the evaluation.
* :mod:`repro.cluster` — sharded, replicated, capacity-bounded KV-cache
  cluster with a multi-tenant serving frontend and workload simulator.

The pre-spec entry points (:class:`repro.ContextLoadingEngine`,
:class:`repro.ClusterFrontend`, ``ConcurrentEngine``) remain as deprecation
shims over the same machinery.
"""

from .cluster import ClusterFrontend, ClusterSimulator, WorkloadGenerator
from .core import CacheGenConfig, CacheGenDecoder, CacheGenEncoder, EncodingLevel, KVCache
from .faults import (
    BreakerPolicy,
    Corruption,
    FaultSchedule,
    GpuStraggler,
    HedgePolicy,
    LinkDegradation,
    NodeCrash,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
)
from .llm import ComputeModel, ModelConfig, QualityModel, SyntheticLLM, get_model_config
from .network import ConstantTrace, NetworkLink, RandomTrace, StepTrace, gbps
from .serving import (
    AutoscaleSpec,
    ContextLoadingEngine,
    DispatchPolicy,
    Driver,
    GpuWorkerPool,
    LeastLoadedDispatch,
    LocalityDispatch,
    RunReport,
    ServeRequest,
    ServeResponse,
    ServingSpec,
    StickyDispatch,
    build_backend,
    make_dispatch,
    serve,
)
from .streaming import KVStreamer, SLOAwareAdapter, prepare_chunks
from .telemetry import (
    AlertEngine,
    SLOObjective,
    TimeSeriesRecorder,
    Tracer,
    render_dashboard,
    render_diff_dashboard,
    write_chrome_trace,
    write_dashboard,
    write_jsonl,
)

__version__ = "1.1.0"

__all__ = [
    "AlertEngine",
    "AutoscaleSpec",
    "BreakerPolicy",
    "CacheGenConfig",
    "CacheGenDecoder",
    "CacheGenEncoder",
    "ClusterFrontend",
    "ClusterSimulator",
    "ComputeModel",
    "ConstantTrace",
    "ContextLoadingEngine",
    "Corruption",
    "DispatchPolicy",
    "Driver",
    "EncodingLevel",
    "FaultSchedule",
    "GpuStraggler",
    "GpuWorkerPool",
    "HedgePolicy",
    "KVCache",
    "KVStreamer",
    "LeastLoadedDispatch",
    "LinkDegradation",
    "LocalityDispatch",
    "ModelConfig",
    "NetworkLink",
    "NodeCrash",
    "QualityModel",
    "RandomTrace",
    "ResiliencePolicy",
    "ResilienceReport",
    "RetryPolicy",
    "RunReport",
    "SLOAwareAdapter",
    "SLOObjective",
    "ServeRequest",
    "ServeResponse",
    "ServingSpec",
    "StepTrace",
    "StickyDispatch",
    "SyntheticLLM",
    "TimeSeriesRecorder",
    "Tracer",
    "WorkloadGenerator",
    "__version__",
    "build_backend",
    "gbps",
    "get_model_config",
    "make_dispatch",
    "prepare_chunks",
    "render_dashboard",
    "render_diff_dashboard",
    "serve",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
]

"""Context chunking and offline per-chunk encoding.

CacheGen splits a context into chunks of consecutive tokens (1.5K tokens by
default) and, offline, encodes each chunk's KV at every encoding level so that
the streamer can later pick a per-chunk configuration: one of the encoding
levels, or the raw text of the chunk (to be recomputed by the LLM).  Chunks
are encoded independently, so chunks sent at different levels can be decoded
independently and concatenated (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.encoder import CacheGenEncoder, EncodedKV
from ..core.kv_cache import KVCache

__all__ = ["ContextChunk", "PreparedChunk", "split_context", "prepare_chunks"]


@dataclass
class ContextChunk:
    """One chunk of consecutive context tokens and its KV slice."""

    index: int
    token_start: int
    token_end: int
    kv: KVCache

    @property
    def num_tokens(self) -> int:
        return self.token_end - self.token_start


@dataclass
class PreparedChunk:
    """A context chunk encoded at every level, ready for streaming.

    Attributes
    ----------
    chunk:
        The underlying chunk (with its lossless KV slice, used both as the
        decode reference and as the result of the text/recompute fallback).
    encodings:
        Mapping from encoding level name to the encoded bitstream.
    text_bytes:
        Size of the chunk in text form, for the recompute fallback.
    """

    chunk: ContextChunk
    encodings: Mapping[str, EncodedKV]
    text_bytes: int

    @property
    def index(self) -> int:
        return self.chunk.index

    @property
    def num_tokens(self) -> int:
        return self.chunk.num_tokens

    def bytes_for_level(self, level_name: str) -> float:
        """Compressed bytes of this chunk at a given level."""
        return self.encodings[level_name].compressed_bytes

    def level_names(self) -> list[str]:
        return list(self.encodings)


def split_context(kv: KVCache, chunk_tokens: int) -> list[ContextChunk]:
    """Split a context's KV cache into chunks of ``chunk_tokens`` tokens."""
    if chunk_tokens <= 0:
        raise ValueError("chunk_tokens must be positive")
    chunks = []
    for index, start in enumerate(range(0, kv.num_tokens, chunk_tokens)):
        end = min(start + chunk_tokens, kv.num_tokens)
        chunks.append(
            ContextChunk(index=index, token_start=start, token_end=end, kv=kv.slice_tokens(start, end))
        )
    return chunks


def prepare_chunks(
    kv: KVCache,
    encoder: CacheGenEncoder,
    text_bytes_per_token: float | None = None,
) -> list[PreparedChunk]:
    """Offline preparation: chunk a context and encode every chunk at every level.

    Parameters
    ----------
    kv:
        The full context's KV cache (produced once by ``calculate_kv``).
    encoder:
        A fitted :class:`CacheGenEncoder`; its configuration supplies the
        chunk length and the set of encoding levels.
    text_bytes_per_token:
        Size of the text fallback per token; defaults to the encoder config.

    Example
    -------
    >>> chunks = prepare_chunks(kv, encoder)  # doctest: +SKIP
    >>> [chunk.num_tokens for chunk in chunks]  # doctest: +SKIP
    """
    cfg = encoder.config
    bytes_per_token = (
        text_bytes_per_token if text_bytes_per_token is not None else cfg.text_bytes_per_token
    )
    prepared = []
    for chunk in split_context(kv, cfg.chunk_tokens):
        encodings = encoder.encode_all_levels(chunk.kv)
        prepared.append(
            PreparedChunk(
                chunk=chunk,
                encodings=encodings,
                text_bytes=int(round(chunk.num_tokens * bytes_per_token)),
            )
        )
    return prepared

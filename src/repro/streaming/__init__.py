"""KV cache streaming: chunking, bandwidth adaptation, and the streamer."""

from .adaptation import (
    TEXT_CONFIG,
    AdaptationPolicy,
    FixedLevelPolicy,
    SLOAwareAdapter,
    StreamDecision,
)
from .chunking import ContextChunk, PreparedChunk, prepare_chunks, split_context
from .scheduler import BatchResult, ConcurrentScheduler
from .streamer import KVStreamer, StreamedChunk, StreamingResult

__all__ = [
    "AdaptationPolicy",
    "BatchResult",
    "ConcurrentScheduler",
    "ContextChunk",
    "FixedLevelPolicy",
    "KVStreamer",
    "PreparedChunk",
    "SLOAwareAdapter",
    "StreamDecision",
    "StreamedChunk",
    "StreamingResult",
    "TEXT_CONFIG",
    "prepare_chunks",
    "split_context",
]

"""The KV streamer's bandwidth-adaptation logic (Algorithm 1, §5.3 / §C.1).

Before sending each context chunk, the adapter estimates the available
throughput from the previous chunk's measured throughput, computes the time
remaining until the TTFT service-level objective (SLO), and picks the
*streaming configuration* for the next chunk:

* send the chunk's KV bitstream at one of the encoding levels, or
* fall back to sending the chunk as text and let the LLM recompute its KV.

Following Algorithm 1, feasibility is evaluated over *all remaining chunks*:
a configuration is feasible if finishing the remaining work with it fits in
the remaining time.  Among feasible configurations the one with the least
compression loss wins (text has none, then the encoding levels from highest
to lowest quality); if nothing fits, the smallest representation is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from .chunking import PreparedChunk

__all__ = ["StreamDecision", "AdaptationPolicy", "SLOAwareAdapter", "FixedLevelPolicy", "TEXT_CONFIG"]

#: Sentinel configuration name for the text / recompute fallback.
TEXT_CONFIG = "text"


@dataclass(frozen=True)
class StreamDecision:
    """Configuration chosen for one chunk."""

    config: str
    expected_delay_s: float
    feasible: bool

    @property
    def is_text(self) -> bool:
        return self.config == TEXT_CONFIG


class AdaptationPolicy(Protocol):
    """Interface of per-chunk configuration policies."""

    def decide(
        self,
        remaining_chunks: Sequence[PreparedChunk],
        throughput_bps: float,
        remaining_time_s: float,
        recompute_time_s: float,
        concurrency: int = 1,
    ) -> StreamDecision:
        """Choose the configuration for ``remaining_chunks[0]``."""
        ...


@dataclass
class FixedLevelPolicy:
    """Always stream at one encoding level (the "CacheGen w/o adaptation" baseline)."""

    level_name: str

    def decide(
        self,
        remaining_chunks: Sequence[PreparedChunk],
        throughput_bps: float,
        remaining_time_s: float,
        recompute_time_s: float,
        concurrency: int = 1,
    ) -> StreamDecision:
        if not remaining_chunks:
            raise ValueError("no chunks remaining")
        next_chunk = remaining_chunks[0]
        expected = concurrency * next_chunk.bytes_for_level(self.level_name) * 8.0 / throughput_bps
        return StreamDecision(
            config=self.level_name, expected_delay_s=expected, feasible=expected <= remaining_time_s
        )


@dataclass
class SLOAwareAdapter:
    """Algorithm 1: SLO-aware per-chunk configuration selection.

    Parameters
    ----------
    level_names:
        Encoding level names ordered from highest quality (largest) to lowest
        quality (smallest), matching the encoder configuration.
    allow_text_fallback:
        Whether the text / recompute configuration is a candidate.

    Example
    -------
    >>> adapter = SLOAwareAdapter(["high", "medium", "low"])
    >>> adapter.decide(chunks, next_index=0, throughput_bps=gbps(1.0),
    ...                elapsed_s=0.2, slo_s=1.0)  # doctest: +SKIP
    """

    level_names: Sequence[str]
    allow_text_fallback: bool = True

    def decide(
        self,
        remaining_chunks: Sequence[PreparedChunk],
        throughput_bps: float,
        remaining_time_s: float,
        recompute_time_s: float,
        concurrency: int = 1,
    ) -> StreamDecision:
        """Pick the least-lossy configuration that still meets the SLO.

        Parameters
        ----------
        remaining_chunks:
            Chunks not yet sent; the decision applies to the first one.
        throughput_bps:
            Throughput measured for the previous chunk (assumed to persist).
        remaining_time_s:
            ``SLO - time_elapsed``.
        recompute_time_s:
            Prefill time for *all remaining* chunk tokens if sent as text.
        concurrency:
            Number of concurrent requests sharing the link for this chunk
            index (``N_c`` in §5.3); expected delays scale by it.
        """
        if not remaining_chunks:
            raise ValueError("no chunks remaining")
        if throughput_bps <= 0:
            raise ValueError("throughput must be positive")
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")

        # Text / recompute: zero compression loss, bounded by GPU speed.
        if self.allow_text_fallback and recompute_time_s <= remaining_time_s:
            next_chunk = remaining_chunks[0]
            per_chunk_recompute = recompute_time_s * (
                next_chunk.num_tokens / max(sum(c.num_tokens for c in remaining_chunks), 1)
            )
            return StreamDecision(
                config=TEXT_CONFIG, expected_delay_s=per_chunk_recompute, feasible=True
            )

        # Otherwise the highest (least lossy) level whose remaining transfer
        # fits in the remaining time.
        fallback: StreamDecision | None = None
        for level_name in self.level_names:
            total_bytes = sum(chunk.bytes_for_level(level_name) for chunk in remaining_chunks)
            expected_total = concurrency * total_bytes * 8.0 / throughput_bps
            next_bytes = remaining_chunks[0].bytes_for_level(level_name)
            expected_next = concurrency * next_bytes * 8.0 / throughput_bps
            decision = StreamDecision(
                config=level_name,
                expected_delay_s=expected_next,
                feasible=expected_total <= remaining_time_s,
            )
            if decision.feasible:
                return decision
            fallback = decision

        # Nothing fits: send the smallest representation of the next chunk.
        assert fallback is not None
        if self.allow_text_fallback and recompute_time_s < (
            sum(c.bytes_for_level(self.level_names[-1]) for c in remaining_chunks)
            * 8.0
            * concurrency
            / throughput_bps
        ):
            next_chunk = remaining_chunks[0]
            per_chunk_recompute = recompute_time_s * (
                next_chunk.num_tokens / max(sum(c.num_tokens for c in remaining_chunks), 1)
            )
            return StreamDecision(
                config=TEXT_CONFIG, expected_delay_s=per_chunk_recompute, feasible=False
            )
        return fallback

"""Batching of concurrent context-loading requests (§5.3, Figure 12 left).

When multiple requests arrive within a batching window, CacheGen streams them
together.  Earlier versions modeled the contention with a static ``gpu_share
= 1/n`` split; :class:`ConcurrentScheduler` now drives the event-driven
concurrent simulator instead: transfers serialize on the shared link, decodes
and prefills serialize on the GPU run queue (with continuous batching of
co-located bitstream decodes), and each request's delay — including its
queueing delay — emerges from the schedule rather than from a hard-coded
fraction.  ``max_batch_size`` plays its §5.3 role as the admission limit: at
most ``B`` requests are in flight, the rest queue FIFO behind them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..network.link import NetworkLink
from ..serving.concurrent.processes import ChunkedKVLoad
from ..serving.concurrent.simulator import ConcurrentLoadSimulator
from .adaptation import AdaptationPolicy
from .chunking import PreparedChunk
from .streamer import KVStreamer, StreamedChunk, StreamingResult

__all__ = ["BatchResult", "ConcurrentScheduler"]


@dataclass
class BatchResult:
    """Outcome of streaming a batch of concurrent requests."""

    per_request: list[StreamingResult] = field(default_factory=list)

    @property
    def max_loading_delay_s(self) -> float:
        return max((r.total_time_s for r in self.per_request), default=0.0)

    @property
    def mean_loading_delay_s(self) -> float:
        if not self.per_request:
            return 0.0
        return sum(r.total_time_s for r in self.per_request) / len(self.per_request)

    @property
    def mean_queueing_delay_s(self) -> float:
        """Average time requests spent waiting for the link and the GPU."""
        if not self.per_request:
            return 0.0
        return sum(r.queueing_s for r in self.per_request) / len(self.per_request)


class ConcurrentScheduler:
    """Streams several requests' contexts over a shared link and GPU.

    Parameters
    ----------
    streamer:
        The underlying single-request streamer (supplies the decoder, the
        compute model and the initial throughput prior).
    max_batch_size:
        Maximum number of requests in flight on the GPU server (``B`` in
        §5.3); later arrivals are admitted as earlier requests finish.  Also
        caps the batched decode launches.
    batch_overhead:
        Marginal cost of each extra decode in a batched launch, as a fraction
        of its solo duration.
    """

    def __init__(
        self,
        streamer: KVStreamer,
        max_batch_size: int = 16,
        batch_overhead: float = 0.2,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        self.streamer = streamer
        self.max_batch_size = max_batch_size
        self.batch_overhead = batch_overhead

    def stream_batch(
        self,
        requests: Sequence[Sequence[PreparedChunk]],
        link: NetworkLink,
        policy: AdaptationPolicy,
        slo_s: float | None = None,
        reconstruct: bool = False,
    ) -> BatchResult:
        """Stream the contexts of concurrent requests and report per-request delays.

        All requests arrive at time zero, share ``link`` and the GPU, and are
        admitted up to ``max_batch_size`` at a time; the per-request timelines
        (including the queueing each chunk suffered) come out of the
        discrete-event schedule.
        """
        if not requests:
            raise ValueError("no requests to schedule")
        simulator = ConcurrentLoadSimulator(
            max_decode_batch=self.max_batch_size,
            batch_overhead=self.batch_overhead,
            admission_limit=self.max_batch_size,
            initial_throughput_bps=self.streamer.initial_throughput_bps,
        )
        processes = []
        for prepared in requests:
            process = ChunkedKVLoad(
                prepared,
                policy=policy,
                compute=self.streamer.compute_model,
                slo_s=slo_s,
                batch_key="gpu-server",
            )
            processes.append(process)
            simulator.add_request(0.0, link, process)
        timelines = simulator.run()

        result = BatchResult()
        for process, timeline in zip(processes, timelines):
            streamed = StreamingResult(slo_s=slo_s, queueing_s=timeline.queueing_s)
            streamed.chunks = [
                StreamedChunk(
                    index=stage.index,
                    config=stage.config,
                    num_bytes=stage.num_bytes,
                    transfer_start_s=stage.transfer_start_s,
                    transfer_end_s=stage.transfer_end_s,
                    ready_at_s=stage.ready_at_s,
                    achieved_throughput_bps=stage.achieved_throughput_bps,
                )
                for stage in timeline.stages
            ]
            if reconstruct:
                streamed.kv = process.materialise(self.streamer.decoder)
            result.per_request.append(streamed)
        return result

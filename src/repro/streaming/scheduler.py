"""Batching of concurrent context-loading requests (§5.3, Figure 12 left).

When multiple requests arrive within a batching window, CacheGen streams them
together: every request is divided into chunks of the same length, and for
each chunk index the expected per-configuration delay is multiplied by the
number of requests that still have that chunk.  On the GPU the requests are
batched, so each gets a ``1/n`` share of the compute.

:class:`ConcurrentScheduler` wraps :class:`~repro.streaming.streamer.KVStreamer`
to produce per-request TTFT-style loading delays under a given concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..network.link import NetworkLink
from .adaptation import AdaptationPolicy
from .chunking import PreparedChunk
from .streamer import KVStreamer, StreamingResult

__all__ = ["BatchResult", "ConcurrentScheduler"]


@dataclass
class BatchResult:
    """Outcome of streaming a batch of concurrent requests."""

    per_request: list[StreamingResult] = field(default_factory=list)

    @property
    def max_loading_delay_s(self) -> float:
        return max((r.total_time_s for r in self.per_request), default=0.0)

    @property
    def mean_loading_delay_s(self) -> float:
        if not self.per_request:
            return 0.0
        return sum(r.total_time_s for r in self.per_request) / len(self.per_request)


class ConcurrentScheduler:
    """Streams several requests' contexts over a shared link and GPU.

    Parameters
    ----------
    streamer:
        The underlying single-request streamer.
    max_batch_size:
        Maximum number of requests the GPU server can process together (``B``
        in §5.3); larger arrivals are split into successive batches.
    """

    def __init__(self, streamer: KVStreamer, max_batch_size: int = 16) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        self.streamer = streamer
        self.max_batch_size = max_batch_size

    def stream_batch(
        self,
        requests: Sequence[Sequence[PreparedChunk]],
        link: NetworkLink,
        policy: AdaptationPolicy,
        slo_s: float | None = None,
        reconstruct: bool = False,
    ) -> BatchResult:
        """Stream the contexts of concurrent requests and report per-request delays.

        Requests beyond ``max_batch_size`` queue behind the first batch; the
        delay model for queued batches simply adds the preceding batch's
        completion time, which matches how the paper's GPU server processes
        batches back to back.
        """
        if not requests:
            raise ValueError("no requests to schedule")
        result = BatchResult()
        batch_offset = 0.0
        for start in range(0, len(requests), self.max_batch_size):
            batch = list(requests[start : start + self.max_batch_size])
            n = len(batch)
            batch_results = []
            for prepared in batch:
                streamed = self.streamer.stream(
                    prepared,
                    link=link,
                    policy=policy,
                    slo_s=slo_s,
                    gpu_share=1.0 / n,
                    concurrency=n,
                    reconstruct=reconstruct,
                )
                batch_results.append(streamed)
            # All requests in a batch complete together (padded batching); a
            # queued batch starts after the previous one finishes.
            batch_delay = max(r.total_time_s for r in batch_results)
            for streamed in batch_results:
                streamed.chunks = [
                    chunk for chunk in streamed.chunks
                ]  # keep chunk records as-is
                streamed.slo_s = slo_s
            if batch_offset:
                for streamed in batch_results:
                    offset_chunks = [
                        type(chunk)(
                            index=chunk.index,
                            config=chunk.config,
                            num_bytes=chunk.num_bytes,
                            transfer_start_s=chunk.transfer_start_s + batch_offset,
                            transfer_end_s=chunk.transfer_end_s + batch_offset,
                            ready_at_s=chunk.ready_at_s + batch_offset,
                            achieved_throughput_bps=chunk.achieved_throughput_bps,
                        )
                        for chunk in streamed.chunks
                    ]
                    streamed.chunks = offset_chunks
            result.per_request.extend(batch_results)
            batch_offset += batch_delay
        return result

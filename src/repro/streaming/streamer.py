"""The KV cache streamer: SLO-aware streaming of encoded KV chunks.

The streamer drives the end-to-end fetch of a context's KV cache over a
(bandwidth-varying) link:

1. before sending each chunk it asks the adaptation policy for a streaming
   configuration (an encoding level or the text fallback),
2. it transfers the chosen representation over the link,
3. it pipelines the receiver-side work (GPU bitstream decode for KV chunks,
   prefill for text chunks) with the transfer of the following chunk,
4. it measures the achieved throughput, which feeds the next decision.

The result records the full timeline (for the Figure 7 time-series and the
Figure 13 SLO-violation study) and reconstructs the KV cache actually handed
to the model so generation quality can be evaluated downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.decoder import CacheGenDecoder
from ..core.kv_cache import KVCache
from ..llm.compute_model import ComputeModel
from ..network.link import NetworkLink
from .adaptation import AdaptationPolicy, StreamDecision, TEXT_CONFIG
from .chunking import PreparedChunk

__all__ = ["StreamedChunk", "StreamingResult", "KVStreamer"]


@dataclass(frozen=True)
class StreamedChunk:
    """Timeline record of one streamed chunk."""

    index: int
    config: str
    num_bytes: float
    transfer_start_s: float
    transfer_end_s: float
    ready_at_s: float
    achieved_throughput_bps: float

    @property
    def is_text(self) -> bool:
        return self.config == TEXT_CONFIG


@dataclass
class StreamingResult:
    """Outcome of streaming one context's KV cache."""

    chunks: list[StreamedChunk] = field(default_factory=list)
    kv: KVCache | None = None
    slo_s: float | None = None
    #: Time spent waiting for shared resources (link/GPU queues).  Zero for a
    #: single streamed request; filled in by the concurrent scheduler.
    queueing_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Time until the last chunk is decoded / recomputed (loading delay)."""
        if not self.chunks:
            return 0.0
        return max(chunk.ready_at_s for chunk in self.chunks)

    @property
    def network_time_s(self) -> float:
        if not self.chunks:
            return 0.0
        return max(chunk.transfer_end_s for chunk in self.chunks)

    @property
    def total_bytes(self) -> float:
        return sum(chunk.num_bytes for chunk in self.chunks)

    @property
    def slo_violated(self) -> bool:
        if self.slo_s is None:
            return False
        return self.total_time_s > self.slo_s

    @property
    def configs(self) -> list[str]:
        return [chunk.config for chunk in self.chunks]


class KVStreamer:
    """Streams a prepared context's KV chunks over a link with adaptation.

    Parameters
    ----------
    decoder:
        The CacheGen decoder used to reconstruct KV chunks (and to account for
        the decode stage of the pipeline).
    compute_model:
        Compute/latency model of the GPU server (decode delay, prefill delay
        for text chunks).
    initial_throughput_bps:
        Throughput assumed for the first chunk when no prior knowledge is
        available.  The paper starts from a default medium encoding level; any
        reasonable prior works because the estimate is corrected after the
        first chunk.

    Example
    -------
    >>> streamer = KVStreamer(decoder, compute_model)  # doctest: +SKIP
    >>> result = streamer.stream(chunks, link, slo_s=1.0)  # doctest: +SKIP
    >>> result.total_time_s, result.configs  # doctest: +SKIP
    """

    def __init__(
        self,
        decoder: CacheGenDecoder,
        compute_model: ComputeModel,
        initial_throughput_bps: float = 3e9,
    ) -> None:
        if initial_throughput_bps <= 0:
            raise ValueError("initial_throughput_bps must be positive")
        self.decoder = decoder
        self.compute_model = compute_model
        self.initial_throughput_bps = initial_throughput_bps

    def stream(
        self,
        prepared_chunks: Sequence[PreparedChunk],
        link: NetworkLink,
        policy: AdaptationPolicy,
        slo_s: float | None = None,
        gpu_share: float = 1.0,
        concurrency: int = 1,
        reconstruct: bool = True,
    ) -> StreamingResult:
        """Stream all chunks of one context and return the timeline.

        Parameters
        ----------
        prepared_chunks:
            Offline-encoded chunks of the context.
        link:
            The network link between the storage server and the GPU server.
        policy:
            Adaptation policy deciding each chunk's configuration.
        slo_s:
            TTFT service-level objective; ``None`` means "no deadline" (the
            adapter then simply picks the highest feasible quality, and the
            result never reports an SLO violation).
        gpu_share:
            Fraction of the GPU available to this request (1/n under n
            concurrent requests).
        concurrency:
            Number of concurrent requests sharing the link (scales expected
            and actual transfer delays, §5.3).
        reconstruct:
            Whether to decode and assemble the delivered KV cache (disable for
            latency-only sweeps).
        """
        if not prepared_chunks:
            raise ValueError("no chunks to stream")
        result = StreamingResult(slo_s=slo_s)
        throughput = self.initial_throughput_bps
        transfer_clock = 0.0
        ready_clock = 0.0
        delivered: list[KVCache] = []

        for position, prepared in enumerate(prepared_chunks):
            remaining = list(prepared_chunks[position:])
            remaining_tokens = sum(chunk.num_tokens for chunk in remaining)
            recompute_time = self.compute_model.prefill_delay(remaining_tokens, gpu_share)
            remaining_time = float("inf") if slo_s is None else max(slo_s - transfer_clock, 0.0)
            decision = policy.decide(
                remaining,
                throughput_bps=throughput,
                remaining_time_s=remaining_time,
                recompute_time_s=recompute_time,
                concurrency=concurrency,
            )

            num_bytes, process_delay = self._configuration_cost(prepared, decision, gpu_share)
            transfer = link.transfer(num_bytes * concurrency, transfer_clock)
            transfer_clock = transfer.end_time
            ready_clock = max(transfer_clock, ready_clock) + process_delay
            throughput = max(transfer.achieved_throughput_bps / concurrency, 1.0)

            result.chunks.append(
                StreamedChunk(
                    index=prepared.index,
                    config=decision.config,
                    num_bytes=num_bytes,
                    transfer_start_s=transfer.start_time,
                    transfer_end_s=transfer.end_time,
                    ready_at_s=ready_clock,
                    achieved_throughput_bps=throughput,
                )
            )
            if reconstruct:
                delivered.append(self._materialise_chunk(prepared, decision))

        if reconstruct and delivered:
            result.kv = KVCache.concat(delivered)
        return result

    # ------------------------------------------------------------------ pieces
    def _configuration_cost(
        self, prepared: PreparedChunk, decision: StreamDecision, gpu_share: float
    ) -> tuple[float, float]:
        """Bytes to transfer and receiver-side processing delay for a decision."""
        if decision.is_text:
            num_bytes = float(prepared.text_bytes)
            process_delay = self.compute_model.prefill_delay(prepared.num_tokens, gpu_share)
        else:
            num_bytes = prepared.bytes_for_level(decision.config)
            process_delay = self.compute_model.decode_delay(prepared.num_tokens, gpu_share)
        return num_bytes, process_delay

    def _materialise_chunk(self, prepared: PreparedChunk, decision: StreamDecision) -> KVCache:
        """The KV cache the model ends up with for this chunk."""
        if decision.is_text:
            # Recomputing from text reproduces the lossless KV for this chunk.
            return prepared.chunk.kv
        return self.decoder.decode(prepared.encodings[decision.config])

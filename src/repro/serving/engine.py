"""End-to-end context-loading engine (the §6 serving integration).

This is the component an application framework (the paper integrates with
LangChain) talks to:

* :meth:`ContextLoadingEngine.ingest` computes a context's KV cache once
  (``calculate_kv``), encodes it at every level and stores the bitstreams
  (``store_kv``);
* :meth:`ContextLoadingEngine.query` answers a question against a context —
  if its KV cache is stored, the engine streams and decodes it (adapting to
  bandwidth and an optional TTFT SLO) and calls ``generate_with_kv``;
  otherwise it falls back to fetching the text and prefilling.

The engine also follows §7.3's observation that for short contexts loading
the text can be faster than loading the KV cache: when the estimated
text-path TTFT is lower, it reverts to the text path even for stored
contexts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..core.kv_cache import KVCache

from ..core.config import CacheGenConfig
from ..core.decoder import CacheGenDecoder
from ..core.encoder import CacheGenEncoder
from ..llm.compute_model import A40, ComputeModel, GPUSpec
from ..llm.model_config import ModelConfig, get_model_config
from ..llm.quality import QualityModel
from ..llm.synthetic_model import SyntheticLLM
from ..metrics.system import TTFTBreakdown
from ..network.link import NetworkLink
from ..storage.eviction import EvictionPolicy, make_policy
from ..storage.kv_store import KVCacheStore
from ..streaming.adaptation import FixedLevelPolicy, SLOAwareAdapter
from ..streaming.streamer import KVStreamer
from ._compat import warn_deprecated_entry_point
from .pipeline import IngestReport, QueryResponse

__all__ = ["ContextLoadingEngine"]

#: Number of synthetic sample contexts used to profile the encoder offline.
_PROFILE_SAMPLES = 2
_PROFILE_TOKENS = 1_500

#: Number of lossless reference KV caches the engine keeps memoized.  The
#: reference is needed on every KV-path query to score generation quality;
#: recomputing it would re-pay the whole prefill the cache exists to avoid.
_REFERENCE_CACHE_ENTRIES = 128


@dataclass
class _EngineComponents:
    llm: SyntheticLLM
    compute: ComputeModel
    encoder: CacheGenEncoder
    decoder: CacheGenDecoder
    store: KVCacheStore


class ContextLoadingEngine:
    """Serves queries over reusable long contexts with CacheGen underneath.

    Parameters
    ----------
    model:
        Serving model (name or :class:`ModelConfig`).
    link:
        Network link between the KV storage server and the GPU server.
    config:
        Codec/streamer configuration; defaults to the paper's settings.
    gpu:
        GPU specification of the serving node.
    base_quality:
        Optional per-task lossless quality overrides for the quality surrogate.
    store_max_bytes / store_eviction_policy:
        Optional capacity bound (and victim-selection policy) of the node's
        bitstream store; ``None`` keeps the store unbounded.

    .. deprecated::
        Direct construction is deprecated; declare a
        :class:`repro.serving.api.ServingSpec` and use
        :func:`repro.serving.api.serve` / ``build_backend`` instead.

    Example
    -------
    >>> engine = ContextLoadingEngine("mistral-7b")
    >>> engine.ingest("doc-1", num_tokens=8_000)  # doctest: +SKIP
    >>> engine.query("doc-1", "what changed?").ttft.total_s  # doctest: +SKIP
    """

    def __init__(
        self,
        model: ModelConfig | str,
        link: NetworkLink | None = None,
        config: CacheGenConfig | None = None,
        gpu: GPUSpec = A40,
        base_quality: dict[str, float] | None = None,
        store_max_bytes: float | None = None,
        store_eviction_policy: str | EvictionPolicy = "lru",
    ) -> None:
        if type(self) is ContextLoadingEngine:
            warn_deprecated_entry_point(
                "ContextLoadingEngine", 'ServingSpec(topology="single")'
            )
        if isinstance(model, str):
            model = get_model_config(model)
        self.model = model
        self.link = link or NetworkLink()
        self.config = config or CacheGenConfig()

        quality_model = QualityModel(num_layers=model.sim_layers, base_values=base_quality)
        llm = SyntheticLLM(model, quality_model=quality_model)
        encoder = CacheGenEncoder(self.config)
        encoder.fit(
            [llm.calculate_kv(f"__profile-{i}", _PROFILE_TOKENS) for i in range(_PROFILE_SAMPLES)]
        )
        policy = (
            make_policy(store_eviction_policy)
            if isinstance(store_eviction_policy, str)
            else store_eviction_policy
        )
        self._parts = _EngineComponents(
            llm=llm,
            compute=ComputeModel(model, gpu),
            encoder=encoder,
            decoder=CacheGenDecoder(encoder),
            store=KVCacheStore(
                encoder, max_bytes=store_max_bytes, eviction_policy=policy
            ),
        )
        self._reference_cache: OrderedDict[tuple[str, int], KVCache] = OrderedDict()
        #: Liveness of the node's bitstream store.  Fault injection flips this
        #: on a single-node crash: stored contexts become unreachable (queries
        #: degrade to the text re-prefill path) until recovery.
        self.store_up = True

    # ------------------------------------------------------------------ access
    @property
    def llm(self) -> SyntheticLLM:
        return self._parts.llm

    @property
    def store(self) -> KVCacheStore:
        return self._parts.store

    @property
    def encoder(self) -> CacheGenEncoder:
        return self._parts.encoder

    @property
    def decoder(self) -> CacheGenDecoder:
        return self._parts.decoder

    @property
    def compute_model(self) -> ComputeModel:
        return self._parts.compute

    # --------------------------------------------------------------- reference
    def _reference_kv(self, context_id: str, num_tokens: int) -> KVCache:
        """Lossless KV cache of a context, memoized across ingest and queries.

        ``calculate_kv`` is deterministic in ``(context_id, num_tokens)``, so
        the memo stays valid even if the stored bitstreams are evicted and the
        context is later re-ingested.  The memo is LRU-bounded so long
        simulations do not hold every context's tensors in memory.
        """
        key = (context_id, num_tokens)
        cache = self._reference_cache
        kv = cache.get(key)
        if kv is None:
            kv = self._parts.llm.calculate_kv(context_id, num_tokens)
            cache[key] = kv
            if len(cache) > _REFERENCE_CACHE_ENTRIES:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return kv

    # ------------------------------------------------------------------ ingest
    def ingest(self, context_id: str, num_tokens: int) -> IngestReport:
        """Prefill a context once, encode its KV cache and store the bitstreams.

        ``encode_delay_s`` is the *modeled* GPU encode time
        (:meth:`~repro.llm.compute_model.ComputeModel.encode_delay`), not a
        wall-clock measurement: ingest is part of the simulated world, and a
        host-time read here would leak nondeterminism into traces and reports.
        """
        kv = self._reference_kv(context_id, num_tokens)
        stored = self._parts.store.store_kv(context_id, kv)
        per_level: dict[str, float] = {}
        for chunk in stored.chunks:
            for level_name, encoded in chunk.encodings.items():
                per_level[level_name] = per_level.get(level_name, 0.0) + encoded.compressed_bytes
        return IngestReport(
            context_id=context_id,
            num_tokens=num_tokens,
            num_chunks=stored.num_chunks,
            stored_bytes_per_level=per_level,
            encode_delay_s=self._parts.compute.encode_delay(num_tokens),
        )

    # ------------------------------------------------------------------- query
    def query(
        self,
        context_id: str,
        question: str,
        num_tokens: int | None = None,
        task: str = "qa_accuracy",
        slo_s: float | None = None,
    ) -> QueryResponse:
        """Answer a question against a context, loading its KV cache if stored.

        ``num_tokens`` is only required for contexts that were never ingested
        (the engine then falls back to the text path).
        """
        parts = self._parts
        prompt_tokens = max(parts.llm.tokenizer.count_tokens(question), 1)

        if self.store_up and context_id in parts.store:
            stored = parts.store.get_context(context_id)
            if not self._prefer_text_path(stored.num_tokens):
                return self._query_with_kv(stored, question, prompt_tokens, task, slo_s)
            num_tokens = stored.num_tokens
        if num_tokens is None:
            raise ValueError(
                "num_tokens is required for contexts that have not been ingested"
            )
        return self._query_with_text(context_id, question, num_tokens, prompt_tokens, task)

    # ------------------------------------------------------------------ pieces
    def _prefer_text_path(
        self,
        num_tokens: int,
        kv_link: NetworkLink | None = None,
        text_link: NetworkLink | None = None,
        kv_extra_s: float = 0.0,
    ) -> bool:
        """Short contexts load faster as text than as KV bitstreams (§7.3).

        The two paths may use different links (in a cluster the KV bitstreams
        come from a storage node, the text from the document store).
        ``kv_extra_s`` charges the KV path for delays beyond the serving link
        — a cold-tier hit pays the node's tier link before streaming starts.
        """
        parts = self._parts
        kv_link = kv_link or self.link
        text_link = text_link or self.link
        text_bytes = num_tokens * self.config.text_bytes_per_token
        text_ttft = text_link.estimate_transfer_time(text_bytes) + parts.compute.prefill_delay(
            num_tokens
        )
        kv_bytes = self.model.kv_cache_bytes(num_tokens, bits_per_element=2.4)
        kv_ttft = (
            kv_link.estimate_transfer_time(kv_bytes)
            + parts.compute.decode_delay(num_tokens)
            + kv_extra_s
        )
        return text_ttft < kv_ttft

    def _query_with_kv(
        self,
        stored,
        question: str,
        prompt_tokens: int,
        task: str,
        slo_s: float | None,
        link: NetworkLink | None = None,
        extra_network_s: float = 0.0,
        level_override: str | None = None,
    ) -> QueryResponse:
        parts = self._parts
        link = link or self.link
        streamer = KVStreamer(
            decoder=parts.decoder,
            compute_model=parts.compute,
            initial_throughput_bps=link.trace.bandwidth_at(0.0),
        )
        # A degraded read pins the (cheaper) level the resilience layer chose
        # — adaptation would climb back to the level that just timed out.
        if level_override is not None:
            policy = FixedLevelPolicy(level_name=level_override)
        elif slo_s is not None:
            policy = SLOAwareAdapter(level_names=[level.name for level in self.config.levels])
        else:
            policy = FixedLevelPolicy(level_name=self.config.default_level.name)
        # A cold-tier hit serializes the tier read before streaming, shrinking
        # the SLO budget the adapter has left for the serving link.
        streaming_slo = None if slo_s is None else max(slo_s - extra_network_s, 0.0)
        streamed = streamer.stream(
            stored.chunks, link=link, policy=policy, slo_s=streaming_slo, reconstruct=True
        )
        assert streamed.kv is not None
        reference_kv = self._reference_kv(stored.context_id, stored.num_tokens)
        generation = parts.llm.generate_with_kv(
            streamed.kv, reference_kv=reference_kv, task=task
        )
        ttft = TTFTBreakdown(
            network_s=streamed.network_time_s + extra_network_s,
            decode_s=max(streamed.total_time_s - streamed.network_time_s, 0.0),
            compute_s=parts.compute.prefill_delay(prompt_tokens),
        )
        return QueryResponse(
            context_id=stored.context_id,
            question=question,
            text=generation.text,
            quality=generation.quality,
            ttft=ttft,
            used_kv_cache=True,
            chunk_configs=streamed.configs,
            transmitted_bytes=streamed.total_bytes,
        )

    def _query_with_text(
        self,
        context_id: str,
        question: str,
        num_tokens: int,
        prompt_tokens: int,
        task: str,
        link: NetworkLink | None = None,
    ) -> QueryResponse:
        parts = self._parts
        link = link or self.link
        text_bytes = num_tokens * self.config.text_bytes_per_token
        transfer = link.transfer(text_bytes)
        kv = self._reference_kv(context_id, num_tokens)
        generation = parts.llm.generate_with_kv(kv, reference_kv=kv, task=task)
        ttft = TTFTBreakdown(
            network_s=transfer.duration,
            decode_s=0.0,
            compute_s=parts.compute.prefill_delay(num_tokens + prompt_tokens),
        )
        return QueryResponse(
            context_id=context_id,
            question=question,
            text=generation.text,
            quality=generation.quality,
            ttft=ttft,
            used_kv_cache=False,
            chunk_configs=["text"],
            transmitted_bytes=text_bytes,
        )

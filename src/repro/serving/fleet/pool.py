"""A pool of GPU workers behind one dispatch policy and an autoscaler.

:class:`GpuWorkerPool` is the fleet-scale replacement for the single
:class:`~repro.serving.concurrent.resources.GpuScheduler` of the event-driven
engine: it owns ``N`` workers (each a full ``GpuScheduler`` with its own run
queue, continuous batching and telemetry track), routes every submitted
:class:`~repro.serving.concurrent.resources.GpuTask` through a pluggable
:class:`~repro.serving.fleet.dispatch.DispatchPolicy`, and — when an
:class:`~repro.serving.fleet.autoscale.AutoscaleSpec` is attached — grows and
shrinks the pool from the run's own load signal on the simulated clock.

The pool speaks the scheduler's interface (``submit`` plus the aggregate
stat counters), so the
:class:`~repro.serving.concurrent.simulator.ConcurrentLoadSimulator` drives
either interchangeably; a pool of one worker with the default policy is
event-for-event identical to a bare scheduler.

Telemetry: each worker records its own ``gpu:worker-<i>`` swimlane (batched
launches, queue-depth samples, busy counters — exactly what the single GPU
recorded before), and the pool adds a ``gpu-pool`` counter track with the
live pool size plus ``scale-up`` / ``worker online`` / ``scale-down``
instants, so Perfetto timelines and the run dashboard show the fleet
breathing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..concurrent.events import SimClock
from ..concurrent.resources import GpuScheduler, GpuTask
from .autoscale import AutoscaleSpec
from .dispatch import DispatchPolicy, make_dispatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ...telemetry.trace import Tracer

__all__ = ["GpuWorkerPool", "POOL_TRACK"]

#: Telemetry track carrying the pool-size counter and scale instants.
POOL_TRACK = "gpu-pool"


class GpuWorkerPool:
    """N GPU workers, one dispatch policy, optional autoscaling.

    Parameters
    ----------
    clock:
        The simulation clock shared with the links and load processes.
    num_workers:
        Initial pool size (the autoscaler may move it within its bounds).
    max_batch_size / batch_overhead:
        Continuous-batching settings of every worker (see
        :class:`~repro.serving.concurrent.resources.GpuScheduler`).
    dispatch:
        A policy name (``"least-loaded"`` / ``"locality"`` / ``"sticky"``)
        or a :class:`~repro.serving.fleet.dispatch.DispatchPolicy` instance.
    autoscale:
        Optional :class:`~repro.serving.fleet.autoscale.AutoscaleSpec`;
        ``None`` keeps the pool size fixed.
    tracer:
        Optional telemetry tracer (per-worker swimlanes, pool-size track).
    track_prefix:
        Prefix of the worker track names (worker ``i`` records on
        ``"<prefix>:worker-<i>"``).

    Example
    -------
    >>> from repro.serving.concurrent import SimClock
    >>> pool = GpuWorkerPool(SimClock(), num_workers=4, dispatch="locality")
    >>> pool.size
    4
    """

    def __init__(
        self,
        clock: SimClock,
        num_workers: int = 1,
        *,
        max_batch_size: int = 16,
        batch_overhead: float = 0.2,
        dispatch: str | DispatchPolicy = "least-loaded",
        autoscale: AutoscaleSpec | None = None,
        tracer: "Tracer | None" = None,
        track_prefix: str = "gpu",
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.clock = clock
        self.max_batch_size = max_batch_size
        self.batch_overhead = batch_overhead
        self.dispatch = make_dispatch(dispatch)
        self.autoscale = autoscale
        self.tracer = tracer
        self.track_prefix = track_prefix
        self._workers: list[GpuScheduler] = []
        self._retired: list[GpuScheduler] = []
        self._spawned = 0
        self._warming = 0
        self._last_submit_s = 0.0
        #: ``(at_s, kind, pool_size_after)`` for every scale decision.
        self.scale_events: list[tuple[float, str, int]] = []
        if autoscale is not None:
            num_workers = autoscale.clamp(num_workers)
        for _ in range(num_workers):
            self._spawn_worker()
        self._sample_pool_size()

    # ------------------------------------------------------------------ state
    @property
    def workers(self) -> Sequence[GpuScheduler]:
        """The active workers, in worker-index order."""
        return tuple(self._workers)

    @property
    def size(self) -> int:
        """Number of active workers (excludes workers still warming up)."""
        return len(self._workers)

    @property
    def queue_depth(self) -> int:
        """Tasks queued or running across the whole pool."""
        return sum(worker.queue_depth for worker in self._workers)

    def _all_workers(self) -> list[GpuScheduler]:
        return self._workers + self._retired

    # Aggregate counters mirroring the bare scheduler's stats surface.
    @property
    def total_busy_s(self) -> float:
        return sum(worker.total_busy_s for worker in self._all_workers())

    @property
    def total_wait_s(self) -> float:
        return sum(worker.total_wait_s for worker in self._all_workers())

    @property
    def tasks_run(self) -> int:
        return sum(worker.tasks_run for worker in self._all_workers())

    @property
    def batches_run(self) -> int:
        return sum(worker.batches_run for worker in self._all_workers())

    # ----------------------------------------------------------------- submit
    def submit(self, task: GpuTask) -> GpuScheduler:
        """Dispatch one GPU task to a worker; returns the worker chosen."""
        now = self.clock.now
        self._last_submit_s = now
        if self.autoscale is not None:
            self._consider_scale_up()
        index = self.dispatch.pick(task, self._workers)
        worker = self._workers[index]
        if self.autoscale is not None:
            self._hook_completion(task)
        worker.submit(task)
        return worker

    # -------------------------------------------------------------- telemetry
    def _sample_pool_size(self) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.sample(
                "pool_size", self.size, track=POOL_TRACK, at_s=self.clock.now
            )
            tracer.metrics.gauge(
                "gpu_pool_size", "active GPU workers in the pool"
            ).set(self.size)

    def _emit_instant(self, name: str, **args) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                name, track=POOL_TRACK, at_s=self.clock.now, category="autoscale", **args
            )
            tracer.metrics.counter(
                "gpu_pool_scale_events", "autoscaler decisions by kind"
            ).inc(1, kind=name)

    # ------------------------------------------------------------ pool sizing
    def _spawn_worker(self) -> GpuScheduler:
        worker = GpuScheduler(
            self.clock,
            max_batch_size=self.max_batch_size,
            batch_overhead=self.batch_overhead,
            tracer=self.tracer,
            track=f"{self.track_prefix}:worker-{self._spawned}",
        )
        self._spawned += 1
        self._workers.append(worker)
        return worker

    def _consider_scale_up(self) -> None:
        """Provision one worker when per-worker queue depth crosses the mark.

        The signal is the queue-depth buildup of the current arrival window:
        pending-or-running tasks per worker, counting workers still warming
        (they will absorb the backlog once online, so double-provisioning on
        the same spike is suppressed).
        """
        spec = self.autoscale
        assert spec is not None
        provisioned = self.size + self._warming
        if provisioned >= spec.max_workers:
            return
        depth_per_worker = (self.queue_depth + 1) / provisioned
        if depth_per_worker < spec.high_queue_depth:
            return
        self._warming += 1
        self._emit_instant(
            "scale-up",
            pool_size=self.size,
            warming=self._warming,
            queue_depth=self.queue_depth,
        )
        self.scale_events.append((self.clock.now, "scale-up", self.size))

        def _online() -> None:
            self._warming -= 1
            worker = self._spawn_worker()
            self._emit_instant("worker online", worker=worker.track)
            self.scale_events.append((self.clock.now, "worker online", self.size))
            self._sample_pool_size()

        self.clock.schedule_after(spec.warmup_s, _online)

    def _hook_completion(self, task: GpuTask) -> None:
        """Observe task completions so sustained idle can trigger scale-down."""
        original = task.on_complete

        def _completed(finish_s: float, busy_s: float, wait_s: float) -> None:
            original(finish_s, busy_s, wait_s)
            self._consider_scale_down()

        task.on_complete = _completed

    def _consider_scale_down(self) -> None:
        spec = self.autoscale
        assert spec is not None
        if self.size <= spec.min_workers or self.queue_depth > 0:
            return
        idle_since = max(self._last_submit_s, self.clock.now)

        def _check() -> None:
            # A submission (or an earlier retirement) since the check was
            # scheduled restarts the idle horizon; the next completion or
            # retirement schedules a fresh check.
            if self._last_submit_s > idle_since or self.queue_depth > 0:
                return
            if self.size <= spec.min_workers:
                return
            self._retire_worker()
            if self.size > spec.min_workers:
                self.clock.schedule_after(spec.idle_s, _check)

        self.clock.schedule_after(spec.idle_s, _check)

    def _retire_worker(self) -> GpuScheduler | None:
        """Gracefully remove the highest-index idle worker (if any)."""
        for index in range(len(self._workers) - 1, -1, -1):
            if self._workers[index].queue_depth == 0:
                worker = self._workers.pop(index)
                break
        else:  # pragma: no cover - callers check queue_depth == 0 first
            return None
        self.dispatch.forget_worker(worker)
        self._retired.append(worker)
        self._emit_instant("scale-down", worker=worker.track, pool_size=self.size)
        self.scale_events.append((self.clock.now, "scale-down", self.size))
        self._sample_pool_size()
        return worker

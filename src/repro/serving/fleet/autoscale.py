"""Autoscaling of the GPU worker pool from the run's own load signal.

The :class:`AutoscaleSpec` is the declarative half — a frozen, validated
policy a :class:`~repro.serving.api.ServingSpec` can carry.  The
:class:`Autoscaler` is the runtime half: it lives inside one
:class:`~repro.serving.fleet.pool.GpuWorkerPool` run and watches the same
tumbling-window arrival-rate signal the telemetry layer reports (one window
of task arrivals per ``window_s`` of simulated time, exactly the
``arrival_rate_rps`` semantics of
:class:`~repro.telemetry.timeseries.WindowStats`):

* **scale-up** on queue-depth buildup — when the pending GPU work per active
  worker crosses ``high_queue_depth``, a new worker is provisioned.  It only
  starts taking work after ``warmup_s`` of *simulated* time (model loading,
  CUDA graph capture), so a flash crowd pays the warm-up before relief
  arrives — exactly the dynamics a wall-clock autoscaler shows.
* **scale-down** after sustained idle — when every worker has been idle for
  ``idle_s`` and the current arrival window is quiet, the highest-index idle
  worker is retired (down to ``min_workers``).  Retirement is graceful: only
  a worker with an empty run queue is eligible, and sticky sessions pinned
  to it are re-bound by the dispatch policy on their next task.

Decisions are evaluated on simulation events (task submission, task
completion, timer expiry), never on wall-clock time, so autoscaled runs stay
deterministic and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscaleSpec"]


@dataclass(frozen=True)
class AutoscaleSpec:
    """Declarative autoscaling policy of a GPU worker fleet.

    Attributes
    ----------
    min_workers / max_workers:
        Hard bounds of the pool size.  The pool starts at the spec's
        ``gpu_workers`` and never leaves ``[min_workers, max_workers]``.
    high_queue_depth:
        Scale-up watermark: when queued-or-running GPU tasks per *active*
        worker reach this depth, one more worker is provisioned.
    idle_s:
        Sustained-idle horizon: a scale-down fires only after every worker
        has been idle for this much simulated time.
    warmup_s:
        Simulated provisioning delay — a newly added worker accepts work
        only ``warmup_s`` after the scale-up decision.
    window_s:
        Width of the tumbling arrival-rate window the scaler samples (same
        semantics as the telemetry layer's
        :attr:`~repro.telemetry.timeseries.WindowStats.arrival_rate_rps`).

    Example
    -------
    >>> AutoscaleSpec(min_workers=1, max_workers=4, high_queue_depth=3.0)
    ... # doctest: +ELLIPSIS
    AutoscaleSpec(min_workers=1, max_workers=4, ...)
    """

    min_workers: int = 1
    max_workers: int = 8
    high_queue_depth: float = 4.0
    idle_s: float = 1.0
    warmup_s: float = 0.5
    window_s: float = 0.5

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be at least min_workers")
        if self.high_queue_depth <= 0:
            raise ValueError("high_queue_depth must be positive")
        if self.idle_s <= 0:
            raise ValueError("idle_s must be positive")
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    def clamp(self, size: int) -> int:
        """``size`` clamped into the spec's ``[min_workers, max_workers]``."""
        return max(self.min_workers, min(size, self.max_workers))

"""Dispatch policies: which GPU worker serves the next task.

A :class:`~repro.serving.fleet.pool.GpuWorkerPool` holds several
:class:`~repro.serving.concurrent.resources.GpuScheduler` workers; every
submitted :class:`~repro.serving.concurrent.resources.GpuTask` is routed to
exactly one of them by a :class:`DispatchPolicy`.  The policy sees the live
workers (their queue depths included) and must be **deterministic**: given the
same task stream and worker states it always picks the same worker, so fleet
simulations replay bit-identically.

Three policies ship with the fleet:

* :class:`LeastLoadedDispatch` — the classic load balancer: the worker with
  the shallowest run queue wins, ties broken by lowest worker index.
* :class:`LocalityDispatch` — routes by the task's *batch key* (the serving
  node of the decode), so decodes of the same context land on the same worker
  and coalesce into one batched launch there.  Spreading them "fairly" over
  the pool would destroy continuous batching — a batch of N same-key decodes
  on one worker finishes earlier than N solo launches on N workers when the
  queue is deep.
* :class:`StickyDispatch` — routes by the request's *session key* (a chat
  session id), falling back to locality for sessionless tasks.  A session
  keeps hitting the worker that already holds its warm state; when a worker
  is retired by the autoscaler the policy forgets its bindings and re-pins
  each affected session on its next task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..concurrent.resources import GpuScheduler, GpuTask

__all__ = [
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "LeastLoadedDispatch",
    "LocalityDispatch",
    "StickyDispatch",
    "make_dispatch",
]

#: Dispatch-policy names a :class:`~repro.serving.api.ServingSpec` may declare.
DISPATCH_POLICIES = ("least-loaded", "locality", "sticky")


@runtime_checkable
class DispatchPolicy(Protocol):
    """Picks the worker that serves one GPU task.

    Example
    -------
    >>> class FirstWorker:
    ...     def pick(self, task, workers):
    ...         return 0
    ...     def forget_worker(self, worker):
    ...         pass
    """

    def pick(self, task: "GpuTask", workers: Sequence["GpuScheduler"]) -> int:
        """Index (into ``workers``) of the worker that serves ``task``.

        ``workers`` is the pool's *active* worker list, ordered by worker
        index; implementations must return a valid index deterministically.
        """
        ...

    def forget_worker(self, worker: "GpuScheduler") -> None:
        """Drop any routing state pinned to a retired worker.

        Called by the pool when the autoscaler removes a worker; stateless
        policies may make this a no-op.
        """
        ...


def _least_loaded_index(workers: Sequence["GpuScheduler"]) -> int:
    """The shallowest run queue wins; equal depths go to the lowest index.

    ``min`` scans left to right and only replaces the champion on a strictly
    smaller key, which *is* the deterministic lowest-index tie-break.
    """
    return min(range(len(workers)), key=lambda i: workers[i].queue_depth)


class LeastLoadedDispatch:
    """Route every task to the worker with the shallowest run queue.

    Ties break to the lowest worker index, so a fresh pool fills worker 0
    first and a replayed task stream routes identically every run.

    Example
    -------
    >>> policy = LeastLoadedDispatch()
    >>> # both workers idle -> deterministic tie-break to index 0
    >>> # policy.pick(task, [worker_a, worker_b]) == 0
    """

    def pick(self, task: "GpuTask", workers: Sequence["GpuScheduler"]) -> int:
        return _least_loaded_index(workers)

    def forget_worker(self, worker: "GpuScheduler") -> None:
        """Stateless: nothing is pinned to any worker."""


class _KeyedDispatch:
    """Shared machinery of the key-affinity policies.

    Keeps ``key -> worker`` bindings by worker *identity* (not index — the
    active list shifts when the autoscaler retires a worker).  A key whose
    worker is gone, or that was never seen, is (re-)bound to the currently
    least-loaded worker.
    """

    def __init__(self) -> None:
        self._bindings: dict[str, GpuScheduler] = {}

    def _pick_for_key(self, key: str | None, workers: Sequence["GpuScheduler"]) -> int:
        if key is None:
            return _least_loaded_index(workers)
        bound = self._bindings.get(key)
        if bound is not None:
            for index, worker in enumerate(workers):
                if worker is bound:
                    return index
            # The bound worker was retired between forget_worker and now
            # (defensive — the pool calls forget_worker first).
            del self._bindings[key]  # pragma: no cover
        index = _least_loaded_index(workers)
        self._bindings[key] = workers[index]
        return index

    def forget_worker(self, worker: "GpuScheduler") -> None:
        """Unbind every key pinned to a retired worker (re-pinned on next pick)."""
        self._bindings = {
            key: bound for key, bound in self._bindings.items() if bound is not worker
        }


class LocalityDispatch(_KeyedDispatch):
    """Route by batch key, so same-context decodes co-batch on one worker.

    The first task of a new batch key is placed on the least-loaded worker;
    every later task with that key follows it there, where the worker's
    continuous batching coalesces them into shared launches.  Tasks without a
    batch key (prefills, text fallbacks) go least-loaded.

    Example
    -------
    >>> policy = LocalityDispatch()
    >>> # all decodes of batch_key="node-0" return the same worker index,
    >>> # so they share batched launches instead of spreading solo.
    """

    def pick(self, task: "GpuTask", workers: Sequence["GpuScheduler"]) -> int:
        return self._pick_for_key(task.batch_key, workers)


class StickyDispatch(_KeyedDispatch):
    """Route by session key: a chat session sticks to one worker.

    Session affinity keeps a conversation's decode state warm on one worker.
    Tasks without a session key fall back to batch-key locality (and then to
    least-loaded), so mixed workloads still batch well.  When the autoscaler
    retires a worker, its sessions are forgotten and transparently re-pinned
    on their next task — sticky sessions survive a scale-down.

    Example
    -------
    >>> policy = StickyDispatch()
    >>> # every task with session_key="chat-42" lands on the same worker
    >>> # until that worker is retired; then the session re-pins and sticks
    >>> # to the new worker.
    """

    def pick(self, task: "GpuTask", workers: Sequence["GpuScheduler"]) -> int:
        key = task.session_key
        if key is None:
            key = task.batch_key
        return self._pick_for_key(key, workers)


def make_dispatch(policy: str | DispatchPolicy) -> DispatchPolicy:
    """Resolve a policy name (or pass an instance through).

    Example
    -------
    >>> make_dispatch("least-loaded")  # doctest: +ELLIPSIS
    <repro.serving.fleet.dispatch.LeastLoadedDispatch object at ...>
    """
    if not isinstance(policy, str):
        return policy
    if policy == "least-loaded":
        return LeastLoadedDispatch()
    if policy == "locality":
        return LocalityDispatch()
    if policy == "sticky":
        return StickyDispatch()
    raise ValueError(
        f"unknown dispatch policy {policy!r}; expected one of {DISPATCH_POLICIES}"
    )
